//! Boolean simplification.
//!
//! The paper shows its envelope (Fig. 5) "after applying elementary
//! simplifications"; this module is those simplifications. They also serve
//! the privacy discussion of Sec. 7: simplification removes concrete
//! configuration fragments that partial evaluation would otherwise leak
//! into an envelope.

use crate::formula::Formula;

/// Recursively simplify a formula.
///
/// Performed rewrites (all classical equivalences):
/// * constant folding through every connective and quantifier;
/// * flattening of nested `And`/`Or`;
/// * deduplication of identical conjuncts/disjuncts;
/// * `x ∧ ¬x → false`, `x ∨ ¬x → true` (syntactic complement pairs);
/// * double-negation elimination;
/// * unary `And`/`Or` unwrapping;
/// * `a ⇒ false → ¬a`, `true ⇒ a → a`, etc.
///
/// Simplification is *semantics-preserving* (tested by property tests
/// against [`crate::evaluate`]) and idempotent.
pub fn simplify(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Pred(_, _) => f.clone(),
        Formula::Eq(a, b) => {
            if a == b {
                Formula::True
            } else {
                f.clone()
            }
        }
        Formula::Not(inner) => match simplify(inner) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(g) => *g,
            g => Formula::not(g),
        },
        Formula::And(fs) => {
            let mut parts: Vec<Formula> = Vec::new();
            for g in fs {
                match simplify(g) {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    Formula::And(inner) => parts.extend(inner),
                    other => parts.push(other),
                }
            }
            dedup_keep_order(&mut parts);
            if has_complement_pair(&parts) {
                return Formula::False;
            }
            match parts.len() {
                0 => Formula::True,
                1 => parts.pop().expect("len checked"),
                _ => Formula::And(parts),
            }
        }
        Formula::Or(fs) => {
            let mut parts: Vec<Formula> = Vec::new();
            for g in fs {
                match simplify(g) {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    Formula::Or(inner) => parts.extend(inner),
                    other => parts.push(other),
                }
            }
            dedup_keep_order(&mut parts);
            if has_complement_pair(&parts) {
                return Formula::True;
            }
            match parts.len() {
                0 => Formula::False,
                1 => parts.pop().expect("len checked"),
                _ => Formula::Or(parts),
            }
        }
        Formula::Implies(a, b) => {
            let a = simplify(a);
            let b = simplify(b);
            match (a, b) {
                (Formula::False, _) => Formula::True,
                (_, Formula::True) => Formula::True,
                (Formula::True, b) => b,
                (a, Formula::False) => simplify(&Formula::not(a)),
                (a, b) if a == b => Formula::True,
                (a, b) => Formula::implies(a, b),
            }
        }
        Formula::Iff(a, b) => {
            let a = simplify(a);
            let b = simplify(b);
            match (a, b) {
                (Formula::True, b) => b,
                (a, Formula::True) => a,
                (Formula::False, b) => simplify(&Formula::not(b)),
                (a, Formula::False) => simplify(&Formula::not(a)),
                (a, b) if a == b => Formula::True,
                (a, b) => Formula::iff(a, b),
            }
        }
        Formula::Forall(v, s, body) => match simplify(body) {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            // Vacuous quantifier elimination: if the variable no longer
            // occurs, drop the binder. (Sorts are non-empty by convention
            // in Muppet universes; documented invariant.)
            g if !g.free_vars().contains(v) => g,
            g => Formula::forall(*v, *s, g),
        },
        Formula::Exists(v, s, body) => match simplify(body) {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            g if !g.free_vars().contains(v) => g,
            g => Formula::exists(*v, *s, g),
        },
    }
}

/// Negation normal form: negations pushed to atoms, `⇒`/`⇔` expanded.
///
/// Envelope predicates are put in NNF before simplification so that the
/// top level becomes the disjunction-of-conditions shape of the paper's
/// Fig. 5 ("either: (1) …; or (2) …").
pub fn nnf(f: &Formula) -> Formula {
    nnf_pol(f, true)
}

fn nnf_pol(f: &Formula, positive: bool) -> Formula {
    match f {
        Formula::True => {
            if positive {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::False => {
            if positive {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::Pred(_, _) | Formula::Eq(_, _) => {
            if positive {
                f.clone()
            } else {
                Formula::not(f.clone())
            }
        }
        Formula::Not(g) => nnf_pol(g, !positive),
        Formula::And(fs) => {
            let parts = fs.iter().map(|g| nnf_pol(g, positive)).collect();
            if positive {
                Formula::And(parts)
            } else {
                Formula::Or(parts)
            }
        }
        Formula::Or(fs) => {
            let parts = fs.iter().map(|g| nnf_pol(g, positive)).collect();
            if positive {
                Formula::Or(parts)
            } else {
                Formula::And(parts)
            }
        }
        Formula::Implies(a, b) => {
            if positive {
                // a ⇒ b ≡ ¬a ∨ b
                Formula::Or(vec![nnf_pol(a, false), nnf_pol(b, true)])
            } else {
                // ¬(a ⇒ b) ≡ a ∧ ¬b
                Formula::And(vec![nnf_pol(a, true), nnf_pol(b, false)])
            }
        }
        Formula::Iff(a, b) => {
            if positive {
                Formula::And(vec![
                    Formula::Or(vec![nnf_pol(a, false), nnf_pol(b, true)]),
                    Formula::Or(vec![nnf_pol(b, false), nnf_pol(a, true)]),
                ])
            } else {
                Formula::And(vec![
                    Formula::Or(vec![nnf_pol(a, true), nnf_pol(b, true)]),
                    Formula::Or(vec![nnf_pol(a, false), nnf_pol(b, false)]),
                ])
            }
        }
        Formula::Forall(v, s, body) => {
            if positive {
                Formula::forall(*v, *s, nnf_pol(body, true))
            } else {
                Formula::exists(*v, *s, nnf_pol(body, false))
            }
        }
        Formula::Exists(v, s, body) => {
            if positive {
                Formula::exists(*v, *s, nnf_pol(body, true))
            } else {
                Formula::forall(*v, *s, nnf_pol(body, false))
            }
        }
    }
}

fn dedup_keep_order(parts: &mut Vec<Formula>) {
    let mut seen = Vec::new();
    parts.retain(|p| {
        if seen.contains(p) {
            false
        } else {
            seen.push(p.clone());
            true
        }
    });
}

fn has_complement_pair(parts: &[Formula]) -> bool {
    for p in parts {
        if let Formula::Not(inner) = p {
            if parts.contains(inner) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{Domain, Universe, Vocabulary};
    use crate::term::Term;
    use crate::{evaluate_closed, Instance};

    fn atom_formulas() -> (Universe, Vocabulary, Vec<Formula>) {
        let mut u = Universe::new();
        let s = u.add_sort("S");
        let a = u.add_atom(s, "a");
        let b = u.add_atom(s, "b");
        let mut v = Vocabulary::new();
        let p = v.add_simple_rel("p", vec![s], Domain::Structure);
        let q = v.add_simple_rel("q", vec![s], Domain::Structure);
        let fs = vec![
            Formula::pred(p, [Term::Const(a)]),
            Formula::pred(q, [Term::Const(b)]),
            Formula::pred(p, [Term::Const(b)]),
        ];
        (u, v, fs)
    }

    #[test]
    fn constant_folding() {
        let (_, _, fs) = atom_formulas();
        let p = fs[0].clone();
        assert_eq!(
            simplify(&Formula::and([Formula::True, p.clone()])),
            p
        );
        assert_eq!(
            simplify(&Formula::and([Formula::False, p.clone()])),
            Formula::False
        );
        assert_eq!(simplify(&Formula::or([Formula::True, p.clone()])), Formula::True);
        assert_eq!(simplify(&Formula::or([Formula::False, p.clone()])), p);
        assert_eq!(simplify(&Formula::not(Formula::not(p.clone()))), p);
        assert_eq!(
            simplify(&Formula::implies(Formula::True, p.clone())),
            p
        );
        assert_eq!(
            simplify(&Formula::implies(p.clone(), Formula::False)),
            Formula::not(p.clone())
        );
        assert_eq!(simplify(&Formula::iff(p.clone(), Formula::True)), p);
    }

    #[test]
    fn flatten_dedupe_complements() {
        let (_, _, fs) = atom_formulas();
        let p = fs[0].clone();
        let q = fs[1].clone();
        let nested = Formula::and([
            Formula::and([p.clone(), q.clone()]),
            p.clone(),
        ]);
        assert_eq!(simplify(&nested), Formula::and([p.clone(), q.clone()]));
        let contradiction = Formula::and([p.clone(), Formula::not(p.clone())]);
        assert_eq!(simplify(&contradiction), Formula::False);
        let tautology = Formula::or([p.clone(), Formula::not(p.clone())]);
        assert_eq!(simplify(&tautology), Formula::True);
    }

    #[test]
    fn trivial_equality_and_quantifiers() {
        let mut u = Universe::new();
        let s = u.add_sort("S");
        u.add_atom(s, "a");
        let mut v = Vocabulary::new();
        let p = v.add_simple_rel("p", vec![s], Domain::Structure);
        let x = v.fresh_var();
        assert_eq!(
            simplify(&Formula::Eq(Term::Var(x), Term::Var(x))),
            Formula::True
        );
        assert_eq!(
            simplify(&Formula::forall(x, s, Formula::True)),
            Formula::True
        );
        assert_eq!(
            simplify(&Formula::exists(x, s, Formula::False)),
            Formula::False
        );
        // Vacuous binder dropped.
        let y = v.fresh_var();
        let body = Formula::pred(p, [Term::Var(x)]);
        let g = Formula::forall(y, s, body.clone());
        assert_eq!(simplify(&g), body);
    }

    #[test]
    fn idempotent() {
        let (_, _, fs) = atom_formulas();
        let f = Formula::or([
            Formula::and([fs[0].clone(), Formula::True, fs[1].clone()]),
            Formula::not(Formula::not(fs[2].clone())),
            Formula::False,
        ]);
        let once = simplify(&f);
        let twice = simplify(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn nnf_pushes_negations_to_atoms() {
        let (_, mut v, fs) = atom_formulas();
        let p = fs[0].clone();
        let q = fs[1].clone();
        // ¬(p ∧ q) → ¬p ∨ ¬q
        let f = Formula::not(Formula::and([p.clone(), q.clone()]));
        assert_eq!(
            nnf(&f),
            Formula::Or(vec![Formula::not(p.clone()), Formula::not(q.clone())])
        );
        // ¬(p ⇒ q) → p ∧ ¬q
        let f = Formula::not(Formula::implies(p.clone(), q.clone()));
        assert_eq!(
            nnf(&f),
            Formula::And(vec![p.clone(), Formula::not(q.clone())])
        );
        // ¬∀x·p → ∃x·¬p
        let x = v.fresh_var();
        let s = crate::symbols::SortId(0);
        let f = Formula::not(Formula::forall(x, s, p.clone()));
        assert_eq!(nnf(&f), Formula::exists(x, s, Formula::not(p.clone())));
        // Constants flip.
        assert_eq!(nnf(&Formula::not(Formula::True)), Formula::False);
    }

    #[test]
    fn nnf_preserves_semantics() {
        let (u, _, fs) = atom_formulas();
        let formulas = vec![
            Formula::not(Formula::implies(fs[0].clone(), fs[1].clone())),
            Formula::not(Formula::iff(fs[0].clone(), fs[2].clone())),
            Formula::iff(fs[0].clone(), fs[2].clone()),
            Formula::not(Formula::or([
                Formula::and([fs[0].clone(), fs[1].clone()]),
                Formula::not(fs[2].clone()),
            ])),
        ];
        for mask in 0..8u32 {
            let mut inst = Instance::new();
            for (bit, f) in fs.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    if let Formula::Pred(r, args) = f {
                        inst.insert(*r, args.iter().map(|t| t.as_const().unwrap()).collect());
                    }
                }
            }
            for f in &formulas {
                assert_eq!(
                    evaluate_closed(f, &inst, &u).unwrap(),
                    evaluate_closed(&nnf(f), &inst, &u).unwrap(),
                    "mask {mask} formula {f:?}"
                );
            }
        }
    }

    #[test]
    fn preserves_semantics_on_sampled_instances() {
        let (u, _, fs) = atom_formulas();
        // Enumerate all instances over the three ground atoms used.
        let formulas = vec![
            Formula::and([fs[0].clone(), Formula::or([fs[1].clone(), fs[2].clone()])]),
            Formula::implies(fs[0].clone(), Formula::and([fs[1].clone(), Formula::False])),
            Formula::iff(Formula::not(fs[0].clone()), fs[2].clone()),
            Formula::or([
                Formula::not(Formula::and([fs[0].clone(), fs[1].clone()])),
                fs[2].clone(),
            ]),
        ];
        // All subsets of {p(a), q(b), p(b)}: encode by bits.
        let (pu, pv, _) = atom_formulas();
        let _ = (pu, pv);
        for mask in 0..8u32 {
            let mut inst = Instance::new();
            for (bit, f) in fs.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    if let Formula::Pred(r, args) = f {
                        let tuple: Vec<_> =
                            args.iter().map(|t| t.as_const().unwrap()).collect();
                        inst.insert(*r, tuple);
                    }
                }
            }
            for f in &formulas {
                let before = evaluate_closed(f, &inst, &u).unwrap();
                let after = evaluate_closed(&simplify(f), &inst, &u).unwrap();
                assert_eq!(before, after, "mask {mask}, formula {f:?}");
            }
        }
    }
}
