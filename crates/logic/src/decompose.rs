//! Goal decomposition (step 1 of Alg. 3).
//!
//! Alg. 3 begins with `φ'_A ← decompose(φ_A)`: "the formulas φ_A are
//! decomposed into small subformulas" so that the B-relevant ones can be
//! filtered and substituted independently. Decomposition must be
//! *conjunction-preserving*: the conjunction of the returned subformulas
//! is equivalent to the input.

use crate::formula::Formula;

/// Split a formula into a conjunction of small subformulas.
///
/// Rewrites applied (each preserves the conjunction semantics):
/// * `f₁ ∧ … ∧ fₙ` splits into the decompositions of each `fᵢ`;
/// * `∀x·(f₁ ∧ … ∧ fₙ)` distributes to `∀x·f₁, …, ∀x·fₙ` and recurses
///   (universal quantification distributes over conjunction);
/// * `a ⇔ b` splits into `a ⇒ b` and `b ⇒ a`;
/// * `¬(f₁ ∨ … ∨ fₙ)` splits into `¬f₁, …, ¬fₙ` (De Morgan);
/// * anything else is returned whole.
///
/// Existential quantifiers and disjunctions are *not* split — doing so
/// would change meaning.
pub fn decompose(f: &Formula) -> Vec<Formula> {
    let mut out = Vec::new();
    go(f, &mut out);
    out
}

fn go(f: &Formula, out: &mut Vec<Formula>) {
    match f {
        Formula::True => {}
        Formula::And(fs) => {
            for g in fs {
                go(g, out);
            }
        }
        Formula::Forall(v, s, body) => match body.as_ref() {
            Formula::And(fs) => {
                for g in fs {
                    go(&Formula::forall(*v, *s, g.clone()), out);
                }
            }
            Formula::Forall(_, _, _) => {
                // Peek through nested ∀ to find a splittable conjunction:
                // ∀x·∀y·(f ∧ g) → ∀x·∀y·f, ∀x·∀y·g.
                let inner = decompose(body);
                if inner.len() <= 1 {
                    out.push(f.clone());
                } else {
                    for g in inner {
                        go(&Formula::forall(*v, *s, g), out);
                    }
                }
            }
            _ => out.push(f.clone()),
        },
        Formula::Iff(a, b) => {
            go(&Formula::implies(a.as_ref().clone(), b.as_ref().clone()), out);
            go(&Formula::implies(b.as_ref().clone(), a.as_ref().clone()), out);
        }
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Or(fs) => {
                for g in fs {
                    go(&Formula::not(g.clone()), out);
                }
            }
            Formula::Not(g) => go(g, out),
            _ => out.push(f.clone()),
        },
        _ => out.push(f.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{Domain, Universe, Vocabulary};
    use crate::term::Term;
    use crate::{evaluate_closed, Instance};

    fn fixture() -> (Universe, Vocabulary, Vec<Formula>, crate::symbols::SortId) {
        let mut u = Universe::new();
        let s = u.add_sort("S");
        let a = u.add_atom(s, "a");
        let b = u.add_atom(s, "b");
        let mut v = Vocabulary::new();
        let p = v.add_simple_rel("p", vec![s], Domain::Structure);
        let q = v.add_simple_rel("q", vec![s], Domain::Structure);
        let fs = vec![
            Formula::pred(p, [Term::Const(a)]),
            Formula::pred(q, [Term::Const(b)]),
            Formula::pred(p, [Term::Const(b)]),
        ];
        (u, v, fs, s)
    }

    #[test]
    fn splits_conjunctions_recursively() {
        let (_, _, fs, _) = fixture();
        let f = Formula::and([
            fs[0].clone(),
            Formula::and([fs[1].clone(), fs[2].clone()]),
        ]);
        assert_eq!(decompose(&f), vec![fs[0].clone(), fs[1].clone(), fs[2].clone()]);
    }

    #[test]
    fn distributes_forall_over_and() {
        let (_, mut v, fs, s) = fixture();
        let x = v.fresh_var();
        let body = Formula::and([fs[0].clone(), fs[1].clone()]);
        let f = Formula::forall(x, s, body);
        let parts = decompose(&f);
        assert_eq!(
            parts,
            vec![
                Formula::forall(x, s, fs[0].clone()),
                Formula::forall(x, s, fs[1].clone()),
            ]
        );
    }

    #[test]
    fn nested_foralls_are_peeked_through() {
        let (_, mut v, fs, s) = fixture();
        let x = v.fresh_var();
        let y = v.fresh_var();
        let f = Formula::forall(
            x,
            s,
            Formula::forall(y, s, Formula::and([fs[0].clone(), fs[1].clone()])),
        );
        let parts = decompose(&f);
        assert_eq!(parts.len(), 2);
        for p in &parts {
            assert!(matches!(p, Formula::Forall(_, _, _)));
        }
    }

    #[test]
    fn splits_iff_and_negated_or() {
        let (_, _, fs, _) = fixture();
        let f = Formula::iff(fs[0].clone(), fs[1].clone());
        assert_eq!(decompose(&f).len(), 2);
        let g = Formula::not(Formula::or([fs[0].clone(), fs[1].clone()]));
        assert_eq!(
            decompose(&g),
            vec![
                Formula::not(fs[0].clone()),
                Formula::not(fs[1].clone()),
            ]
        );
    }

    #[test]
    fn leaves_disjunction_and_exists_whole() {
        let (_, mut v, fs, s) = fixture();
        let or = Formula::or([fs[0].clone(), fs[1].clone()]);
        assert_eq!(decompose(&or), vec![or.clone()]);
        let x = v.fresh_var();
        let ex = Formula::exists(x, s, Formula::and([fs[0].clone(), fs[1].clone()]));
        assert_eq!(decompose(&ex), vec![ex.clone()]);
    }

    #[test]
    fn conjunction_of_parts_is_equivalent_to_input() {
        let (u, mut v, fs, s) = fixture();
        let x = v.fresh_var();
        let formulas = vec![
            Formula::and([
                fs[0].clone(),
                Formula::forall(x, s, Formula::and([fs[1].clone(), fs[2].clone()])),
            ]),
            Formula::iff(fs[0].clone(), Formula::not(Formula::or([fs[1].clone(), fs[2].clone()]))),
        ];
        for f in &formulas {
            let parts = decompose(f);
            for mask in 0..8u32 {
                let mut inst = Instance::new();
                for (bit, g) in fs.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        if let Formula::Pred(r, args) = g {
                            inst.insert(
                                *r,
                                args.iter().map(|t| t.as_const().unwrap()).collect(),
                            );
                        }
                    }
                }
                let whole = evaluate_closed(f, &inst, &u).unwrap();
                let split = parts
                    .iter()
                    .all(|p| evaluate_closed(p, &inst, &u).unwrap());
                assert_eq!(whole, split, "mask {mask} formula {f:?}");
            }
        }
    }

    #[test]
    fn true_decomposes_to_nothing() {
        assert!(decompose(&Formula::True).is_empty());
        let (_, _, fs, _) = fixture();
        let f = Formula::and([Formula::True, fs[0].clone()]);
        assert_eq!(decompose(&f), vec![fs[0].clone()]);
    }
}
