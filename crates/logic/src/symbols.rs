//! Sorts, atoms, relation symbols and configuration-domain ownership.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a sort (a finite type such as `Service` or `Port`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SortId(pub u32);

/// Identifier of an atom (an element of some sort's domain).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AtomId(pub u32);

/// Identifier of a relation symbol.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub u32);

/// Identifier of a (quantified) variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

/// Identifier of an administrator / party (the paper's `A`, `B`, …).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PartyId(pub u32);

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "party{}", self.0)
    }
}

/// Who owns a relation: the shared system structure, or one party's
/// configuration domain.
///
/// The paper's algorithms hinge on this split: envelope extraction (Alg. 3)
/// keeps subformulas that mention the *recipient's* domain and substitutes
/// away the *sender's*; structure relations (service names, listening
/// ports) are fixed facts visible to everyone.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Domain {
    /// Shared, immutable system structure (e.g. which ports a service
    /// listens on). Never substituted, never synthesized.
    Structure,
    /// A party's configuration domain (e.g. the K8s administrator's
    /// NetworkPolicy relations).
    Party(PartyId),
}

/// A named sort (finite type).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sort {
    /// Human-readable name, e.g. `"Service"`.
    pub name: String,
}

/// A relation declaration: name, argument sorts, owner domain and English
/// templates for rendering (see [`crate::pretty`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelDecl {
    /// Symbol name as shown in Alloy-style output, e.g.
    /// `"istio_egress_deny_port"`.
    pub name: String,
    /// Argument sorts; the arity is `arg_sorts.len()`.
    pub arg_sorts: Vec<SortId>,
    /// Owner of this relation.
    pub owner: Domain,
    /// English template for a positive atom, with `{0}`, `{1}`, …
    /// placeholders for the arguments; e.g.
    /// `"{0} listens on port {1}"`. Empty string falls back to
    /// `name(args)`.
    pub english: String,
    /// English template for a negated atom; empty string falls back to
    /// `"it is not the case that " + english`.
    pub english_neg: String,
}

/// The finite universe: all sorts and their atoms.
///
/// Atom ids are globally unique (not per-sort); every atom belongs to
/// exactly one sort.
#[derive(Clone, Debug, Default)]
pub struct Universe {
    sorts: Vec<Sort>,
    atom_names: Vec<String>,
    atom_sorts: Vec<SortId>,
    /// Atoms of each sort, in insertion order.
    members: Vec<Vec<AtomId>>,
    /// Name → atom lookup (names are unique within a sort).
    by_name: BTreeMap<(SortId, String), AtomId>,
}

impl Universe {
    /// An empty universe.
    pub fn new() -> Universe {
        Universe::default()
    }

    /// Declare a new sort.
    pub fn add_sort(&mut self, name: impl Into<String>) -> SortId {
        let id = SortId(self.sorts.len() as u32);
        self.sorts.push(Sort { name: name.into() });
        self.members.push(Vec::new());
        id
    }

    /// Add an atom to `sort`. Re-adding an existing name returns the
    /// original atom (idempotent).
    pub fn add_atom(&mut self, sort: SortId, name: impl Into<String>) -> AtomId {
        let name = name.into();
        if let Some(&a) = self.by_name.get(&(sort, name.clone())) {
            return a;
        }
        let id = AtomId(self.atom_names.len() as u32);
        self.atom_names.push(name.clone());
        self.atom_sorts.push(sort);
        self.members[sort.0 as usize].push(id);
        self.by_name.insert((sort, name), id);
        id
    }

    /// Look up an atom by sort and name.
    pub fn atom(&self, sort: SortId, name: &str) -> Option<AtomId> {
        self.by_name.get(&(sort, name.to_string())).copied()
    }

    /// All atoms of a sort, in insertion order.
    pub fn atoms_of(&self, sort: SortId) -> &[AtomId] {
        &self.members[sort.0 as usize]
    }

    /// The sort an atom belongs to.
    pub fn sort_of(&self, atom: AtomId) -> SortId {
        self.atom_sorts[atom.0 as usize]
    }

    /// An atom's display name.
    pub fn atom_name(&self, atom: AtomId) -> &str {
        &self.atom_names[atom.0 as usize]
    }

    /// A sort's display name.
    pub fn sort_name(&self, sort: SortId) -> &str {
        &self.sorts[sort.0 as usize].name
    }

    /// Number of sorts.
    pub fn num_sorts(&self) -> usize {
        self.sorts.len()
    }

    /// Number of atoms across all sorts.
    pub fn num_atoms(&self) -> usize {
        self.atom_names.len()
    }
}

/// The relational vocabulary plus a fresh-variable supply.
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    rels: Vec<RelDecl>,
    by_name: BTreeMap<String, RelId>,
    next_var: u32,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Declare a relation. Names must be unique.
    ///
    /// # Panics
    /// Panics on duplicate relation names — a caller bug.
    pub fn add_rel(&mut self, decl: RelDecl) -> RelId {
        assert!(
            !self.by_name.contains_key(&decl.name),
            "duplicate relation name {:?}",
            decl.name
        );
        let id = RelId(self.rels.len() as u32);
        self.by_name.insert(decl.name.clone(), id);
        self.rels.push(decl);
        id
    }

    /// Convenience: declare a relation without English templates.
    pub fn add_simple_rel(
        &mut self,
        name: impl Into<String>,
        arg_sorts: Vec<SortId>,
        owner: Domain,
    ) -> RelId {
        self.add_rel(RelDecl {
            name: name.into(),
            arg_sorts,
            owner,
            english: String::new(),
            english_neg: String::new(),
        })
    }

    /// Look up a relation by name.
    pub fn rel_by_name(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// A relation's declaration.
    pub fn rel(&self, id: RelId) -> &RelDecl {
        &self.rels[id.0 as usize]
    }

    /// All declared relations in id order.
    pub fn rels(&self) -> impl Iterator<Item = (RelId, &RelDecl)> {
        self.rels
            .iter()
            .enumerate()
            .map(|(i, d)| (RelId(i as u32), d))
    }

    /// Number of declared relations.
    pub fn num_rels(&self) -> usize {
        self.rels.len()
    }

    /// Produce a fresh variable id (never reused).
    pub fn fresh_var(&mut self) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_atoms_are_idempotent_and_sorted_by_sort() {
        let mut u = Universe::new();
        let svc = u.add_sort("Service");
        let port = u.add_sort("Port");
        let fe = u.add_atom(svc, "frontend");
        let fe2 = u.add_atom(svc, "frontend");
        assert_eq!(fe, fe2);
        let p23 = u.add_atom(port, "23");
        assert_eq!(u.atoms_of(svc), &[fe]);
        assert_eq!(u.atoms_of(port), &[p23]);
        assert_eq!(u.sort_of(p23), port);
        assert_eq!(u.atom_name(fe), "frontend");
        assert_eq!(u.sort_name(svc), "Service");
        assert_eq!(u.atom(svc, "frontend"), Some(fe));
        assert_eq!(u.atom(port, "frontend"), None);
        assert_eq!(u.num_sorts(), 2);
        assert_eq!(u.num_atoms(), 2);
    }

    #[test]
    fn same_name_in_different_sorts_is_distinct() {
        let mut u = Universe::new();
        let a = u.add_sort("A");
        let b = u.add_sort("B");
        let x1 = u.add_atom(a, "x");
        let x2 = u.add_atom(b, "x");
        assert_ne!(x1, x2);
    }

    #[test]
    fn vocabulary_lookup_and_fresh_vars() {
        let mut v = Vocabulary::new();
        let r = v.add_simple_rel("listens", vec![SortId(0), SortId(1)], Domain::Structure);
        assert_eq!(v.rel_by_name("listens"), Some(r));
        assert_eq!(v.rel(r).arg_sorts.len(), 2);
        assert_eq!(v.rel(r).owner, Domain::Structure);
        let v1 = v.fresh_var();
        let v2 = v.fresh_var();
        assert_ne!(v1, v2);
        assert_eq!(v.num_rels(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate relation name")]
    fn duplicate_relation_names_panic() {
        let mut v = Vocabulary::new();
        v.add_simple_rel("r", vec![], Domain::Structure);
        v.add_simple_rel("r", vec![], Domain::Structure);
    }
}
