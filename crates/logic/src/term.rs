//! Terms: variables and constants.

use crate::symbols::{AtomId, VarId};

/// A first-order term. The logic has no function symbols, so a term is
/// either a bound variable or a constant atom.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A variable bound by an enclosing quantifier.
    Var(VarId),
    /// A constant atom of the universe.
    Const(AtomId),
}

impl Term {
    /// The variable inside, if any.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(self) -> Option<AtomId> {
        match self {
            Term::Const(a) => Some(a),
            Term::Var(_) => None,
        }
    }

    /// Replace `var` with `atom` (identity on other terms).
    pub fn substitute(self, var: VarId, atom: AtomId) -> Term {
        match self {
            Term::Var(v) if v == var => Term::Const(atom),
            t => t,
        }
    }
}

impl From<VarId> for Term {
    fn from(v: VarId) -> Term {
        Term::Var(v)
    }
}

impl From<AtomId> for Term {
    fn from(a: AtomId) -> Term {
        Term::Const(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_hits_only_the_named_var() {
        let v0 = VarId(0);
        let v1 = VarId(1);
        let a = AtomId(7);
        assert_eq!(Term::Var(v0).substitute(v0, a), Term::Const(a));
        assert_eq!(Term::Var(v1).substitute(v0, a), Term::Var(v1));
        assert_eq!(Term::Const(AtomId(3)).substitute(v0, a), Term::Const(AtomId(3)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Term::Var(VarId(2)).as_var(), Some(VarId(2)));
        assert_eq!(Term::Var(VarId(2)).as_const(), None);
        assert_eq!(Term::Const(AtomId(4)).as_const(), Some(AtomId(4)));
        assert_eq!(Term::from(VarId(1)), Term::Var(VarId(1)));
        assert_eq!(Term::from(AtomId(1)), Term::Const(AtomId(1)));
    }
}
