//! Formula rendering: Alloy-style syntax and plain English.
//!
//! The paper presents envelopes in both forms (Fig. 5): an Alloy-syntax
//! listing for precision and a numbered English translation for
//! communication between administrators ("Would a textual translation
//! help?", Sec. 7). [`Printer`] produces both.

use std::collections::BTreeMap;

use crate::formula::Formula;
use crate::symbols::{Universe, VarId, Vocabulary};
use crate::term::Term;

/// Renders formulas using a vocabulary, a universe and optional
/// human-readable variable names.
pub struct Printer<'a> {
    vocab: &'a Vocabulary,
    universe: &'a Universe,
    var_names: BTreeMap<VarId, String>,
}

impl<'a> Printer<'a> {
    /// A printer with auto-generated variable names (`x0`, `x1`, …).
    pub fn new(vocab: &'a Vocabulary, universe: &'a Universe) -> Printer<'a> {
        Printer {
            vocab,
            universe,
            var_names: BTreeMap::new(),
        }
    }

    /// Provide a display name for a variable (e.g. `src`, `dst`).
    pub fn name_var(&mut self, var: VarId, name: impl Into<String>) {
        self.var_names.insert(var, name.into());
    }

    fn var_name(&self, v: VarId) -> String {
        self.var_names
            .get(&v)
            .cloned()
            .unwrap_or_else(|| format!("x{}", v.0))
    }

    fn term(&self, t: Term) -> String {
        match t {
            Term::Var(v) => self.var_name(v),
            Term::Const(a) => self.universe.atom_name(a).to_string(),
        }
    }

    /// Alloy-style rendering, e.g.
    /// `all src: Service | (deny[src, 23] or not listens[src, 23])`.
    pub fn alloy(&self, f: &Formula) -> String {
        match f {
            Formula::True => "true".to_string(),
            Formula::False => "false".to_string(),
            Formula::Pred(r, args) => {
                let args: Vec<String> = args.iter().map(|&t| self.term(t)).collect();
                format!("{}[{}]", self.vocab.rel(*r).name, args.join(", "))
            }
            Formula::Eq(a, b) => format!("{} = {}", self.term(*a), self.term(*b)),
            Formula::Not(g) => format!("not {}", self.alloy_atomic(g)),
            Formula::And(fs) => self.alloy_nary(fs, "and", "true"),
            Formula::Or(fs) => self.alloy_nary(fs, "or", "false"),
            Formula::Implies(a, b) => {
                format!("({} implies {})", self.alloy(a), self.alloy(b))
            }
            Formula::Iff(a, b) => format!("({} iff {})", self.alloy(a), self.alloy(b)),
            Formula::Forall(v, s, body) => format!(
                "all {}: {} | {}",
                self.var_name(*v),
                self.universe.sort_name(*s),
                self.alloy(body)
            ),
            Formula::Exists(v, s, body) => format!(
                "some {}: {} | {}",
                self.var_name(*v),
                self.universe.sort_name(*s),
                self.alloy(body)
            ),
        }
    }

    fn alloy_nary(&self, fs: &[Formula], op: &str, empty: &str) -> String {
        match fs.len() {
            0 => empty.to_string(),
            1 => self.alloy(&fs[0]),
            _ => {
                let parts: Vec<String> = fs.iter().map(|g| self.alloy(g)).collect();
                format!("({})", parts.join(&format!(" {op} ")))
            }
        }
    }

    fn alloy_atomic(&self, f: &Formula) -> String {
        match f {
            Formula::Pred(_, _) | Formula::True | Formula::False | Formula::Eq(_, _) => {
                self.alloy(f)
            }
            _ => format!("({})", self.alloy(f)),
        }
    }

    /// Inline English rendering of a formula.
    pub fn english(&self, f: &Formula) -> String {
        match f {
            Formula::True => "always".to_string(),
            Formula::False => "never".to_string(),
            Formula::Pred(r, args) => self.pred_english(*r, args, false),
            Formula::Eq(a, b) => format!("{} equals {}", self.term(*a), self.term(*b)),
            Formula::Not(g) => match g.as_ref() {
                Formula::Pred(r, args) => self.pred_english(*r, args, true),
                Formula::Eq(a, b) => {
                    format!("{} differs from {}", self.term(*a), self.term(*b))
                }
                other => format!("it is not the case that {}", self.english(other)),
            },
            Formula::And(fs) => self.join_english(fs, "and", "always"),
            Formula::Or(fs) => self.join_english(fs, "or", "never"),
            Formula::Implies(a, b) => {
                format!("if {}, then {}", self.english(a), self.english(b))
            }
            Formula::Iff(a, b) => {
                format!("{} exactly when {}", self.english(a), self.english(b))
            }
            Formula::Forall(v, s, body) => format!(
                "for every {} {}, {}",
                self.universe.sort_name(*s).to_lowercase(),
                self.var_name(*v),
                self.english(body)
            ),
            Formula::Exists(v, s, body) => format!(
                "for some {} {}, {}",
                self.universe.sort_name(*s).to_lowercase(),
                self.var_name(*v),
                self.english(body)
            ),
        }
    }

    fn join_english(&self, fs: &[Formula], op: &str, empty: &str) -> String {
        match fs.len() {
            0 => empty.to_string(),
            1 => self.english(&fs[0]),
            _ => {
                let parts: Vec<String> = fs.iter().map(|g| self.english(g)).collect();
                parts.join(&format!(" {op} "))
            }
        }
    }

    fn pred_english(&self, r: crate::symbols::RelId, args: &[Term], negated: bool) -> String {
        let decl = self.vocab.rel(r);
        let template = if negated {
            if !decl.english_neg.is_empty() {
                decl.english_neg.clone()
            } else if !decl.english.is_empty() {
                format!("it is not the case that {}", decl.english)
            } else {
                String::new()
            }
        } else {
            decl.english.clone()
        };
        if template.is_empty() {
            let rendered: Vec<String> = args.iter().map(|&t| self.term(t)).collect();
            let base = format!("{}({})", decl.name, rendered.join(", "));
            return if negated { format!("not {base}") } else { base };
        }
        let mut out = template;
        for (i, &t) in args.iter().enumerate() {
            out = out.replace(&format!("{{{i}}}"), &self.term(t));
        }
        out
    }

    /// Multi-line, numbered English in the style of the paper's Fig. 5:
    /// leading universal quantifiers become a "For all …" header and a
    /// top-level disjunction becomes a numbered "either/or" list.
    pub fn english_numbered(&self, f: &Formula) -> String {
        let mut quantified = Vec::new();
        let mut cur = f;
        while let Formula::Forall(v, s, body) = cur {
            quantified.push(format!(
                "{}: {}",
                self.var_name(*v),
                self.universe.sort_name(*s)
            ));
            cur = body;
        }
        let mut out = String::new();
        if !quantified.is_empty() {
            out.push_str(&format!(
                "For all {} pairs, either:\n",
                quantified.join(", ")
            ));
        }
        match cur {
            Formula::Or(fs) if fs.len() > 1 => {
                for (i, g) in fs.iter().enumerate() {
                    let sentence = capitalize(&self.english(g));
                    out.push_str(&format!("({}) {}.\n", i + 1, sentence));
                }
            }
            other => {
                out.push_str(&capitalize(&self.english(other)));
                out.push_str(".\n");
            }
        }
        out
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{Domain, PartyId, RelDecl};

    fn fixture() -> (Universe, Vocabulary, Formula, VarId, VarId) {
        let mut u = Universe::new();
        let svc = u.add_sort("Service");
        let port = u.add_sort("Port");
        u.add_atom(svc, "frontend");
        u.add_atom(svc, "backend");
        let p23 = u.add_atom(port, "23");
        let mut v = Vocabulary::new();
        let listens = v.add_rel(RelDecl {
            name: "listens".into(),
            arg_sorts: vec![svc, port],
            owner: Domain::Structure,
            english: "{0} listens on port {1}".into(),
            english_neg: "{0} does not listen on port {1}".into(),
        });
        let deny = v.add_rel(RelDecl {
            name: "egress_deny".into(),
            arg_sorts: vec![svc, port],
            owner: Domain::Party(PartyId(1)),
            english: "{0} is explicitly blocked from sending to port {1}".into(),
            english_neg: String::new(),
        });
        let src = v.fresh_var();
        let dst = v.fresh_var();
        let f = Formula::forall(
            src,
            svc,
            Formula::forall(
                dst,
                svc,
                Formula::or([
                    Formula::not(Formula::pred(
                        listens,
                        [Term::Var(dst), Term::Const(p23)],
                    )),
                    Formula::pred(deny, [Term::Var(src), Term::Const(p23)]),
                ]),
            ),
        );
        (u, v, f, src, dst)
    }

    #[test]
    fn alloy_rendering() {
        let (u, v, f, src, dst) = fixture();
        let mut p = Printer::new(&v, &u);
        p.name_var(src, "src");
        p.name_var(dst, "dst");
        let s = p.alloy(&f);
        assert_eq!(
            s,
            "all src: Service | all dst: Service | \
             (not listens[dst, 23] or egress_deny[src, 23])"
        );
    }

    #[test]
    fn english_uses_templates_and_negations() {
        let (u, v, f, src, dst) = fixture();
        let mut p = Printer::new(&v, &u);
        p.name_var(src, "src");
        p.name_var(dst, "dst");
        let s = p.english(&f);
        assert!(s.contains("dst does not listen on port 23"), "{s}");
        assert!(
            s.contains("src is explicitly blocked from sending to port 23"),
            "{s}"
        );
    }

    #[test]
    fn numbered_english_mirrors_fig5_shape() {
        let (u, v, f, src, dst) = fixture();
        let mut p = Printer::new(&v, &u);
        p.name_var(src, "src");
        p.name_var(dst, "dst");
        let s = p.english_numbered(&f);
        assert!(s.starts_with("For all src: Service, dst: Service pairs, either:"));
        assert!(s.contains("(1) Dst does not listen on port 23."));
        assert!(s.contains("(2) Src is explicitly blocked from sending to port 23."));
    }

    #[test]
    fn fallback_names_and_rendering() {
        let (u, v, _, _, _) = fixture();
        let p = Printer::new(&v, &u);
        let deny = v.rel_by_name("egress_deny").unwrap();
        let g = Formula::not(Formula::pred(deny, [Term::Var(VarId(9))]));
        // english_neg empty → "it is not the case that" prefix.
        assert!(p.english(&g).contains("it is not the case that"));
        assert!(p.alloy(&g).starts_with("not egress_deny[x9]"));
        assert_eq!(p.alloy(&Formula::True), "true");
        assert_eq!(p.english(&Formula::and([])), "always");
        assert_eq!(p.english(&Formula::or([])), "never");
    }
}
