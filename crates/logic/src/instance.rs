//! Concrete and partial configuration instances.

use std::collections::{BTreeMap, BTreeSet};

use crate::symbols::{AtomId, Domain, RelId, Universe, Vocabulary};

/// A concrete instance: for each relation, the set of tuples it contains.
///
/// Instances play two roles in Muppet: a party's *configuration* `C_A`
/// (tables for the relations that party owns, plus the shared structure)
/// and the solver's *model* output (tables for everything).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Instance {
    tables: BTreeMap<RelId, BTreeSet<Vec<AtomId>>>,
}

impl Instance {
    /// An empty instance (all relations empty).
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Insert a tuple into `rel`.
    pub fn insert(&mut self, rel: RelId, tuple: Vec<AtomId>) {
        self.tables.entry(rel).or_default().insert(tuple);
    }

    /// Remove a tuple from `rel`.
    pub fn remove(&mut self, rel: RelId, tuple: &[AtomId]) {
        if let Some(t) = self.tables.get_mut(&rel) {
            t.remove(tuple);
        }
    }

    /// Does `rel` contain `tuple`?
    pub fn holds(&self, rel: RelId, tuple: &[AtomId]) -> bool {
        self.tables
            .get(&rel)
            .map(|t| t.contains(tuple))
            .unwrap_or(false)
    }

    /// The tuples of `rel` (empty set if never touched).
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &Vec<AtomId>> {
        self.tables.get(&rel).into_iter().flatten()
    }

    /// Number of tuples in `rel`.
    pub fn count(&self, rel: RelId) -> usize {
        self.tables.get(&rel).map(BTreeSet::len).unwrap_or(0)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(BTreeSet::len).sum()
    }

    /// Every (relation, tuple) pair in the instance.
    pub fn all_tuples(&self) -> Vec<(RelId, Vec<AtomId>)> {
        self.tables
            .iter()
            .flat_map(|(r, ts)| ts.iter().map(move |t| (*r, t.clone())))
            .collect()
    }

    /// Merge another instance into this one (set union per relation).
    ///
    /// This is the `C_A ∪ C_B` of Algs. 1–2: the two parties own disjoint
    /// relations, so union is simply laying the tables side by side.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        for (rel, tuples) in &other.tables {
            let entry = out.tables.entry(*rel).or_default();
            for t in tuples {
                entry.insert(t.clone());
            }
        }
        out
    }

    /// Restrict to the relations owned by `domain`.
    pub fn restrict_to_domain(&self, vocab: &Vocabulary, domain: Domain) -> Instance {
        let mut out = Instance::new();
        for (rel, tuples) in &self.tables {
            if vocab.rel(*rel).owner == domain {
                out.tables.insert(*rel, tuples.clone());
            }
        }
        out
    }

    /// Symmetric-difference size against another instance, counted in
    /// tuples. This is the *edit distance* used for minimal-edit feedback
    /// (Fig. 8) and the negotiation experiments.
    pub fn distance(&self, other: &Instance) -> usize {
        let mut d = 0;
        let rels: BTreeSet<RelId> = self
            .tables
            .keys()
            .chain(other.tables.keys())
            .copied()
            .collect();
        for rel in rels {
            let a = self.tables.get(&rel);
            let b = other.tables.get(&rel);
            match (a, b) {
                (Some(a), Some(b)) => {
                    d += a.symmetric_difference(b).count();
                }
                (Some(a), None) => d += a.len(),
                (None, Some(b)) => d += b.len(),
                (None, None) => {}
            }
        }
        d
    }

    /// Sanity-check that every tuple matches its relation's declared
    /// arity and argument sorts. Returns the first violation found.
    pub fn validate(&self, vocab: &Vocabulary, universe: &Universe) -> Result<(), String> {
        for (rel, tuples) in &self.tables {
            let decl = vocab.rel(*rel);
            for t in tuples {
                if t.len() != decl.arg_sorts.len() {
                    return Err(format!(
                        "relation {} expects arity {}, got tuple of length {}",
                        decl.name,
                        decl.arg_sorts.len(),
                        t.len()
                    ));
                }
                for (i, &atom) in t.iter().enumerate() {
                    if universe.sort_of(atom) != decl.arg_sorts[i] {
                        return Err(format!(
                            "relation {} argument {} expects sort {}, got atom {}",
                            decl.name,
                            i,
                            universe.sort_name(decl.arg_sorts[i]),
                            universe.atom_name(atom)
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A partial instance: per-relation lower and upper bounds.
///
/// This is how the paper's `C??` — a configuration "with holes … or a full
/// configuration that labels some settings as soft" — is represented, in
/// direct analogy to Kodkod's partial instances:
///
/// * a tuple in the **lower** bound *must* be present (a hard setting);
/// * a tuple in the **upper** bound *may* be present (a hole or a soft
///   setting the solver is free to use);
/// * a tuple outside the upper bound is forbidden.
///
/// An "empty `C??`" (complete flexibility, Sec. 4.1) is the partial
/// instance with empty lower bounds and full upper bounds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartialInstance {
    lower: BTreeMap<RelId, BTreeSet<Vec<AtomId>>>,
    upper: BTreeMap<RelId, BTreeSet<Vec<AtomId>>>,
}

impl PartialInstance {
    /// An empty partial instance: no relations bounded yet. Relations not
    /// mentioned at all are treated by the solver according to its
    /// defaults (free over the full product for owned relations).
    pub fn new() -> PartialInstance {
        PartialInstance::default()
    }

    /// Require `tuple ∈ rel` (hard setting). Also enters the upper bound.
    pub fn require(&mut self, rel: RelId, tuple: Vec<AtomId>) {
        self.upper.entry(rel).or_default().insert(tuple.clone());
        self.lower.entry(rel).or_default().insert(tuple);
    }

    /// Permit `tuple ∈ rel` (hole / soft setting).
    pub fn permit(&mut self, rel: RelId, tuple: Vec<AtomId>) {
        self.upper.entry(rel).or_default().insert(tuple);
    }

    /// Mark `rel` as bounded with what has been required/permitted so far
    /// even if that is nothing (i.e. an explicitly *fixed* empty or partial
    /// relation, rather than an unbounded hole).
    pub fn bound(&mut self, rel: RelId) {
        self.upper.entry(rel).or_default();
        self.lower.entry(rel).or_default();
    }

    /// Is `rel` explicitly bounded?
    pub fn is_bounded(&self, rel: RelId) -> bool {
        self.upper.contains_key(&rel)
    }

    /// Lower-bound tuples for `rel`.
    pub fn lower(&self, rel: RelId) -> impl Iterator<Item = &Vec<AtomId>> {
        self.lower.get(&rel).into_iter().flatten()
    }

    /// Upper-bound tuples for `rel`.
    pub fn upper(&self, rel: RelId) -> impl Iterator<Item = &Vec<AtomId>> {
        self.upper.get(&rel).into_iter().flatten()
    }

    /// Is `tuple` required (in the lower bound)?
    pub fn is_required(&self, rel: RelId, tuple: &[AtomId]) -> bool {
        self.lower
            .get(&rel)
            .map(|t| t.contains(tuple))
            .unwrap_or(false)
    }

    /// Is `tuple` allowed (in the upper bound, or the relation unbounded)?
    pub fn is_allowed(&self, rel: RelId, tuple: &[AtomId]) -> bool {
        match self.upper.get(&rel) {
            Some(t) => t.contains(tuple),
            None => true,
        }
    }

    /// Fix a relation exactly to the tuples of `inst` (no freedom).
    pub fn fix_from(&mut self, rel: RelId, inst: &Instance) {
        self.bound(rel);
        for t in inst.tuples(rel) {
            self.require(rel, t.clone());
        }
    }

    /// Treat every tuple of `inst` as *soft*: permitted but not required.
    /// This is the paper's "full configuration that labels some settings
    /// as 'soft'" (here: all of them; callers can `require` the hard
    /// subset afterwards).
    pub fn soft_from(&mut self, rel: RelId, inst: &Instance) {
        self.bound(rel);
        for t in inst.tuples(rel) {
            self.permit(rel, t.clone());
        }
    }

    /// Does a concrete instance respect these bounds
    /// (`lower ⊆ inst ⊆ upper` on every bounded relation)?
    pub fn admits(&self, inst: &Instance) -> bool {
        for (rel, lower) in &self.lower {
            for t in lower {
                if !inst.holds(*rel, t) {
                    return false;
                }
            }
        }
        for (rel, upper) in &self.upper {
            for t in inst.tuples(*rel) {
                if !upper.contains(t) {
                    return false;
                }
            }
        }
        true
    }

    /// The relations explicitly bounded by this partial instance.
    pub fn bounded_rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.upper.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{Domain, PartyId, Universe, Vocabulary};

    fn setup() -> (Universe, Vocabulary, RelId, Vec<AtomId>) {
        let mut u = Universe::new();
        let s = u.add_sort("S");
        let atoms = vec![u.add_atom(s, "x"), u.add_atom(s, "y")];
        let mut v = Vocabulary::new();
        let r = v.add_simple_rel("r", vec![s, s], Domain::Party(PartyId(0)));
        (u, v, r, atoms)
    }

    #[test]
    fn instance_basic_ops() {
        let (_, _, r, a) = setup();
        let mut i = Instance::new();
        assert!(!i.holds(r, &[a[0], a[1]]));
        i.insert(r, vec![a[0], a[1]]);
        assert!(i.holds(r, &[a[0], a[1]]));
        assert_eq!(i.count(r), 1);
        i.remove(r, &[a[0], a[1]]);
        assert!(!i.holds(r, &[a[0], a[1]]));
    }

    #[test]
    fn union_and_distance() {
        let (_, _, r, a) = setup();
        let mut i1 = Instance::new();
        i1.insert(r, vec![a[0], a[0]]);
        i1.insert(r, vec![a[0], a[1]]);
        let mut i2 = Instance::new();
        i2.insert(r, vec![a[0], a[1]]);
        i2.insert(r, vec![a[1], a[1]]);
        let u = i1.union(&i2);
        assert_eq!(u.count(r), 3);
        assert_eq!(i1.distance(&i2), 2);
        assert_eq!(i1.distance(&i1), 0);
        assert_eq!(i1.distance(&Instance::new()), 2);
    }

    #[test]
    fn validation_catches_arity_and_sort_errors() {
        let (mut u, mut v, r, a) = setup();
        let other = u.add_sort("T");
        let t_atom = u.add_atom(other, "t");
        let mut ok = Instance::new();
        ok.insert(r, vec![a[0], a[1]]);
        assert!(ok.validate(&v, &u).is_ok());
        let mut bad_arity = Instance::new();
        bad_arity.insert(r, vec![a[0]]);
        assert!(bad_arity.validate(&v, &u).is_err());
        let mut bad_sort = Instance::new();
        bad_sort.insert(r, vec![a[0], t_atom]);
        assert!(bad_sort.validate(&v, &u).is_err());
        let _ = v.fresh_var();
    }

    #[test]
    fn partial_instance_bounds() {
        let (_, _, r, a) = setup();
        let mut p = PartialInstance::new();
        // Unbounded: everything allowed, nothing required.
        assert!(p.is_allowed(r, &[a[0], a[0]]));
        assert!(!p.is_required(r, &[a[0], a[0]]));
        p.require(r, vec![a[0], a[1]]);
        p.permit(r, vec![a[1], a[1]]);
        assert!(p.is_required(r, &[a[0], a[1]]));
        assert!(p.is_allowed(r, &[a[1], a[1]]));
        assert!(!p.is_allowed(r, &[a[0], a[0]]));

        let mut good = Instance::new();
        good.insert(r, vec![a[0], a[1]]);
        assert!(p.admits(&good));
        good.insert(r, vec![a[1], a[1]]);
        assert!(p.admits(&good));
        let mut missing_required = Instance::new();
        missing_required.insert(r, vec![a[1], a[1]]);
        assert!(!p.admits(&missing_required));
        let mut extra = Instance::new();
        extra.insert(r, vec![a[0], a[1]]);
        extra.insert(r, vec![a[0], a[0]]);
        assert!(!p.admits(&extra));
    }

    #[test]
    fn soft_and_fix_builders() {
        let (_, _, r, a) = setup();
        let mut base = Instance::new();
        base.insert(r, vec![a[0], a[0]]);

        let mut soft = PartialInstance::new();
        soft.soft_from(r, &base);
        assert!(soft.admits(&Instance::new())); // may drop everything
        assert!(soft.admits(&base));

        let mut hard = PartialInstance::new();
        hard.fix_from(r, &base);
        assert!(!hard.admits(&Instance::new()));
        assert!(hard.admits(&base));
    }

    #[test]
    fn restrict_to_domain_keeps_only_owned() {
        let (_, mut v, r, a) = setup();
        let r2 = v.add_simple_rel("other", vec![], Domain::Party(PartyId(1)));
        let mut i = Instance::new();
        i.insert(r, vec![a[0], a[0]]);
        i.insert(r2, vec![]);
        let only0 = i.restrict_to_domain(&v, Domain::Party(PartyId(0)));
        assert_eq!(only0.count(r), 1);
        assert_eq!(only0.count(r2), 0);
    }
}
