//! The formula AST and structural operations.

use std::collections::BTreeSet;

use crate::symbols::{AtomId, Domain, RelId, SortId, VarId, Vocabulary};
use crate::term::Term;

/// A bounded first-order formula.
///
/// Quantifiers range over the (finite) atoms of a sort, so every formula
/// denotes a decidable property of an [`crate::Instance`]. This is exactly
/// the fragment the paper assumes for goals (Sec. 4: "administrator goals
/// can be translated … to bounded first-order formulas").
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// Relation membership `r(t₁, …, tₖ)`.
    Pred(RelId, Vec<Term>),
    /// Term equality.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction (empty = true).
    And(Vec<Formula>),
    /// N-ary disjunction (empty = false).
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
    /// Universal quantification over a sort.
    Forall(VarId, SortId, Box<Formula>),
    /// Existential quantification over a sort.
    Exists(VarId, SortId, Box<Formula>),
}

impl Formula {
    /// `r(args)` as a formula.
    pub fn pred(rel: RelId, args: impl IntoIterator<Item = Term>) -> Formula {
        Formula::Pred(rel, args.into_iter().collect())
    }

    /// Conjunction; flattens nothing (see [`crate::simplify`]).
    pub fn and(fs: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::And(fs.into_iter().collect())
    }

    /// Disjunction.
    pub fn or(fs: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::Or(fs.into_iter().collect())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Implication `a ⇒ b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// Bi-implication `a ⇔ b`.
    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::Iff(Box::new(a), Box::new(b))
    }

    /// `∀ v: sort · body`.
    pub fn forall(v: VarId, sort: SortId, body: Formula) -> Formula {
        Formula::Forall(v, sort, Box::new(body))
    }

    /// `∃ v: sort · body`.
    pub fn exists(v: VarId, sort: SortId, body: Formula) -> Formula {
        Formula::Exists(v, sort, Box::new(body))
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut BTreeSet::new(), &mut out);
        out
    }

    fn collect_free_vars(&self, bound: &mut BTreeSet<VarId>, out: &mut BTreeSet<VarId>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Pred(_, args) => {
                for t in args {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(*v);
                        }
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(*v);
                        }
                    }
                }
            }
            Formula::Not(f) => f.collect_free_vars(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free_vars(bound, out);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.collect_free_vars(bound, out);
                b.collect_free_vars(bound, out);
            }
            Formula::Forall(v, _, body) | Formula::Exists(v, _, body) => {
                let fresh = bound.insert(*v);
                body.collect_free_vars(bound, out);
                if fresh {
                    bound.remove(v);
                }
            }
        }
    }

    /// Substitute the constant `atom` for free occurrences of `var`.
    pub fn substitute(&self, var: VarId, atom: AtomId) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Pred(r, args) => Formula::Pred(
                *r,
                args.iter().map(|t| t.substitute(var, atom)).collect(),
            ),
            Formula::Eq(a, b) => Formula::Eq(a.substitute(var, atom), b.substitute(var, atom)),
            Formula::Not(f) => Formula::not(f.substitute(var, atom)),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.substitute(var, atom)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.substitute(var, atom)).collect()),
            Formula::Implies(a, b) => {
                Formula::implies(a.substitute(var, atom), b.substitute(var, atom))
            }
            Formula::Iff(a, b) => Formula::iff(a.substitute(var, atom), b.substitute(var, atom)),
            Formula::Forall(v, s, body) => {
                if *v == var {
                    // Shadowed: the binder captures the name.
                    self.clone()
                } else {
                    Formula::forall(*v, *s, body.substitute(var, atom))
                }
            }
            Formula::Exists(v, s, body) => {
                if *v == var {
                    self.clone()
                } else {
                    Formula::exists(*v, *s, body.substitute(var, atom))
                }
            }
        }
    }

    /// The set of relation symbols mentioned anywhere in the formula.
    pub fn rels(&self) -> BTreeSet<RelId> {
        let mut out = BTreeSet::new();
        self.collect_rels(&mut out);
        out
    }

    fn collect_rels(&self, out: &mut BTreeSet<RelId>) {
        match self {
            Formula::True | Formula::False | Formula::Eq(_, _) => {}
            Formula::Pred(r, _) => {
                out.insert(*r);
            }
            Formula::Not(f) => f.collect_rels(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_rels(out);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.collect_rels(out);
                b.collect_rels(out);
            }
            Formula::Forall(_, _, body) | Formula::Exists(_, _, body) => body.collect_rels(out),
        }
    }

    /// The set of configuration domains whose relations the formula
    /// mentions. This is the paper's `vars(φ)` read through relation
    /// ownership.
    pub fn domains(&self, vocab: &Vocabulary) -> BTreeSet<Domain> {
        self.rels().iter().map(|&r| vocab.rel(r).owner).collect()
    }

    /// Does the formula mention any relation owned by `domain`?
    pub fn mentions_domain(&self, vocab: &Vocabulary, domain: Domain) -> bool {
        self.rels().iter().any(|&r| vocab.rel(r).owner == domain)
    }

    /// Node count, for tests and leakage metrics.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Pred(_, _) | Formula::Eq(_, _) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Implies(a, b) | Formula::Iff(a, b) => 1 + a.size() + b.size(),
            Formula::Forall(_, _, body) | Formula::Exists(_, _, body) => 1 + body.size(),
        }
    }

    /// The set of constant atoms appearing in the formula. Used by the
    /// privacy/leakage metric (Sec. 7): concrete atoms in an envelope are
    /// fragments of the sender's configuration made visible.
    pub fn constants(&self) -> BTreeSet<AtomId> {
        let mut out = BTreeSet::new();
        self.collect_constants(&mut out);
        out
    }

    fn collect_constants(&self, out: &mut BTreeSet<AtomId>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Pred(_, args) => {
                for t in args {
                    if let Term::Const(a) = t {
                        out.insert(*a);
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    if let Term::Const(c) = t {
                        out.insert(*c);
                    }
                }
            }
            Formula::Not(f) => f.collect_constants(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_constants(out);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.collect_constants(out);
                b.collect_constants(out);
            }
            Formula::Forall(_, _, body) | Formula::Exists(_, _, body) => {
                body.collect_constants(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{Domain, PartyId, Universe, Vocabulary};

    fn setup() -> (Universe, Vocabulary, RelId, RelId, SortId) {
        let mut u = Universe::new();
        let svc = u.add_sort("Service");
        u.add_atom(svc, "a");
        u.add_atom(svc, "b");
        let mut v = Vocabulary::new();
        let r_struct = v.add_simple_rel("listens", vec![svc, svc], Domain::Structure);
        let r_k8s = v.add_simple_rel("k8s_deny", vec![svc], Domain::Party(PartyId(0)));
        (u, v, r_struct, r_k8s, svc)
    }

    #[test]
    fn free_vars_respect_binders() {
        let (_, mut v, r, _, svc) = setup();
        let x = v.fresh_var();
        let y = v.fresh_var();
        let f = Formula::forall(
            x,
            svc,
            Formula::pred(r, [Term::Var(x), Term::Var(y)]),
        );
        assert_eq!(f.free_vars(), BTreeSet::from([y]));
        let closed = Formula::exists(y, svc, f);
        assert!(closed.free_vars().is_empty());
    }

    #[test]
    fn substitution_avoids_capture_by_shadowing() {
        let (mut u, mut v, r, _, svc) = setup();
        let a = u.add_atom(svc, "c");
        let x = v.fresh_var();
        // x is free in the predicate but re-bound inside the quantifier.
        let f = Formula::and([
            Formula::pred(r, [Term::Var(x), Term::Var(x)]),
            Formula::forall(x, svc, Formula::pred(r, [Term::Var(x), Term::Var(x)])),
        ]);
        let g = f.substitute(x, a);
        match &g {
            Formula::And(parts) => {
                assert_eq!(
                    parts[0],
                    Formula::pred(r, [Term::Const(a), Term::Const(a)])
                );
                // The shadowed body is untouched.
                assert_eq!(
                    parts[1],
                    Formula::forall(x, svc, Formula::pred(r, [Term::Var(x), Term::Var(x)]))
                );
            }
            _ => panic!("expected And"),
        }
    }

    #[test]
    fn domain_analysis() {
        let (_, mut v, r_struct, r_k8s, svc) = setup();
        let x = v.fresh_var();
        let f = Formula::forall(
            x,
            svc,
            Formula::or([
                Formula::pred(r_struct, [Term::Var(x), Term::Var(x)]),
                Formula::pred(r_k8s, [Term::Var(x)]),
            ]),
        );
        let doms = f.domains(&v);
        assert!(doms.contains(&Domain::Structure));
        assert!(doms.contains(&Domain::Party(PartyId(0))));
        assert!(f.mentions_domain(&v, Domain::Party(PartyId(0))));
        assert!(!f.mentions_domain(&v, Domain::Party(PartyId(1))));
    }

    #[test]
    fn size_and_constants() {
        let (u, mut v, r, _, svc) = setup();
        let a = u.atom(svc, "a").unwrap();
        let x = v.fresh_var();
        let f = Formula::implies(
            Formula::pred(r, [Term::Const(a), Term::Var(x)]),
            Formula::True,
        );
        assert_eq!(f.size(), 3);
        assert_eq!(f.constants(), BTreeSet::from([a]));
    }
}
