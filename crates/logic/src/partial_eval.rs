//! Partial evaluation against a fixed configuration — the `subst(φ, C_A)`
//! of Alg. 3.
//!
//! Given a subformula φ that mentions both the sender A's relations and
//! the recipient B's, envelope extraction must replace "any mention of an
//! item from A's domain … with the concrete settings provided by C_A".
//! Concretely:
//!
//! * ground atoms over A-owned relations are *evaluated* against `C_A`
//!   and replaced by `true`/`false`;
//! * quantifiers whose variable reaches an A-owned atom are *expanded*
//!   over their (finite) sort so those atoms become ground — but
//!   quantifiers that never touch A's domain stay symbolic, which is why
//!   the Fig. 5 envelope retains its `all src, dst: Service` shape;
//! * everything else is left intact.
//!
//! The result, after [`crate::simplify`], is a formula purely over the
//! remaining domains (B's relations and shared structure).

use std::collections::BTreeSet;

use crate::formula::Formula;
use crate::instance::Instance;
use crate::symbols::{Domain, Universe, VarId, Vocabulary};
use crate::term::Term;

/// Partially evaluate `f`: atoms over relations owned by a domain in
/// `eval_domains` are decided using `fixed`; the rest of the formula is
/// preserved. The output mentions no relation owned by `eval_domains`.
///
/// A *uniformity pre-pass* keeps envelopes readable: an evaluated-domain
/// atom whose truth value is the same for **every** instantiation of its
/// variable arguments is replaced in place, without expanding the
/// quantifiers that bind those variables. This is what lets the Fig. 5
/// envelope keep its `all src, dst: Service` shape when the sender's
/// configuration treats all services alike (e.g. an empty `C_A`, or a
/// global ban). Non-uniform atoms still force quantifier expansion,
/// which is semantically required.
pub fn partial_eval(
    f: &Formula,
    fixed: &Instance,
    eval_domains: &BTreeSet<Domain>,
    vocab: &Vocabulary,
    universe: &Universe,
) -> Formula {
    let pre = replace_uniform_atoms(f, fixed, eval_domains, vocab, universe);
    partial_eval_expand(&pre, fixed, eval_domains, vocab, universe)
}

/// Replace eval-domain atoms whose truth is independent of their variable
/// arguments.
fn replace_uniform_atoms(
    f: &Formula,
    fixed: &Instance,
    eval_domains: &BTreeSet<Domain>,
    vocab: &Vocabulary,
    universe: &Universe,
) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Eq(_, _) => f.clone(),
        Formula::Pred(r, args) => {
            if !eval_domains.contains(&vocab.rel(*r).owner) {
                return f.clone();
            }
            // Enumerate every instantiation of the variable positions.
            let decl = vocab.rel(*r);
            let mut assignments: Vec<Vec<crate::symbols::AtomId>> = vec![Vec::new()];
            for (i, t) in args.iter().enumerate() {
                match t {
                    Term::Const(a) => {
                        for tuple in &mut assignments {
                            tuple.push(*a);
                        }
                    }
                    Term::Var(_) => {
                        let atoms = universe.atoms_of(decl.arg_sorts[i]);
                        let mut next = Vec::with_capacity(assignments.len() * atoms.len());
                        for tuple in &assignments {
                            for &a in atoms {
                                let mut t2 = tuple.clone();
                                t2.push(a);
                                next.push(t2);
                            }
                        }
                        assignments = next;
                    }
                }
            }
            let mut values = assignments.iter().map(|t| fixed.holds(*r, t));
            match values.next() {
                None => Formula::False, // empty sort: vacuous atom
                Some(first) => {
                    if values.all(|v| v == first) {
                        if first {
                            Formula::True
                        } else {
                            Formula::False
                        }
                    } else {
                        f.clone()
                    }
                }
            }
        }
        Formula::Not(g) => Formula::not(replace_uniform_atoms(g, fixed, eval_domains, vocab, universe)),
        Formula::And(fs) => Formula::And(
            fs.iter()
                .map(|g| replace_uniform_atoms(g, fixed, eval_domains, vocab, universe))
                .collect(),
        ),
        Formula::Or(fs) => Formula::Or(
            fs.iter()
                .map(|g| replace_uniform_atoms(g, fixed, eval_domains, vocab, universe))
                .collect(),
        ),
        Formula::Implies(a, b) => Formula::implies(
            replace_uniform_atoms(a, fixed, eval_domains, vocab, universe),
            replace_uniform_atoms(b, fixed, eval_domains, vocab, universe),
        ),
        Formula::Iff(a, b) => Formula::iff(
            replace_uniform_atoms(a, fixed, eval_domains, vocab, universe),
            replace_uniform_atoms(b, fixed, eval_domains, vocab, universe),
        ),
        Formula::Forall(v, s, body) => Formula::forall(
            *v,
            *s,
            replace_uniform_atoms(body, fixed, eval_domains, vocab, universe),
        ),
        Formula::Exists(v, s, body) => Formula::exists(
            *v,
            *s,
            replace_uniform_atoms(body, fixed, eval_domains, vocab, universe),
        ),
    }
}

fn partial_eval_expand(
    f: &Formula,
    fixed: &Instance,
    eval_domains: &BTreeSet<Domain>,
    vocab: &Vocabulary,
    universe: &Universe,
) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Eq(_, _) => f.clone(),
        Formula::Pred(r, args) => {
            if eval_domains.contains(&vocab.rel(*r).owner) {
                // All arguments must be ground here: quantifiers binding
                // variables that reach this atom are expanded below before
                // we recurse into them.
                let tuple: Option<Vec<_>> = args.iter().map(|t| t.as_const()).collect();
                match tuple {
                    Some(tuple) => {
                        if fixed.holds(*r, &tuple) {
                            Formula::True
                        } else {
                            Formula::False
                        }
                    }
                    None => {
                        // A free variable reached an evaluated atom: the
                        // caller passed an open formula. Leave the atom
                        // unevaluated rather than guess.
                        debug_assert!(
                            false,
                            "partial_eval reached a non-ground atom over an \
                             evaluated domain; was the input formula open?"
                        );
                        f.clone()
                    }
                }
            } else {
                f.clone()
            }
        }
        Formula::Not(g) => Formula::not(partial_eval_expand(g, fixed, eval_domains, vocab, universe)),
        Formula::And(fs) => Formula::And(
            fs.iter()
                .map(|g| partial_eval_expand(g, fixed, eval_domains, vocab, universe))
                .collect(),
        ),
        Formula::Or(fs) => Formula::Or(
            fs.iter()
                .map(|g| partial_eval_expand(g, fixed, eval_domains, vocab, universe))
                .collect(),
        ),
        Formula::Implies(a, b) => Formula::implies(
            partial_eval_expand(a, fixed, eval_domains, vocab, universe),
            partial_eval_expand(b, fixed, eval_domains, vocab, universe),
        ),
        Formula::Iff(a, b) => Formula::iff(
            partial_eval_expand(a, fixed, eval_domains, vocab, universe),
            partial_eval_expand(b, fixed, eval_domains, vocab, universe),
        ),
        Formula::Forall(v, s, body) => {
            if var_reaches_eval_atom(body, *v, eval_domains, vocab) {
                let parts = universe
                    .atoms_of(*s)
                    .iter()
                    .map(|&a| {
                        partial_eval_expand(
                            &body.substitute(*v, a),
                            fixed,
                            eval_domains,
                            vocab,
                            universe,
                        )
                    })
                    .collect();
                Formula::And(parts)
            } else {
                Formula::forall(
                    *v,
                    *s,
                    partial_eval_expand(body, fixed, eval_domains, vocab, universe),
                )
            }
        }
        Formula::Exists(v, s, body) => {
            if var_reaches_eval_atom(body, *v, eval_domains, vocab) {
                let parts = universe
                    .atoms_of(*s)
                    .iter()
                    .map(|&a| {
                        partial_eval_expand(
                            &body.substitute(*v, a),
                            fixed,
                            eval_domains,
                            vocab,
                            universe,
                        )
                    })
                    .collect();
                Formula::Or(parts)
            } else {
                Formula::exists(
                    *v,
                    *s,
                    partial_eval_expand(body, fixed, eval_domains, vocab, universe),
                )
            }
        }
    }
}

/// Does `var` occur (free) as an argument of an atom whose relation is
/// owned by one of `eval_domains`?
fn var_reaches_eval_atom(
    f: &Formula,
    var: VarId,
    eval_domains: &BTreeSet<Domain>,
    vocab: &Vocabulary,
) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Eq(_, _) => false,
        Formula::Pred(r, args) => {
            eval_domains.contains(&vocab.rel(*r).owner)
                && args.contains(&Term::Var(var))
        }
        Formula::Not(g) => var_reaches_eval_atom(g, var, eval_domains, vocab),
        Formula::And(fs) | Formula::Or(fs) => fs
            .iter()
            .any(|g| var_reaches_eval_atom(g, var, eval_domains, vocab)),
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            var_reaches_eval_atom(a, var, eval_domains, vocab)
                || var_reaches_eval_atom(b, var, eval_domains, vocab)
        }
        Formula::Forall(v, _, body) | Formula::Exists(v, _, body) => {
            *v != var && var_reaches_eval_atom(body, var, eval_domains, vocab)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::PartyId;
    use crate::{evaluate_closed, simplify};

    struct Fix {
        u: Universe,
        v: Vocabulary,
        svc: crate::symbols::SortId,
        // A-owned: deny(svc); B-owned: allow(svc); structure: listens(svc).
        deny: crate::symbols::RelId,
        allow: crate::symbols::RelId,
        listens: crate::symbols::RelId,
        atoms: Vec<crate::symbols::AtomId>,
    }

    fn fix() -> Fix {
        let mut u = Universe::new();
        let svc = u.add_sort("Service");
        let atoms = vec![u.add_atom(svc, "fe"), u.add_atom(svc, "be")];
        let mut v = Vocabulary::new();
        let deny = v.add_simple_rel("deny", vec![svc], Domain::Party(PartyId(0)));
        let allow = v.add_simple_rel("allow", vec![svc], Domain::Party(PartyId(1)));
        let listens = v.add_simple_rel("listens", vec![svc], Domain::Structure);
        Fix { u, v, svc, deny, allow, listens, atoms }
    }

    #[test]
    fn closed_a_atoms_are_decided_in_place() {
        let f = fix();
        let mut ca = Instance::new();
        ca.insert(f.deny, vec![f.atoms[0]]);
        let doms = BTreeSet::from([Domain::Party(PartyId(0))]);
        let g = Formula::or([
            Formula::pred(f.deny, [Term::Const(f.atoms[0])]),
            Formula::pred(f.allow, [Term::Const(f.atoms[1])]),
        ]);
        let out = simplify(&partial_eval(&g, &ca, &doms, &f.v, &f.u));
        // deny(fe) is true under C_A, so the whole disjunct collapses.
        assert_eq!(out, Formula::True);

        let g2 = Formula::or([
            Formula::pred(f.deny, [Term::Const(f.atoms[1])]),
            Formula::pred(f.allow, [Term::Const(f.atoms[1])]),
        ]);
        let out2 = simplify(&partial_eval(&g2, &ca, &doms, &f.v, &f.u));
        assert_eq!(out2, Formula::pred(f.allow, [Term::Const(f.atoms[1])]));
    }

    #[test]
    fn quantifier_untouched_when_var_avoids_a_domain() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let doms = BTreeSet::from([Domain::Party(PartyId(0))]);
        let ca = Instance::new();
        // ∀x· (allow(x) ∨ listens(x)): no A-relations, quantifier must stay.
        let g = Formula::forall(
            x,
            f.svc,
            Formula::or([
                Formula::pred(f.allow, [Term::Var(x)]),
                Formula::pred(f.listens, [Term::Var(x)]),
            ]),
        );
        let out = partial_eval(&g, &ca, &doms, &f.v, &f.u);
        assert_eq!(out, g);
    }

    #[test]
    fn quantifier_expanded_when_var_reaches_a_atom() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let doms = BTreeSet::from([Domain::Party(PartyId(0))]);
        let mut ca = Instance::new();
        ca.insert(f.deny, vec![f.atoms[0]]);
        // ∀x· (deny(x) ∨ allow(x)): must expand over {fe, be}; deny(fe)
        // true ⇒ that conjunct vanishes; deny(be) false ⇒ allow(be)
        // remains required.
        let g = Formula::forall(
            x,
            f.svc,
            Formula::or([
                Formula::pred(f.deny, [Term::Var(x)]),
                Formula::pred(f.allow, [Term::Var(x)]),
            ]),
        );
        let out = simplify(&partial_eval(&g, &ca, &doms, &f.v, &f.u));
        assert_eq!(out, Formula::pred(f.allow, [Term::Const(f.atoms[1])]));
    }

    #[test]
    fn result_never_mentions_evaluated_domain() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let y = f.v.fresh_var();
        let doms = BTreeSet::from([Domain::Party(PartyId(0))]);
        let mut ca = Instance::new();
        ca.insert(f.deny, vec![f.atoms[1]]);
        let g = Formula::forall(
            x,
            f.svc,
            Formula::implies(
                Formula::pred(f.deny, [Term::Var(x)]),
                Formula::exists(
                    y,
                    f.svc,
                    Formula::and([
                        Formula::pred(f.allow, [Term::Var(y)]),
                        Formula::pred(f.listens, [Term::Var(x)]),
                    ]),
                ),
            ),
        );
        let out = partial_eval(&g, &ca, &doms, &f.v, &f.u);
        assert!(!out.mentions_domain(&f.v, Domain::Party(PartyId(0))));
    }

    #[test]
    fn uniform_atoms_keep_quantifiers_symbolic() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let doms = BTreeSet::from([Domain::Party(PartyId(0))]);
        // Global ban: deny(s) for every service — uniform.
        let mut ca = Instance::new();
        for &a in &f.atoms {
            ca.insert(f.deny, vec![a]);
        }
        let g = Formula::forall(
            x,
            f.svc,
            Formula::or([
                Formula::not(Formula::pred(f.deny, [Term::Var(x)])),
                Formula::pred(f.allow, [Term::Var(x)]),
            ]),
        );
        let out = simplify(&partial_eval(&g, &ca, &doms, &f.v, &f.u));
        // deny(x) uniformly true ⇒ ¬deny(x) vanishes; the quantifier
        // survives un-expanded.
        assert_eq!(
            out,
            Formula::forall(x, f.svc, Formula::pred(f.allow, [Term::Var(x)]))
        );
        // Non-uniform config must still expand.
        let mut ca2 = Instance::new();
        ca2.insert(f.deny, vec![f.atoms[0]]);
        let out2 = simplify(&partial_eval(&g, &ca2, &doms, &f.v, &f.u));
        assert!(!matches!(out2, Formula::Forall(_, _, _)));
        assert!(!out2.mentions_domain(&f.v, Domain::Party(PartyId(0))));
    }

    /// Soundness: for every completion C_B of B's relations, the original
    /// formula holds over C_A ∪ C_B iff the partially-evaluated formula
    /// holds over C_B (plus structure).
    #[test]
    fn partial_eval_preserves_semantics_over_all_completions() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let doms = BTreeSet::from([Domain::Party(PartyId(0))]);
        let formulas = vec![
            Formula::forall(
                x,
                f.svc,
                Formula::or([
                    Formula::pred(f.deny, [Term::Var(x)]),
                    Formula::pred(f.allow, [Term::Var(x)]),
                ]),
            ),
            Formula::exists(
                x,
                f.svc,
                Formula::and([
                    Formula::not(Formula::pred(f.deny, [Term::Var(x)])),
                    Formula::pred(f.listens, [Term::Var(x)]),
                ]),
            ),
        ];
        // Iterate over all C_A (deny tables) and all completions (allow ×
        // listens tables).
        for deny_mask in 0..4u32 {
            let mut ca = Instance::new();
            for (i, &a) in f.atoms.iter().enumerate() {
                if deny_mask & (1 << i) != 0 {
                    ca.insert(f.deny, vec![a]);
                }
            }
            for g in &formulas {
                let pe = partial_eval(g, &ca, &doms, &f.v, &f.u);
                for rest_mask in 0..16u32 {
                    let mut cb = Instance::new();
                    for (i, &a) in f.atoms.iter().enumerate() {
                        if rest_mask & (1 << i) != 0 {
                            cb.insert(f.allow, vec![a]);
                        }
                        if rest_mask & (1 << (i + 2)) != 0 {
                            cb.insert(f.listens, vec![a]);
                        }
                    }
                    let combined = ca.union(&cb);
                    let orig = evaluate_closed(g, &combined, &f.u).unwrap();
                    let part = evaluate_closed(&pe, &cb, &f.u).unwrap();
                    assert_eq!(orig, part, "deny={deny_mask} rest={rest_mask} g={g:?}");
                }
            }
        }
    }
}
