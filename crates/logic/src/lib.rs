//! # muppet-logic — bounded many-sorted first-order logic
//!
//! The paper (Sec. 4) assumes "administrator goals can be translated (by
//! the system, not the administrator) to bounded first-order formulas" and
//! builds on the Kodkod/Pardinus formula-manipulation library. This crate
//! is our from-scratch replacement: a small, carefully-specified logic with
//! exactly the operations Muppet's algorithms need.
//!
//! * **Sorts and universes** ([`Sort`], [`Universe`]): finite domains of
//!   named atoms (services, ports, labels).
//! * **Vocabulary** ([`Vocabulary`], [`RelDecl`]): relation symbols, each
//!   *owned* by a [`Domain`] — either shared system `Structure` or one
//!   party's configuration domain. Ownership is what makes Alg. 3's
//!   "`vars(φ) ∩ dom(B) ≠ ∅`" filter and substitution well-defined.
//! * **Formulas** ([`Formula`]): boolean connectives, bounded quantifiers,
//!   relation atoms and equality, plus the operations Muppet needs —
//!   evaluation over an [`Instance`], boolean [`simplify`]cation,
//!   [`decompose`] into subformulas (Alg. 3 step 1), domain analysis, and
//!   **partial evaluation** against a fixed configuration
//!   ([`partial_eval`]) — the `subst(φ, C_A)` of Alg. 3.
//! * **Instances** ([`Instance`], [`PartialInstance`]): concrete
//!   configurations as relation tables, and partial configurations as
//!   lower/upper bounds — the paper's "holes" and "soft" settings.
//! * **Pretty-printing** ([`pretty`]): Alloy-style and English renderings
//!   of formulas, reproducing the two presentations of Fig. 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decompose;
mod eval;
pub mod fingerprint;
mod formula;
mod instance;
mod partial_eval;
pub mod pretty;
mod simplify;
mod symbols;
mod term;

pub use decompose::decompose;
pub use eval::{evaluate, evaluate_closed, EvalError};
pub use formula::Formula;
pub use instance::{Instance, PartialInstance};
pub use partial_eval::partial_eval;
pub use simplify::{nnf, simplify};
pub use symbols::{
    AtomId, Domain, PartyId, RelDecl, RelId, Sort, SortId, Universe, VarId, Vocabulary,
};
pub use term::Term;
