//! Total evaluation of formulas over concrete instances.

use std::collections::BTreeMap;
use std::fmt;

use crate::formula::Formula;
use crate::instance::Instance;
use crate::symbols::{AtomId, Universe, VarId};
use crate::term::Term;

/// Errors raised by evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A free variable had no binding in the environment.
    UnboundVar(VarId),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(v) => write!(f, "unbound variable {v:?}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluate `formula` over `instance`, with `env` binding free variables.
///
/// Quantifiers range over the atoms of their sort in `universe`. The
/// instance must be *total* for the relations the formula mentions: a
/// missing relation is treated as empty (standard closed-world reading).
pub fn evaluate(
    formula: &Formula,
    instance: &Instance,
    universe: &Universe,
    env: &mut BTreeMap<VarId, AtomId>,
) -> Result<bool, EvalError> {
    match formula {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Pred(rel, args) => {
            let mut tuple = Vec::with_capacity(args.len());
            for t in args {
                tuple.push(resolve(*t, env)?);
            }
            Ok(instance.holds(*rel, &tuple))
        }
        Formula::Eq(a, b) => Ok(resolve(*a, env)? == resolve(*b, env)?),
        Formula::Not(f) => Ok(!evaluate(f, instance, universe, env)?),
        Formula::And(fs) => {
            for f in fs {
                if !evaluate(f, instance, universe, env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for f in fs {
                if evaluate(f, instance, universe, env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Implies(a, b) => {
            Ok(!evaluate(a, instance, universe, env)? || evaluate(b, instance, universe, env)?)
        }
        Formula::Iff(a, b) => {
            Ok(evaluate(a, instance, universe, env)? == evaluate(b, instance, universe, env)?)
        }
        Formula::Forall(v, sort, body) => {
            let saved = env.get(v).copied();
            for &atom in universe.atoms_of(*sort) {
                env.insert(*v, atom);
                let r = evaluate(body, instance, universe, env);
                restore_later(env, *v, saved, &r)?;
                if !r? {
                    restore(env, *v, saved);
                    return Ok(false);
                }
            }
            restore(env, *v, saved);
            Ok(true)
        }
        Formula::Exists(v, sort, body) => {
            let saved = env.get(v).copied();
            for &atom in universe.atoms_of(*sort) {
                env.insert(*v, atom);
                let r = evaluate(body, instance, universe, env);
                restore_later(env, *v, saved, &r)?;
                if r? {
                    restore(env, *v, saved);
                    return Ok(true);
                }
            }
            restore(env, *v, saved);
            Ok(false)
        }
    }
}

fn resolve(t: Term, env: &BTreeMap<VarId, AtomId>) -> Result<AtomId, EvalError> {
    match t {
        Term::Const(a) => Ok(a),
        Term::Var(v) => env.get(&v).copied().ok_or(EvalError::UnboundVar(v)),
    }
}

fn restore(env: &mut BTreeMap<VarId, AtomId>, v: VarId, saved: Option<AtomId>) {
    match saved {
        Some(a) => {
            env.insert(v, a);
        }
        None => {
            env.remove(&v);
        }
    }
}

fn restore_later(
    env: &mut BTreeMap<VarId, AtomId>,
    v: VarId,
    saved: Option<AtomId>,
    r: &Result<bool, EvalError>,
) -> Result<(), EvalError> {
    if r.is_err() {
        restore(env, v, saved);
    }
    Ok(())
}

/// Evaluate a closed formula (no free variables).
pub fn evaluate_closed(
    formula: &Formula,
    instance: &Instance,
    universe: &Universe,
) -> Result<bool, EvalError> {
    evaluate(formula, instance, universe, &mut BTreeMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{Domain, Vocabulary};

    struct Fix {
        u: Universe,
        v: Vocabulary,
        svc: crate::symbols::SortId,
        edge: crate::symbols::RelId,
        atoms: Vec<AtomId>,
    }

    fn fix() -> Fix {
        let mut u = Universe::new();
        let svc = u.add_sort("S");
        let atoms = vec![
            u.add_atom(svc, "a"),
            u.add_atom(svc, "b"),
            u.add_atom(svc, "c"),
        ];
        let mut v = Vocabulary::new();
        let edge = v.add_simple_rel("edge", vec![svc, svc], Domain::Structure);
        Fix { u, v, svc, edge, atoms }
    }

    #[test]
    fn quantifiers_over_small_graph() {
        let mut f = fix();
        let mut inst = Instance::new();
        // a -> b, b -> c
        inst.insert(f.edge, vec![f.atoms[0], f.atoms[1]]);
        inst.insert(f.edge, vec![f.atoms[1], f.atoms[2]]);

        // ∃x. edge(a, x)   — true
        let x = f.v.fresh_var();
        let g = Formula::exists(
            x,
            f.svc,
            Formula::pred(f.edge, [Term::Const(f.atoms[0]), Term::Var(x)]),
        );
        assert!(evaluate_closed(&g, &inst, &f.u).unwrap());

        // ∀x. ∃y. edge(x, y) — false (c has no successor)
        let y = f.v.fresh_var();
        let g = Formula::forall(
            x,
            f.svc,
            Formula::exists(
                y,
                f.svc,
                Formula::pred(f.edge, [Term::Var(x), Term::Var(y)]),
            ),
        );
        assert!(!evaluate_closed(&g, &inst, &f.u).unwrap());

        // ∀x. ¬edge(x, x) — true (irreflexive)
        let g = Formula::forall(
            x,
            f.svc,
            Formula::not(Formula::pred(f.edge, [Term::Var(x), Term::Var(x)])),
        );
        assert!(evaluate_closed(&g, &inst, &f.u).unwrap());
    }

    #[test]
    fn connectives_and_equality() {
        let f = fix();
        let inst = Instance::new();
        let t = Formula::Eq(Term::Const(f.atoms[0]), Term::Const(f.atoms[0]));
        let fa = Formula::Eq(Term::Const(f.atoms[0]), Term::Const(f.atoms[1]));
        assert!(evaluate_closed(&t, &inst, &f.u).unwrap());
        assert!(!evaluate_closed(&fa, &inst, &f.u).unwrap());
        assert!(evaluate_closed(&Formula::implies(fa.clone(), Formula::False), &inst, &f.u).unwrap());
        assert!(evaluate_closed(&Formula::iff(t.clone(), Formula::True), &inst, &f.u).unwrap());
        assert!(
            !evaluate_closed(&Formula::and([t.clone(), fa.clone()]), &inst, &f.u).unwrap()
        );
        assert!(evaluate_closed(&Formula::or([fa, t]), &inst, &f.u).unwrap());
        // Empty connectives.
        assert!(evaluate_closed(&Formula::and([]), &inst, &f.u).unwrap());
        assert!(!evaluate_closed(&Formula::or([]), &inst, &f.u).unwrap());
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let g = Formula::pred(f.edge, [Term::Var(x), Term::Var(x)]);
        assert_eq!(
            evaluate_closed(&g, &Instance::new(), &f.u),
            Err(EvalError::UnboundVar(x))
        );
    }

    #[test]
    fn env_is_restored_after_quantifier() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let mut env = BTreeMap::new();
        env.insert(x, f.atoms[2]);
        let inst = Instance::new();
        // ∃x. edge(x,x) — false; but afterwards x must still map to c.
        let g = Formula::exists(
            x,
            f.svc,
            Formula::pred(f.edge, [Term::Var(x), Term::Var(x)]),
        );
        assert!(!evaluate(&g, &inst, &f.u, &mut env).unwrap());
        assert_eq!(env.get(&x), Some(&f.atoms[2]));
    }
}
