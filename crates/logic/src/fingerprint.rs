//! Stable content fingerprints for logic-level values.
//!
//! Caches throughout the pipeline — the daemon's result cache, the
//! warm-session registry, and the incremental engine's per-subformula
//! ground/encode cache — are keyed by *content*, not identity: two
//! values that describe the same formulas, bounds and universe must
//! collide, and any semantic difference must not. [`Fingerprinter`]
//! produces a 128-bit digest from two independently-seeded FNV-1a
//! streams fed by the same byte sequence — deterministic across
//! processes (unlike `DefaultHasher`; every `add_*` method walks its
//! structure in a canonical order), cheap, and wide enough that
//! accidental collisions are not a practical concern for a cache.
//!
//! This is an integrity fingerprint for caching, **not** a
//! cryptographic hash: nothing here defends against adversarial
//! collision crafting, and cache entries only short-circuit work the
//! caller could redo.
//!
//! The module lives in `muppet-logic` (the bottom of the crate stack)
//! so that solver-layer caches can key on [`Formula`] content without
//! depending on `muppet` core; core re-exports it and layers on
//! goal/party walks.
//!
//! [`Formula`]: crate::Formula

use std::hash::{Hash, Hasher};

use crate::{Instance, PartialInstance, RelId, Universe, Vocabulary};

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Accumulates a canonical byte stream into a 128-bit digest.
///
/// Implements [`std::hash::Hasher`], so anything that is `Hash` (e.g.
/// [`crate::Formula`]) can be folded in via
/// [`Fingerprinter::add_hash`]; structures without `Hash` (instances,
/// universes) get explicit canonical-order walks.
#[derive(Clone, Debug)]
pub struct Fingerprinter {
    a: u64,
    b: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

impl Hasher for Fingerprinter {
    fn finish(&self) -> u64 {
        self.a
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b.rotate_left(5) ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }
}

impl Fingerprinter {
    /// A fresh fingerprinter.
    pub fn new() -> Fingerprinter {
        Fingerprinter {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    /// Fold in raw bytes.
    pub fn add_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write(bytes);
        self
    }

    /// Fold in a string (length-prefixed, so `("ab","c")` ≠ `("a","bc")`).
    pub fn add_str(&mut self, s: &str) -> &mut Self {
        self.add_u64(s.len() as u64);
        self.write(s.as_bytes());
        self
    }

    /// Fold in an integer.
    pub fn add_u64(&mut self, x: u64) -> &mut Self {
        self.write(&x.to_le_bytes());
        self
    }

    /// Fold in a boolean.
    pub fn add_bool(&mut self, x: bool) -> &mut Self {
        self.add_u64(u64::from(x))
    }

    /// Fold in anything `Hash` (formulas, ids, tuples) via its
    /// `Hash::hash` byte stream.
    pub fn add_hash<T: Hash + ?Sized>(&mut self, value: &T) -> &mut Self {
        value.hash(self);
        self
    }

    /// Fold in a total instance: relations and tuples in canonical
    /// (sorted id) order.
    pub fn add_instance(&mut self, inst: &Instance) -> &mut Self {
        let mut entries = inst.all_tuples();
        entries.sort();
        self.add_u64(entries.len() as u64);
        for (rel, tuple) in entries {
            self.add_hash(&rel);
            self.add_hash(&tuple);
        }
        self
    }

    /// Fold in a partial instance (offer bounds): per bounded relation,
    /// the sorted lower and upper tuple sets.
    pub fn add_partial(&mut self, p: &PartialInstance) -> &mut Self {
        let mut rels: Vec<RelId> = p.bounded_rels().collect();
        rels.sort();
        self.add_u64(rels.len() as u64);
        for rel in rels {
            self.add_hash(&rel);
            let mut lower: Vec<_> = p.lower(rel).map(|t| t.to_vec()).collect();
            lower.sort();
            self.add_u64(lower.len() as u64);
            for t in lower {
                self.add_hash(&t);
            }
            let mut upper: Vec<_> = p.upper(rel).map(|t| t.to_vec()).collect();
            upper.sort();
            self.add_u64(upper.len() as u64);
            for t in upper {
                self.add_hash(&t);
            }
        }
        self
    }

    /// Fold in a universe: sorts, their names and their atoms' names in
    /// declaration order (declaration order is part of identity — atom
    /// ids appear inside formulas).
    pub fn add_universe(&mut self, u: &Universe) -> &mut Self {
        self.add_u64(u.num_sorts() as u64);
        for s in (0..u.num_sorts() as u32).map(crate::SortId) {
            self.add_str(u.sort_name(s));
            let atoms = u.atoms_of(s);
            self.add_u64(atoms.len() as u64);
            for &a in atoms {
                self.add_str(u.atom_name(a));
            }
        }
        self
    }

    /// Fold in a vocabulary: every relation's name, argument sorts and
    /// owning domain, in declaration order.
    pub fn add_vocab(&mut self, v: &Vocabulary) -> &mut Self {
        self.add_u64(v.num_rels() as u64);
        for (rel, decl) in v.rels() {
            self.add_hash(&rel);
            self.add_str(&decl.name);
            self.add_hash(&decl.arg_sorts);
            self.add_hash(&decl.owner);
        }
        self
    }

    /// The 128-bit digest of everything folded in so far.
    pub fn digest(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Render a digest as fixed-width lowercase hex (32 chars).
pub fn hex(digest: u128) -> String {
    format!("{digest:032x}")
}

/// Parse a digest rendered by [`hex`].
pub fn parse_hex(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, Formula, PartyId, Term};

    #[test]
    fn formula_fingerprints_are_deterministic_and_sensitive() {
        let mut u = Universe::new();
        let s = u.add_sort("S");
        let a = u.add_atom(s, "a");
        let b = u.add_atom(s, "b");
        let mut v = Vocabulary::new();
        let r = v.add_simple_rel("r", vec![s], Domain::Party(PartyId(0)));
        let fp = |f: &Formula| {
            let mut h = Fingerprinter::new();
            h.add_universe(&u).add_vocab(&v).add_hash(f);
            h.digest()
        };
        let fa = Formula::pred(r, [Term::Const(a)]);
        let fb = Formula::pred(r, [Term::Const(b)]);
        assert_eq!(fp(&fa), fp(&fa.clone()), "same content, same digest");
        assert_ne!(fp(&fa), fp(&fb), "different atom must differ");
        assert_ne!(fp(&fa), fp(&Formula::not(fa.clone())), "negation must differ");
    }

    #[test]
    fn instance_order_is_canonical() {
        let mut u = Universe::new();
        let s = u.add_sort("S");
        let a = u.add_atom(s, "a");
        let b = u.add_atom(s, "b");
        let mut v = Vocabulary::new();
        let r = v.add_simple_rel("r", vec![s], Domain::Structure);
        let mut i1 = Instance::new();
        i1.insert(r, vec![a]);
        i1.insert(r, vec![b]);
        let mut i2 = Instance::new();
        i2.insert(r, vec![b]);
        i2.insert(r, vec![a]);
        let fp = |i: &Instance| {
            let mut f = Fingerprinter::new();
            f.add_instance(i);
            f.digest()
        };
        assert_eq!(fp(&i1), fp(&i2));
        let mut i3 = i1.clone();
        i3.remove(r, &[b]);
        assert_ne!(fp(&i1), fp(&i3));
    }

    #[test]
    fn hex_roundtrip() {
        let mut f = Fingerprinter::new();
        f.add_str("hello");
        let d = f.digest();
        assert_eq!(parse_hex(&hex(d)), Some(d));
        assert_eq!(hex(d).len(), 32);
        assert_eq!(parse_hex("nope"), None);
    }

    #[test]
    fn string_boundaries_matter() {
        let fp = |parts: &[&str]| {
            let mut f = Fingerprinter::new();
            for p in parts {
                f.add_str(p);
            }
            f.digest()
        };
        assert_ne!(fp(&["ab", "c"]), fp(&["a", "bc"]));
    }
}
