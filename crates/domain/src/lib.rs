//! # muppet-domain — the configuration-domain plugin layer
//!
//! The paper's machinery is domain-agnostic: bounded first-order goals
//! over relational vocabularies, reconciled by a solver (Sec. 4). Only
//! the *domain* — which relations exist, who owns them, how production
//! manifests compile into relational instances, and how goal tables
//! translate into formulas — is specific to K8s/Istio. This crate makes
//! that boundary explicit: a [`ConfigDomain`] packages
//!
//! * the relational vocabulary and its bounds (a finite [`Universe`] of
//!   atoms derived from the manifests),
//! * manifest parsing and pretty-printing (production YAML in and out),
//! * goal translation (per-party CSV tables → named bounded-FOL goals),
//! * offer/deployed-configuration construction (manifests → [`Instance`]),
//!
//! and everything downstream — `muppet` sessions, the daemon, the CLI,
//! scenario generators and the stream engine — consumes domains only
//! through this trait and its [`registry`]. Two domains are built in:
//!
//! * [`mesh`] — the paper's K8s/Istio pair (NetworkPolicy,
//!   AuthorizationPolicy, PeerAuthentication);
//! * [`linkerd`] — Linkerd `Server`/`ServerAuthorization` with Istio
//!   `PeerAuthentication` mTLS and `Sidecar` egress allowlists, a
//!   genuinely different policy semantics proving the trait boundary is
//!   real (ROADMAP item 3).
//!
//! A domain declares N *roles* (parties) in slot order; nothing in this
//! crate or below assumes N = 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linkerd;
pub mod mesh;

use std::any::Any;
use std::collections::BTreeMap;

use muppet::{NamedGoal, Party, Session};
use muppet_logic::{Formula, Instance, PartyId, Universe, Vocabulary};

pub use linkerd::LinkerdDomain;
pub use mesh::MeshDomain;

/// The domain-independent inputs a session is built from: manifests and
/// one goal table per role, exactly as they arrive on the wire or from
/// files.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DomainInput {
    /// Concatenated YAML manifests (structure + deployed policies).
    pub manifests: String,
    /// Per-role goal-table texts, in the domain's slot order. Missing
    /// trailing entries are treated as empty tables.
    pub goals: Vec<String>,
    /// Domain feature flag: enable the mTLS extension where the domain
    /// supports it (the mesh domain's PeerAuthentication relations).
    pub mtls: bool,
    /// Spare ports widening the universe for ∃-port goals.
    pub extra_ports: Vec<u16>,
}

impl DomainInput {
    /// The goal text for a role slot (empty if absent).
    pub fn goal_text(&self, slot: usize) -> &str {
        self.goals.get(slot).map(String::as_str).unwrap_or("")
    }
}

/// One party of a built domain model.
pub struct DomainParty {
    /// Stable party id — the slot index. All cache/fingerprint keys
    /// derive from this, never from the display name.
    pub id: PartyId,
    /// Canonical wire name (e.g. `"k8s"`, `"platform"`): short, stable,
    /// and what protocol fields and cache keys use.
    pub role: String,
    /// Human-facing display name (e.g. `"k8s-admin"`), used in blame
    /// cores and traces.
    pub display: String,
    /// The party's translated goals.
    pub goals: Vec<NamedGoal>,
    /// The raw goal-table text this party's goals came from (delta-aware
    /// cache keys hash exactly this).
    pub goals_text: String,
}

/// A fully built domain model: the bounded relational session content,
/// plus an opaque per-domain payload (parsed manifests, compile maps)
/// that the owning [`ConfigDomain`] downcasts for `deployed`/`emit`.
pub struct DomainModel {
    /// Which registered domain built this model.
    pub domain: &'static str,
    /// The finite universe (atom bounds).
    pub universe: Universe,
    /// Relation declarations, including goal-translation free variables.
    pub vocab: Vocabulary,
    /// The fixed structural instance (deployment facts no party edits).
    pub structure: Instance,
    /// Well-formedness axioms.
    pub axioms: Vec<Formula>,
    /// The parties, in slot order.
    pub parties: Vec<DomainParty>,
    /// The derived universe port set, sorted (part of cache keys).
    pub ports: Vec<u16>,
    /// Number of structural entities (services) — for session stats.
    pub services: usize,
    /// Domain-private state (parsed bundles, vocabulary handles).
    pub payload: Box<dyn Any + Send + Sync>,
}

impl DomainModel {
    /// Build a fresh borrowing [`Session`] over this model: structure,
    /// axioms and every party with its goals, in slot order.
    pub fn session(&self) -> Session<'_> {
        let mut s = Session::new(&self.universe, self.vocab.clone(), self.structure.clone());
        s.add_axioms(self.axioms.iter().cloned());
        for p in &self.parties {
            s.add_party(
                Party::new(p.id, p.display.as_str()).with_goals(p.goals.iter().cloned()),
            );
        }
        s
    }

    /// Resolve a wire party name — a role or a display name — to its id.
    pub fn party_id(&self, name: &str) -> Result<PartyId, String> {
        for p in &self.parties {
            if p.role == name || p.display == name {
                return Ok(p.id);
            }
        }
        let roles: Vec<&str> = self.parties.iter().map(|p| p.role.as_str()).collect();
        Err(format!(
            "unknown party {name:?} (use one of {})",
            roles.join(", ")
        ))
    }

    /// The party record for an id.
    pub fn party(&self, id: PartyId) -> Option<&DomainParty> {
        self.parties.iter().find(|p| p.id == id)
    }

    /// The canonical role name for an id (panics-free; `"?"` fallback).
    pub fn role(&self, id: PartyId) -> &str {
        self.party(id).map(|p| p.role.as_str()).unwrap_or("?")
    }

    /// The goal-table text belonging to a party.
    pub fn goals_text(&self, id: PartyId) -> &str {
        self.party(id).map(|p| p.goals_text.as_str()).unwrap_or("")
    }

    /// Every party id except `id`, in slot order — the senders of a
    /// multi-source envelope, the "everyone else" of reconciliation.
    pub fn others(&self, id: PartyId) -> Vec<PartyId> {
        self.parties
            .iter()
            .map(|p| p.id)
            .filter(|&p| p != id)
            .collect()
    }
}

/// A pluggable configuration domain: relation vocabulary + bounds,
/// manifest parsing/pretty-printing, goal translation and deployed-offer
/// construction. A domain is data plus one impl of this trait.
pub trait ConfigDomain: Send + Sync {
    /// Registry name (`"mesh"`, `"linkerd"`).
    fn name(&self) -> &'static str;

    /// Canonical role names, in slot order. The number of roles is the
    /// number of parties a model of this domain has.
    fn roles(&self) -> &'static [&'static str];

    /// Display names, parallel to [`ConfigDomain::roles`].
    fn displays(&self) -> &'static [&'static str];

    /// Parse manifests, derive the universe, translate every party's
    /// goal table and assemble the model.
    fn build(&self, input: &DomainInput) -> Result<DomainModel, String>;

    /// The party's *deployed* configuration, compiled from the model's
    /// parsed policy documents. Errors surface per-operation (a policy
    /// may reference entities outside the modeled subset without
    /// invalidating the whole session).
    fn deployed(&self, model: &DomainModel, party: PartyId) -> Result<Instance, String>;

    /// The party's full *currently-deployed snapshot*: everything
    /// [`ConfigDomain::deployed`] compiles, plus any deployment facts
    /// the party owns that solver queries treat as revisable rather
    /// than structural — so concrete evaluation (`check`, `explain`)
    /// sees the cluster as it stands. For the mesh domain the Istio
    /// slot adds its `listens` tuples here: they are the mesh
    /// administrator's current configuration, not immutable structure.
    fn deployed_snapshot(
        &self,
        model: &DomainModel,
        party: PartyId,
    ) -> Result<Instance, String> {
        self.deployed(model, party)
    }

    /// Pretty-print a solved joint configuration as production manifests
    /// (structure docs plus one policy set per party). `None` if the
    /// domain has no manifest emitter.
    fn emit_solution(
        &self,
        model: &DomainModel,
        configs: &BTreeMap<PartyId, Instance>,
    ) -> Option<String> {
        let _ = (model, configs);
        None
    }
}

static MESH: MeshDomain = MeshDomain;
static LINKERD: LinkerdDomain = LinkerdDomain;
static REGISTRY: [&dyn ConfigDomain; 2] = [&MESH, &LINKERD];

/// Every registered domain. Consumers reach domains only through here
/// (or [`lookup`]); nothing outside this crate constructs domain
/// internals directly.
pub fn registry() -> &'static [&'static dyn ConfigDomain] {
    &REGISTRY
}

/// Find a registered domain by name.
pub fn lookup(name: &str) -> Option<&'static dyn ConfigDomain> {
    registry().iter().copied().find(|d| d.name() == name)
}

/// The default domain (the paper's K8s/Istio mesh).
pub const DEFAULT_DOMAIN: &str = "mesh";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_both_domains_and_lookup_works() {
        let names: Vec<&str> = registry().iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["mesh", "linkerd"]);
        assert!(lookup("mesh").is_some());
        assert!(lookup("linkerd").is_some());
        assert!(lookup("nomad").is_none());
        for d in registry() {
            assert_eq!(d.roles().len(), d.displays().len());
            assert!(d.roles().len() >= 2);
        }
    }
}
