//! The Linkerd policy domain: `Server` / `ServerAuthorization`
//! (policy.linkerd.io) for the mesh administrator, with Istio
//! `PeerAuthentication` mTLS and `Sidecar` egress allowlists for the
//! platform administrator.
//!
//! This is a genuinely different policy semantics from the K8s/Istio
//! [`crate::mesh`] domain — not a rename:
//!
//! * Linkerd is **default-deny once modeled**: a flow needs an explicit
//!   `Server` on the destination port *and* a `ServerAuthorization`
//!   admitting the client. There is no "no policy ⇒ open" disjunct.
//! * Egress is a **destination allowlist** (`Sidecar` hosts), not
//!   port-based rules.
//! * mTLS is owned by the *platform* party (in the mesh domain the
//!   Istio party owns it) and interacts with structural mesh
//!   membership: `STRICT` destinations only accept meshed sources.
//!
//! `allowed(src, dst, p)` ⇔ `listens(dst, p) ∧ srv(dst, p) ∧ saz(src,
//! dst) ∧ (eg_guard(src) ⇒ eg_allow(src, dst)) ∧ (mtls_strict(dst) ⇒
//! meshed(src))`.
//!
//! Goal tables reuse the shared CSV layer (`muppet_goals::csv`): the
//! platform table is `port,perm,selector` with perms `DENY` / `ALLOW` /
//! `MTLS`, the Linkerd table is the reachability table
//! `srcService,dstService,srcPort,dstPort` with the same `?var`
//! existential-port language as the paper's Fig. 4.

use std::collections::{BTreeMap, BTreeSet};

use muppet::NamedGoal;
use muppet_goals::{GoalParseError, IstioGoal, K8sGoal, PortSpec};
use muppet_logic::{
    simplify, AtomId, Domain, Formula, Instance, PartyId, RelDecl, RelId, SortId, Term, Universe,
    VarId, Vocabulary,
};
use muppet_mesh::manifest::{
    emit_peer_authentication, emit_service, parse_peer_authentication, parse_service,
};
use muppet_mesh::{Mesh, MtlsMode, PeerAuthentication, Selector};
use muppet_yaml::{parse_documents, Yaml};

use crate::{ConfigDomain, DomainInput, DomainModel, DomainParty};

/// A Linkerd `Server` (policy.linkerd.io/v1beta1): marks a workload
/// port as policy-bearing. Without a matching `ServerAuthorization`, a
/// `Server`'s traffic is denied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Server {
    /// `metadata.name`.
    pub name: String,
    /// `spec.podSelector` (workloads this server covers).
    pub selector: Selector,
    /// `spec.port`.
    pub port: u16,
}

/// Who a [`ServerAuthorization`] admits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Clients {
    /// `spec.client.unauthenticated: true` — any client.
    Unauthenticated,
    /// `spec.client.meshTLS.serviceAccounts` — the named services.
    Services(Vec<String>),
}

/// A Linkerd `ServerAuthorization` (policy.linkerd.io/v1beta1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerAuthorization {
    /// `metadata.name`.
    pub name: String,
    /// `spec.server.name` — the [`Server`] this authorization attaches to.
    pub server: String,
    /// Admitted clients.
    pub clients: Clients,
}

/// An Istio `Sidecar` egress allowlist (networking.istio.io): workloads
/// selected by `selector` may only open connections to the listed
/// destination services.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SidecarPolicy {
    /// `metadata.name`.
    pub name: String,
    /// `spec.workloadSelector` (missing ⇒ all workloads).
    pub selector: Selector,
    /// Destination service names from `spec.egress[].hosts` (`./<svc>`
    /// entries; `*/*` means unrestricted and yields every service).
    pub hosts: Vec<String>,
}

/// Everything found in a Linkerd-domain manifest stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkerdBundle {
    /// Structure: services, ports, mesh membership (`linkerd.io/inject`).
    pub mesh: Mesh,
    /// Linkerd `Server` documents.
    pub servers: Vec<Server>,
    /// Linkerd `ServerAuthorization` documents.
    pub authorizations: Vec<ServerAuthorization>,
    /// Istio `Sidecar` egress documents (platform-owned).
    pub sidecars: Vec<SidecarPolicy>,
    /// Istio `PeerAuthentication` documents (platform-owned).
    pub peer_auth: Vec<PeerAuthentication>,
}

fn invalid(msg: impl Into<String>) -> String {
    format!("invalid manifest: {}", msg.into())
}

fn metadata_name(doc: &Yaml) -> Result<String, String> {
    doc.get_path(&["metadata", "name"])
        .and_then(Yaml::as_str)
        .map(str::to_string)
        .ok_or_else(|| invalid("missing metadata.name"))
}

/// `podSelector` / `workloadSelector` → [`Selector`]: absent or empty
/// selects everything; `matchLabels` / `labels` maps select by label.
fn parse_label_selector(node: Option<&Yaml>, keys: &[&str]) -> Result<Selector, String> {
    let Some(node) = node else {
        return Ok(Selector::All);
    };
    if node.is_null() {
        return Ok(Selector::All);
    }
    let mut labels = None;
    for key in keys {
        if let Some(m) = node.get(key) {
            labels = Some(m);
            break;
        }
    }
    let Some(labels) = labels else {
        return Ok(Selector::All);
    };
    let pairs = labels
        .as_map()
        .ok_or_else(|| invalid("selector labels must be a mapping"))?;
    match pairs.len() {
        0 => Ok(Selector::All),
        1 => {
            let (k, v) = &pairs[0];
            let v = v
                .as_scalar_string()
                .ok_or_else(|| invalid(format!("label {k:?} must be a scalar")))?;
            Ok(Selector::label(k.clone(), v))
        }
        _ => Err(invalid("modeled subset: at most one selector label")),
    }
}

fn parse_server(doc: &Yaml) -> Result<Server, String> {
    let name = metadata_name(doc)?;
    let selector = parse_label_selector(doc.get_path(&["spec", "podSelector"]), &["matchLabels"])?;
    let port = doc
        .get_path(&["spec", "port"])
        .and_then(Yaml::as_i64)
        .filter(|&p| p > 0 && p <= i64::from(u16::MAX))
        .ok_or_else(|| invalid(format!("Server {name:?} needs a numeric spec.port")))?;
    Ok(Server {
        name,
        selector,
        port: port as u16,
    })
}

fn parse_server_authorization(doc: &Yaml) -> Result<ServerAuthorization, String> {
    let name = metadata_name(doc)?;
    let server = doc
        .get_path(&["spec", "server", "name"])
        .and_then(Yaml::as_str)
        .map(str::to_string)
        .ok_or_else(|| invalid(format!("ServerAuthorization {name:?} needs spec.server.name")))?;
    let client = doc
        .get_path(&["spec", "client"])
        .ok_or_else(|| invalid(format!("ServerAuthorization {name:?} needs spec.client")))?;
    let clients = if client
        .get("unauthenticated")
        .and_then(Yaml::as_bool)
        .unwrap_or(false)
    {
        Clients::Unauthenticated
    } else {
        let accounts = client
            .get_path(&["meshTLS", "serviceAccounts"])
            .and_then(Yaml::as_seq)
            .ok_or_else(|| {
                invalid(format!(
                    "ServerAuthorization {name:?} needs client.unauthenticated or \
                     client.meshTLS.serviceAccounts"
                ))
            })?;
        let mut svcs = Vec::new();
        for a in accounts {
            let n = a
                .get("name")
                .and_then(Yaml::as_str)
                .or_else(|| a.as_str())
                .ok_or_else(|| invalid("serviceAccounts entries need a name"))?;
            // SPIFFE-style identities keep only the trailing segment.
            svcs.push(n.rsplit('/').next().unwrap_or(n).to_string());
        }
        Clients::Services(svcs)
    };
    Ok(ServerAuthorization {
        name,
        server,
        clients,
    })
}

fn parse_sidecar(doc: &Yaml) -> Result<SidecarPolicy, String> {
    let name = metadata_name(doc)?;
    let selector =
        parse_label_selector(doc.get_path(&["spec", "workloadSelector"]), &["labels"])?;
    let mut hosts = Vec::new();
    let egress = doc
        .get_path(&["spec", "egress"])
        .and_then(Yaml::as_seq)
        .ok_or_else(|| invalid(format!("Sidecar {name:?} needs spec.egress")))?;
    for entry in egress {
        let Some(hs) = entry.get("hosts").and_then(Yaml::as_seq) else {
            continue;
        };
        for h in hs {
            let h = h
                .as_str()
                .ok_or_else(|| invalid("egress hosts must be strings"))?;
            hosts.push(h.to_string());
        }
    }
    Ok(SidecarPolicy {
        name,
        selector,
        hosts,
    })
}

/// Parse a multi-document Linkerd-domain manifest stream, dispatching on
/// `kind`. Unknown kinds are errors (same contract as the mesh domain).
pub fn parse_linkerd_manifests(input: &str) -> Result<LinkerdBundle, String> {
    let mut bundle = LinkerdBundle::default();
    for doc in parse_documents(input).map_err(|e| e.to_string())? {
        match doc.get("kind").and_then(Yaml::as_str) {
            Some("Service") => {
                let mut svc = parse_service(&doc).map_err(|e| e.to_string())?;
                // Mesh membership: `linkerd.io/inject: disabled` opts a
                // workload out (everything else is injected).
                if doc
                    .get_path(&["metadata", "annotations", "linkerd.io/inject"])
                    .and_then(Yaml::as_str)
                    == Some("disabled")
                {
                    svc = svc.without_sidecar();
                }
                bundle.mesh.add_service(svc);
            }
            Some("Server") => bundle.servers.push(parse_server(&doc)?),
            Some("ServerAuthorization") => {
                bundle.authorizations.push(parse_server_authorization(&doc)?)
            }
            Some("Sidecar") => bundle.sidecars.push(parse_sidecar(&doc)?),
            Some("PeerAuthentication") => bundle
                .peer_auth
                .push(parse_peer_authentication(&doc).map_err(|e| e.to_string())?),
            Some(other) => return Err(invalid(format!("unsupported kind {other:?}"))),
            None => return Err(invalid("document without a kind")),
        }
    }
    Ok(bundle)
}

fn selector_yaml(sel: &Selector, label_key: &str) -> Yaml {
    match sel {
        Selector::All => Yaml::map([]),
        Selector::Name(n) => Yaml::map([(
            label_key.to_string(),
            Yaml::map([("app".to_string(), Yaml::str(n.clone()))]),
        )]),
        Selector::Labels(pairs) => Yaml::map([(
            label_key.to_string(),
            Yaml::map(
                pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), Yaml::str(v.clone()))),
            ),
        )]),
        Selector::Namespace(ns) => Yaml::map([(
            label_key.to_string(),
            Yaml::map([(
                "kubernetes.io/metadata.name".to_string(),
                Yaml::str(ns.clone()),
            )]),
        )]),
    }
}

/// Emit a [`Server`] document.
pub fn emit_server(s: &Server) -> String {
    muppet_yaml::emit(&Yaml::map([
        ("apiVersion".to_string(), Yaml::str("policy.linkerd.io/v1beta1")),
        ("kind".to_string(), Yaml::str("Server")),
        (
            "metadata".to_string(),
            Yaml::map([("name".to_string(), Yaml::str(s.name.clone()))]),
        ),
        (
            "spec".to_string(),
            Yaml::map([
                ("podSelector".to_string(), selector_yaml(&s.selector, "matchLabels")),
                ("port".to_string(), Yaml::Int(i64::from(s.port))),
            ]),
        ),
    ]))
}

/// Emit a [`ServerAuthorization`] document.
pub fn emit_server_authorization(a: &ServerAuthorization) -> String {
    let client = match &a.clients {
        Clients::Unauthenticated => Yaml::map([("unauthenticated".to_string(), Yaml::Bool(true))]),
        Clients::Services(svcs) => Yaml::map([(
            "meshTLS".to_string(),
            Yaml::map([(
                "serviceAccounts".to_string(),
                Yaml::Seq(
                    svcs.iter()
                        .map(|s| Yaml::map([("name".to_string(), Yaml::str(s.clone()))]))
                        .collect(),
                ),
            )]),
        )]),
    };
    muppet_yaml::emit(&Yaml::map([
        ("apiVersion".to_string(), Yaml::str("policy.linkerd.io/v1beta1")),
        ("kind".to_string(), Yaml::str("ServerAuthorization")),
        (
            "metadata".to_string(),
            Yaml::map([("name".to_string(), Yaml::str(a.name.clone()))]),
        ),
        (
            "spec".to_string(),
            Yaml::map([
                (
                    "server".to_string(),
                    Yaml::map([("name".to_string(), Yaml::str(a.server.clone()))]),
                ),
                ("client".to_string(), client),
            ]),
        ),
    ]))
}

/// Emit a [`SidecarPolicy`] document.
pub fn emit_sidecar(s: &SidecarPolicy) -> String {
    let mut spec = Vec::new();
    if s.selector != Selector::All {
        spec.push((
            "workloadSelector".to_string(),
            selector_yaml(&s.selector, "labels"),
        ));
    }
    spec.push((
        "egress".to_string(),
        Yaml::Seq(vec![Yaml::map([(
            "hosts".to_string(),
            Yaml::Seq(s.hosts.iter().map(|h| Yaml::str(h.clone())).collect()),
        )])]),
    ));
    muppet_yaml::emit(&Yaml::map([
        ("apiVersion".to_string(), Yaml::str("networking.istio.io/v1alpha3")),
        ("kind".to_string(), Yaml::str("Sidecar")),
        (
            "metadata".to_string(),
            Yaml::map([("name".to_string(), Yaml::str(s.name.clone()))]),
        ),
        ("spec".to_string(), Yaml::map(spec)),
    ]))
}

/// Emit a whole [`LinkerdBundle`] as a `---`-separated stream that
/// [`parse_linkerd_manifests`] round-trips.
pub fn emit_linkerd_bundle(bundle: &LinkerdBundle) -> String {
    let mut out = String::new();
    let mut push = |doc: String| {
        if !out.is_empty() {
            out.push_str("---\n");
        }
        out.push_str(&doc);
    };
    for s in bundle.mesh.services() {
        push(emit_service(s));
    }
    for s in &bundle.servers {
        push(emit_server(s));
    }
    for a in &bundle.authorizations {
        push(emit_server_authorization(a));
    }
    for s in &bundle.sidecars {
        push(emit_sidecar(s));
    }
    for p in &bundle.peer_auth {
        push(emit_peer_authentication(p));
    }
    out
}

/// The Linkerd domain's relational vocabulary: universe, relations and
/// compile/decompile maps (the domain analogue of `MeshVocab`).
pub struct LinkerdVocab {
    /// The finite universe: one atom per service, one per port.
    pub universe: Universe,
    /// Relation declarations.
    pub vocab: Vocabulary,
    /// The `Service` sort.
    pub svc_sort: SortId,
    /// The `Port` sort.
    pub port_sort: SortId,
    /// The platform party (mTLS + egress allowlists).
    pub platform_party: PartyId,
    /// The Linkerd party (Server + ServerAuthorization).
    pub linkerd_party: PartyId,
    /// `listens(Service, Port)` — structure: declared service ports.
    pub listens: RelId,
    /// `meshed(Service)` — structure: the workload is Linkerd-injected.
    pub meshed: RelId,
    /// `mtls_strict(Service)` — platform: STRICT PeerAuthentication.
    pub mtls_strict: RelId,
    /// `eg_guard(Service)` — platform: a Sidecar restricts this source.
    pub eg_guard: RelId,
    /// `eg_allow(Service, Service)` — platform: egress allowlist entry.
    pub eg_allow: RelId,
    /// `srv(Service, Port)` — linkerd: a Server covers the port.
    pub srv: RelId,
    /// `saz(Service, Service)` — linkerd: client → server authorized.
    pub saz: RelId,
    svc_atoms: BTreeMap<String, AtomId>,
    port_atoms: BTreeMap<u16, AtomId>,
    mesh: Mesh,
}

impl LinkerdVocab {
    /// Build the vocabulary for a mesh. `extra_ports` must cover every
    /// port mentioned by goals, `Server`s or spare ∃-port choices.
    pub fn new(
        mesh: &Mesh,
        extra_ports: impl IntoIterator<Item = u16>,
        platform_party: PartyId,
        linkerd_party: PartyId,
    ) -> LinkerdVocab {
        assert_ne!(platform_party, linkerd_party, "parties must be distinct");
        let mut universe = Universe::new();
        let svc_sort = universe.add_sort("Service");
        let port_sort = universe.add_sort("Port");
        let mut svc_atoms = BTreeMap::new();
        for s in mesh.services() {
            svc_atoms.insert(s.name.clone(), universe.add_atom(svc_sort, s.name.clone()));
        }
        let mut ports: BTreeSet<u16> = mesh.all_ports();
        ports.extend(extra_ports);
        let mut port_atoms = BTreeMap::new();
        for p in ports {
            port_atoms.insert(p, universe.add_atom(port_sort, p.to_string()));
        }
        let mut vocab = Vocabulary::new();
        let platform = Domain::Party(platform_party);
        let linkerd = Domain::Party(linkerd_party);
        let listens = vocab.add_rel(RelDecl {
            name: "listens".into(),
            arg_sorts: vec![svc_sort, port_sort],
            owner: Domain::Structure,
            english: "{0} listens on port {1}".into(),
            english_neg: "{0} does not listen on port {1}".into(),
        });
        let meshed = vocab.add_rel(RelDecl {
            name: "meshed".into(),
            arg_sorts: vec![svc_sort],
            owner: Domain::Structure,
            english: "{0} is injected into the Linkerd mesh".into(),
            english_neg: "{0} is not injected into the Linkerd mesh".into(),
        });
        let mtls_strict = vocab.add_rel(RelDecl {
            name: "mtls_strict".into(),
            arg_sorts: vec![svc_sort],
            owner: platform,
            english: "{0} requires strict mutual TLS".into(),
            english_neg: "{0} does not require strict mutual TLS".into(),
        });
        let eg_guard = vocab.add_rel(RelDecl {
            name: "eg_guard".into(),
            arg_sorts: vec![svc_sort],
            owner: platform,
            english: "a Sidecar restricts egress from {0}".into(),
            english_neg: "no Sidecar restricts egress from {0}".into(),
        });
        let eg_allow = vocab.add_rel(RelDecl {
            name: "eg_allow".into(),
            arg_sorts: vec![svc_sort, svc_sort],
            owner: platform,
            english: "{0} may open connections to {1}".into(),
            english_neg: "{0} may not open connections to {1}".into(),
        });
        let srv = vocab.add_rel(RelDecl {
            name: "srv".into(),
            arg_sorts: vec![svc_sort, port_sort],
            owner: linkerd,
            english: "a Server covers {0} port {1}".into(),
            english_neg: "no Server covers {0} port {1}".into(),
        });
        let saz = vocab.add_rel(RelDecl {
            name: "saz".into(),
            arg_sorts: vec![svc_sort, svc_sort],
            owner: linkerd,
            english: "{0} is authorized to call {1}".into(),
            english_neg: "{0} is not authorized to call {1}".into(),
        });
        LinkerdVocab {
            universe,
            vocab,
            svc_sort,
            port_sort,
            platform_party,
            linkerd_party,
            listens,
            meshed,
            mtls_strict,
            eg_guard,
            eg_allow,
            srv,
            saz,
            svc_atoms,
            port_atoms,
            mesh: mesh.clone(),
        }
    }

    /// The mesh this vocabulary was built from.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Service atom lookup.
    pub fn svc_atom(&self, name: &str) -> Option<AtomId> {
        self.svc_atoms.get(name).copied()
    }

    /// Port atom lookup.
    pub fn port_atom(&self, port: u16) -> Option<AtomId> {
        self.port_atoms.get(&port).copied()
    }

    /// All ports in the universe.
    pub fn ports(&self) -> impl Iterator<Item = u16> + '_ {
        self.port_atoms.keys().copied()
    }

    /// The port a port atom denotes.
    pub fn port_of_atom(&self, atom: AtomId) -> Option<u16> {
        self.port_atoms
            .iter()
            .find(|(_, &a)| a == atom)
            .map(|(&p, _)| p)
    }

    /// The fixed structural instance: `listens` from declared service
    /// ports, `meshed` from injection.
    pub fn structure_instance(&self) -> Instance {
        let mut inst = Instance::new();
        for s in self.mesh.services() {
            let sa = self.svc_atoms[&s.name];
            for &p in &s.ports {
                inst.insert(self.listens, vec![sa, self.port_atoms[&p]]);
            }
            if s.sidecar {
                inst.insert(self.meshed, vec![sa]);
            }
        }
        inst
    }

    /// Well-formedness axioms: a `Server` can only cover ports its
    /// workload actually exposes.
    pub fn well_formedness_axioms(&self, vocab: &mut Vocabulary) -> Vec<Formula> {
        let d = vocab.fresh_var();
        let p = vocab.fresh_var();
        vec![Formula::forall(
            d,
            self.svc_sort,
            Formula::forall(
                p,
                self.port_sort,
                Formula::implies(
                    Formula::pred(self.srv, [Term::Var(d), Term::Var(p)]),
                    Formula::pred(self.listens, [Term::Var(d), Term::Var(p)]),
                ),
            ),
        )]
    }

    /// The domain's `allowed` semantics (module docs).
    pub fn allowed_formula(&self, src: Term, dst: Term, dport: Term) -> Formula {
        Formula::and([
            Formula::pred(self.listens, [dst, dport]),
            Formula::pred(self.srv, [dst, dport]),
            Formula::pred(self.saz, [src, dst]),
            Formula::implies(
                Formula::pred(self.eg_guard, [src]),
                Formula::pred(self.eg_allow, [src, dst]),
            ),
            Formula::implies(
                Formula::pred(self.mtls_strict, [dst]),
                Formula::pred(self.meshed, [src]),
            ),
        ])
    }

    /// Compile the platform party's deployed documents
    /// (PeerAuthentication + Sidecar) into an instance.
    pub fn compile_platform(&self, bundle: &LinkerdBundle) -> Result<Instance, String> {
        let mut inst = Instance::new();
        for p in &bundle.peer_auth {
            if p.mode != MtlsMode::Strict {
                continue;
            }
            for s in self.mesh.select(&p.selector) {
                inst.insert(self.mtls_strict, vec![self.svc_atoms[&s.name]]);
            }
        }
        for sc in &bundle.sidecars {
            for src in self.mesh.select(&sc.selector) {
                let sa = self.svc_atoms[&src.name];
                inst.insert(self.eg_guard, vec![sa]);
                for host in &sc.hosts {
                    if host == "*/*" || host == "*" {
                        for dst in self.mesh.services() {
                            inst.insert(self.eg_allow, vec![sa, self.svc_atoms[&dst.name]]);
                        }
                        continue;
                    }
                    let name = host.strip_prefix("./").unwrap_or(host);
                    let da = self
                        .svc_atom(name)
                        .ok_or_else(|| format!("Sidecar {:?} names unknown host {host:?}", sc.name))?;
                    inst.insert(self.eg_allow, vec![sa, da]);
                }
            }
        }
        Ok(inst)
    }

    /// Compile the Linkerd party's deployed documents
    /// (Server + ServerAuthorization) into an instance.
    pub fn compile_linkerd(&self, bundle: &LinkerdBundle) -> Result<Instance, String> {
        let mut inst = Instance::new();
        let mut server_svcs: BTreeMap<&str, Vec<AtomId>> = BTreeMap::new();
        for srv in &bundle.servers {
            let pa = self
                .port_atom(srv.port)
                .ok_or_else(|| format!("Server {:?} port {} outside the universe", srv.name, srv.port))?;
            let mut covered = Vec::new();
            for s in self.mesh.select(&srv.selector) {
                let sa = self.svc_atoms[&s.name];
                inst.insert(self.srv, vec![sa, pa]);
                covered.push(sa);
            }
            server_svcs.entry(srv.name.as_str()).or_default().extend(covered);
        }
        for auth in &bundle.authorizations {
            let servers = server_svcs.get(auth.server.as_str()).ok_or_else(|| {
                format!(
                    "ServerAuthorization {:?} references unknown Server {:?}",
                    auth.name, auth.server
                )
            })?;
            let clients: Vec<AtomId> = match &auth.clients {
                Clients::Unauthenticated => self
                    .mesh
                    .services()
                    .iter()
                    .map(|s| self.svc_atoms[&s.name])
                    .collect(),
                Clients::Services(names) => {
                    let mut out = Vec::new();
                    for n in names {
                        out.push(self.svc_atom(n).ok_or_else(|| {
                            format!(
                                "ServerAuthorization {:?} names unknown service {n:?}",
                                auth.name
                            )
                        })?);
                    }
                    out
                }
            };
            for &dst in servers {
                for &src in &clients {
                    inst.insert(self.saz, vec![src, dst]);
                }
            }
        }
        Ok(inst)
    }

    /// Decompile a platform instance back into documents.
    pub fn decompile_platform(&self, inst: &Instance) -> (Vec<PeerAuthentication>, Vec<SidecarPolicy>) {
        let mut peer = Vec::new();
        for s in self.mesh.services() {
            if inst.holds(self.mtls_strict, &[self.svc_atoms[&s.name]]) {
                peer.push(PeerAuthentication {
                    name: format!("mtls-{}", s.name),
                    selector: Selector::Name(s.name.clone()),
                    mode: MtlsMode::Strict,
                });
            }
        }
        let mut sidecars = Vec::new();
        for s in self.mesh.services() {
            let sa = self.svc_atoms[&s.name];
            if !inst.holds(self.eg_guard, &[sa]) {
                continue;
            }
            let hosts: Vec<String> = self
                .mesh
                .services()
                .iter()
                .filter(|d| inst.holds(self.eg_allow, &[sa, self.svc_atoms[&d.name]]))
                .map(|d| format!("./{}", d.name))
                .collect();
            sidecars.push(SidecarPolicy {
                name: format!("egress-{}", s.name),
                selector: Selector::Name(s.name.clone()),
                hosts,
            });
        }
        (peer, sidecars)
    }

    /// Decompile a Linkerd instance back into documents. Authorizations
    /// whose destination has no `Server` are dropped (they authorize
    /// nothing under the default-deny semantics).
    pub fn decompile_linkerd(&self, inst: &Instance) -> (Vec<Server>, Vec<ServerAuthorization>) {
        let mut servers = Vec::new();
        let mut first_server: BTreeMap<AtomId, String> = BTreeMap::new();
        for s in self.mesh.services() {
            let sa = self.svc_atoms[&s.name];
            for (&p, &pa) in &self.port_atoms {
                if inst.holds(self.srv, &[sa, pa]) {
                    let name = format!("srv-{}-{p}", s.name);
                    first_server.entry(sa).or_insert_with(|| name.clone());
                    servers.push(Server {
                        name,
                        selector: Selector::Name(s.name.clone()),
                        port: p,
                    });
                }
            }
        }
        let mut auths = Vec::new();
        for d in self.mesh.services() {
            let da = self.svc_atoms[&d.name];
            let Some(server) = first_server.get(&da) else {
                continue;
            };
            let clients: Vec<String> = self
                .mesh
                .services()
                .iter()
                .filter(|s| inst.holds(self.saz, &[self.svc_atoms[&s.name], da]))
                .map(|s| s.name.clone())
                .collect();
            if clients.is_empty() {
                continue;
            }
            auths.push(ServerAuthorization {
                name: format!("authz-{}", d.name),
                server: server.clone(),
                clients: Clients::Services(clients),
            });
        }
        (servers, auths)
    }
}

/// A platform goal row: `port,perm,selector` with perm `DENY` / `ALLOW`
/// / `MTLS` (the port cell of an `MTLS` row is ignored).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlatformGoal {
    /// Reuses the shared K8s row shape for DENY/ALLOW.
    Port(K8sGoal),
    /// `_,MTLS,selector`: the selected services must require strict mTLS.
    Mtls(Selector),
}

impl PlatformGoal {
    /// Parse the platform goal table. DENY/ALLOW rows go through the
    /// shared [`K8sGoal`] parser; `MTLS` rows are domain-specific.
    pub fn parse_csv(input: &str) -> Result<Vec<PlatformGoal>, GoalParseError> {
        let mut plain_rows = String::new();
        let mut out = Vec::new();
        let mut order = Vec::new();
        for line in input.lines() {
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() == 3 && fields[1].eq_ignore_ascii_case("mtls") {
                let sel = if fields[2] == "*" || fields[2].is_empty() {
                    Selector::All
                } else {
                    Selector::Name(fields[2].to_string())
                };
                order.push(Some(PlatformGoal::Mtls(sel)));
            } else {
                plain_rows.push_str(line);
                plain_rows.push('\n');
                order.push(None);
            }
        }
        let mut parsed = K8sGoal::parse_csv(&plain_rows)?.into_iter();
        for slot in order {
            match slot {
                Some(g) => out.push(g),
                None => {
                    if let Some(g) = parsed.next() {
                        out.push(PlatformGoal::Port(g));
                    } // else: the row was a header or blank
                }
            }
        }
        Ok(out)
    }
}

fn goal_err(message: String) -> GoalParseError {
    GoalParseError { message }
}

/// Translate platform goal rows into named formulas.
pub fn translate_platform_goals(
    goals: &[PlatformGoal],
    lv: &LinkerdVocab,
    vocab: &mut Vocabulary,
) -> Result<Vec<muppet_goals::NamedFormula>, GoalParseError> {
    use muppet_mesh::Action;
    let mut out = Vec::new();
    for (i, g) in goals.iter().enumerate() {
        match g {
            PlatformGoal::Mtls(sel) => {
                let covered: Vec<AtomId> = lv
                    .mesh()
                    .select(sel)
                    .iter()
                    .map(|s| lv.svc_atoms[&s.name])
                    .collect();
                if covered.is_empty() {
                    return Err(goal_err(format!(
                        "MTLS goal row {} selects no services",
                        i + 1
                    )));
                }
                let formula = Formula::and(
                    covered
                        .iter()
                        .map(|&a| Formula::pred(lv.mtls_strict, [Term::Const(a)]))
                        .collect::<Vec<_>>(),
                );
                out.push(muppet_goals::NamedFormula {
                    name: format!("platform goal {}: require strict mTLS", i + 1),
                    formula: simplify(&formula),
                    var_names: Vec::new(),
                });
            }
            PlatformGoal::Port(g) => {
                let port_atom = lv.port_atom(g.port).ok_or_else(|| {
                    goal_err(format!("goal port {} missing from the port universe", g.port))
                })?;
                let src = vocab.fresh_var();
                let dst = vocab.fresh_var();
                let covered: Vec<AtomId> = lv
                    .mesh()
                    .select(&g.selector)
                    .iter()
                    .map(|s| lv.svc_atoms[&s.name])
                    .collect();
                let all_covered = covered.len() == lv.mesh().services().len();
                let body_for = |dst_term: Term| match g.perm {
                    Action::Deny => Formula::not(lv.allowed_formula(
                        Term::Var(src),
                        dst_term,
                        Term::Const(port_atom),
                    )),
                    Action::Allow => Formula::implies(
                        Formula::and([
                            Formula::pred(lv.listens, [dst_term, Term::Const(port_atom)]),
                            Formula::not(Formula::Eq(Term::Var(src), dst_term)),
                        ]),
                        lv.allowed_formula(Term::Var(src), dst_term, Term::Const(port_atom)),
                    ),
                };
                let quantified = if all_covered {
                    Formula::forall(
                        src,
                        lv.svc_sort,
                        Formula::forall(dst, lv.svc_sort, body_for(Term::Var(dst))),
                    )
                } else {
                    Formula::and(
                        covered
                            .iter()
                            .map(|&d| {
                                Formula::forall(src, lv.svc_sort, body_for(Term::Const(d)))
                            })
                            .collect::<Vec<_>>(),
                    )
                };
                let perm = match g.perm {
                    Action::Deny => "DENY",
                    Action::Allow => "ALLOW",
                };
                out.push(muppet_goals::NamedFormula {
                    name: format!("platform goal {}: {} port {}", i + 1, perm, g.port),
                    formula: simplify(&quantified),
                    var_names: vec![(src, "src".to_string()), (dst, "dst".to_string())],
                });
            }
        }
    }
    Ok(out)
}

/// Translate Linkerd reachability rows (`src,dst,srcPort,dstPort`).
/// Same existential-variable language as the mesh domain's Istio table:
/// `?v` cells share one variable per name across the table, and rows
/// coupled by a shared variable merge into one blame group.
pub fn translate_linkerd_goals(
    goals: &[IstioGoal],
    lv: &LinkerdVocab,
    vocab: &mut Vocabulary,
) -> Result<Vec<muppet_goals::NamedFormula>, GoalParseError> {
    // Union-find-lite over rows sharing variable names (mirrors
    // muppet_goals::translate_istio_goals).
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut var_owner: BTreeMap<String, usize> = BTreeMap::new();
    for (i, g) in goals.iter().enumerate() {
        let names: Vec<&str> = [&g.src_port, &g.dst_port]
            .into_iter()
            .filter_map(PortSpec::var_name)
            .collect();
        let mut target: Option<usize> = None;
        for n in &names {
            if let Some(&gidx) = var_owner.get(*n) {
                target = Some(match target {
                    Some(t) if t != gidx => {
                        let moved = std::mem::take(&mut groups[gidx]);
                        groups[t].extend(moved);
                        for owner in var_owner.values_mut() {
                            if *owner == gidx {
                                *owner = t;
                            }
                        }
                        t
                    }
                    Some(t) => t,
                    None => gidx,
                });
            }
        }
        let gidx = match target {
            Some(t) => t,
            None => {
                groups.push(Vec::new());
                groups.len() - 1
            }
        };
        groups[gidx].push(i);
        for n in names {
            var_owner.insert(n.to_string(), gidx);
        }
    }
    let mut out = Vec::new();
    for rows in groups.iter().filter(|g| !g.is_empty()) {
        let mut vars: BTreeMap<String, VarId> = BTreeMap::new();
        let mut var_names = Vec::new();
        let mut order: Vec<VarId> = Vec::new();
        let mut conjuncts = Vec::new();
        for &i in rows {
            let g = &goals[i];
            let src_atom = lv.svc_atom(&g.src).ok_or_else(|| {
                goal_err(format!("unknown source service {:?}", g.src))
            })?;
            let dst_atom = lv.svc_atom(&g.dst).ok_or_else(|| {
                goal_err(format!("unknown destination service {:?}", g.dst))
            })?;
            let mut bind = |spec: &PortSpec, label: &str| -> Result<Term, GoalParseError> {
                match spec {
                    PortSpec::Port(p) => {
                        let atom = lv.port_atom(*p).ok_or_else(|| {
                            goal_err(format!("goal port {p} missing from the port universe"))
                        })?;
                        Ok(Term::Const(atom))
                    }
                    PortSpec::Var(name) => {
                        let v = *vars.entry(name.clone()).or_insert_with(|| {
                            let v = vocab.fresh_var();
                            order.push(v);
                            var_names.push((v, name.clone()));
                            v
                        });
                        Ok(Term::Var(v))
                    }
                    PortSpec::Any => {
                        let v = vocab.fresh_var();
                        order.push(v);
                        var_names.push((v, format!("any_{label}_{i}")));
                        Ok(Term::Var(v))
                    }
                }
            };
            let _sp = bind(&g.src_port, "sp")?;
            let dp = bind(&g.dst_port, "dp")?;
            conjuncts.push(lv.allowed_formula(
                Term::Const(src_atom),
                Term::Const(dst_atom),
                dp,
            ));
        }
        let mut formula = Formula::and(conjuncts);
        for v in order.into_iter().rev() {
            formula = Formula::exists(v, lv.port_sort, formula);
        }
        let name = if rows.len() == 1 {
            let g = &goals[rows[0]];
            let port = match &g.dst_port {
                PortSpec::Port(p) => format!("port {p}"),
                PortSpec::Var(v) => format!("port ∃{v}"),
                PortSpec::Any => "any port".to_string(),
            };
            format!(
                "linkerd goal {}: {} -> {} ({port})",
                rows[0] + 1,
                g.src,
                g.dst
            )
        } else {
            format!(
                "linkerd goals {} (coupled by shared port variables)",
                rows.iter()
                    .map(|i| (i + 1).to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            )
        };
        out.push(muppet_goals::NamedFormula {
            name,
            formula: simplify(&formula),
            var_names,
        });
    }
    Ok(out)
}

/// Domain-private state for a built Linkerd model.
pub struct LinkerdPayload {
    /// Parsed manifest documents.
    pub bundle: LinkerdBundle,
    /// Universe + relation handles.
    pub lv: LinkerdVocab,
}

/// Downcast a model's payload; `Some` iff built by [`LinkerdDomain`].
pub fn payload(model: &DomainModel) -> Option<&LinkerdPayload> {
    model.payload.downcast_ref::<LinkerdPayload>()
}

/// The Linkerd policy domain (roles `platform`, `linkerd`).
pub struct LinkerdDomain;

impl ConfigDomain for LinkerdDomain {
    fn name(&self) -> &'static str {
        "linkerd"
    }

    fn roles(&self) -> &'static [&'static str] {
        &["platform", "linkerd"]
    }

    fn displays(&self) -> &'static [&'static str] {
        &["platform-admin", "linkerd-admin"]
    }

    fn build(&self, input: &DomainInput) -> Result<DomainModel, String> {
        let bundle = parse_linkerd_manifests(&input.manifests)?;
        if bundle.mesh.services().is_empty() {
            return Err("no Service documents found in the manifests".into());
        }
        let platform_rows =
            PlatformGoal::parse_csv(input.goal_text(0)).map_err(|e| e.to_string())?;
        let linkerd_rows = IstioGoal::parse_csv(input.goal_text(1)).map_err(|e| e.to_string())?;
        let mut ports: BTreeSet<u16> = BTreeSet::new();
        for g in &platform_rows {
            if let PlatformGoal::Port(g) = g {
                ports.insert(g.port);
            }
        }
        for g in &linkerd_rows {
            for spec in [&g.src_port, &g.dst_port] {
                if let PortSpec::Port(p) = spec {
                    ports.insert(*p);
                }
            }
        }
        ports.extend(&input.extra_ports);
        for s in &bundle.servers {
            ports.insert(s.port);
        }
        let lv = LinkerdVocab::new(&bundle.mesh, ports.iter().copied(), PartyId(0), PartyId(1));
        let port_list: Vec<u16> = lv.ports().collect();
        let mut vocab = lv.vocab.clone();
        let platform_goals: Vec<NamedGoal> =
            translate_platform_goals(&platform_rows, &lv, &mut vocab)
                .map_err(|e| e.to_string())?
                .into_iter()
                .map(NamedGoal::from)
                .collect();
        let linkerd_goals: Vec<NamedGoal> =
            translate_linkerd_goals(&linkerd_rows, &lv, &mut vocab)
                .map_err(|e| e.to_string())?
                .into_iter()
                .map(NamedGoal::from)
                .collect();
        let axioms = lv.well_formedness_axioms(&mut vocab);
        let services = bundle.mesh.services().len();
        let parties = vec![
            DomainParty {
                id: lv.platform_party,
                role: "platform".into(),
                display: "platform-admin".into(),
                goals: platform_goals,
                goals_text: input.goal_text(0).to_string(),
            },
            DomainParty {
                id: lv.linkerd_party,
                role: "linkerd".into(),
                display: "linkerd-admin".into(),
                goals: linkerd_goals,
                goals_text: input.goal_text(1).to_string(),
            },
        ];
        Ok(DomainModel {
            domain: "linkerd",
            universe: lv.universe.clone(),
            structure: lv.structure_instance(),
            vocab,
            axioms,
            parties,
            ports: port_list,
            services,
            payload: Box::new(LinkerdPayload { bundle, lv }),
        })
    }

    fn deployed(&self, model: &DomainModel, party: PartyId) -> Result<Instance, String> {
        let pay = payload(model).ok_or("not a linkerd model")?;
        if party == pay.lv.platform_party {
            pay.lv.compile_platform(&pay.bundle)
        } else {
            pay.lv.compile_linkerd(&pay.bundle)
        }
    }

    fn emit_solution(
        &self,
        model: &DomainModel,
        configs: &BTreeMap<PartyId, Instance>,
    ) -> Option<String> {
        let pay = payload(model)?;
        let empty = Instance::new();
        let platform_cfg = configs.get(&pay.lv.platform_party).unwrap_or(&empty);
        let linkerd_cfg = configs.get(&pay.lv.linkerd_party).unwrap_or(&empty);
        let (peer_auth, sidecars) = pay.lv.decompile_platform(platform_cfg);
        let (servers, authorizations) = pay.lv.decompile_linkerd(linkerd_cfg);
        Some(emit_linkerd_bundle(&LinkerdBundle {
            mesh: pay.bundle.mesh.clone(),
            servers,
            authorizations,
            sidecars,
            peer_auth,
        }))
    }
}

/// The committed example scenario's manifests: a four-service shop mesh
/// with one legacy (uninjected) workload, a STRICT mTLS policy on the
/// database, an egress-restricted web frontend, and a served+authorized
/// api — the Linkerd analogue of the paper's Fig. 1 walkthrough.
pub fn example_manifests() -> String {
    concat!(
        "apiVersion: v1\n",
        "kind: Service\n",
        "metadata:\n",
        "  name: web\n",
        "spec:\n",
        "  ports:\n",
        "    - port: 8080\n",
        "---\n",
        "apiVersion: v1\n",
        "kind: Service\n",
        "metadata:\n",
        "  name: api\n",
        "spec:\n",
        "  ports:\n",
        "    - port: 8443\n",
        "---\n",
        "apiVersion: v1\n",
        "kind: Service\n",
        "metadata:\n",
        "  name: db\n",
        "spec:\n",
        "  ports:\n",
        "    - port: 5432\n",
        "---\n",
        "apiVersion: v1\n",
        "kind: Service\n",
        "metadata:\n",
        "  name: legacy\n",
        "  annotations:\n",
        "    linkerd.io/inject: disabled\n",
        "spec:\n",
        "  ports:\n",
        "    - port: 9090\n",
        "---\n",
        "apiVersion: policy.linkerd.io/v1beta1\n",
        "kind: Server\n",
        "metadata:\n",
        "  name: api-8443\n",
        "spec:\n",
        "  podSelector:\n",
        "    matchLabels:\n",
        "      app: api\n",
        "  port: 8443\n",
        "---\n",
        "apiVersion: policy.linkerd.io/v1beta1\n",
        "kind: ServerAuthorization\n",
        "metadata:\n",
        "  name: web-to-api\n",
        "spec:\n",
        "  server:\n",
        "    name: api-8443\n",
        "  client:\n",
        "    meshTLS:\n",
        "      serviceAccounts:\n",
        "        - name: web\n",
        "---\n",
        "apiVersion: networking.istio.io/v1alpha3\n",
        "kind: Sidecar\n",
        "metadata:\n",
        "  name: egress-web\n",
        "spec:\n",
        "  workloadSelector:\n",
        "    labels:\n",
        "      app: web\n",
        "  egress:\n",
        "    - hosts:\n",
        "        - ./api\n",
        "---\n",
        "apiVersion: security.istio.io/v1beta1\n",
        "kind: PeerAuthentication\n",
        "metadata:\n",
        "  name: db-strict\n",
        "spec:\n",
        "  selector:\n",
        "    matchLabels:\n",
        "      app: db\n",
        "  mtls:\n",
        "    mode: STRICT\n",
    )
    .to_string()
}

/// The platform admin's goal table for the example scenario: the
/// metrics port stays closed mesh-wide, and the database keeps strict
/// mTLS.
pub fn example_platform_goals() -> String {
    "port,perm,selector\n9090,DENY,*\n0,MTLS,db\n".to_string()
}

/// The Linkerd admin's goal table for the example scenario. Row 1 is
/// satisfiable; rows 2 and 3 conflict with the platform's goals (the
/// legacy workload is outside the mesh and 9090 is banned), so
/// negotiation must drop them.
pub fn example_linkerd_goals() -> String {
    "srcService,dstService,srcPort,dstPort\n\
     web,api,*,8443\n\
     legacy,db,*,5432\n\
     web,legacy,*,9090\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet::ReconcileMode;

    fn example_input() -> DomainInput {
        DomainInput {
            manifests: example_manifests(),
            goals: vec![example_platform_goals(), example_linkerd_goals()],
            mtls: false,
            extra_ports: Vec::new(),
        }
    }

    #[test]
    fn example_bundle_round_trips_through_emit() {
        let bundle = parse_linkerd_manifests(&example_manifests()).unwrap();
        assert_eq!(bundle.mesh.services().len(), 4);
        assert_eq!(bundle.servers.len(), 1);
        assert_eq!(bundle.authorizations.len(), 1);
        assert_eq!(bundle.sidecars.len(), 1);
        assert_eq!(bundle.peer_auth.len(), 1);
        let back = parse_linkerd_manifests(&emit_linkerd_bundle(&bundle)).unwrap();
        // Selector spellings normalize (matchLabels app: x ⇒ label
        // selector), so compare compiled semantics, not raw structs.
        let lv = LinkerdVocab::new(&bundle.mesh, [], PartyId(0), PartyId(1));
        assert_eq!(
            lv.compile_platform(&bundle).unwrap(),
            lv.compile_platform(&back).unwrap()
        );
        assert_eq!(
            lv.compile_linkerd(&bundle).unwrap(),
            lv.compile_linkerd(&back).unwrap()
        );
        assert_eq!(
            lv.structure_instance(),
            LinkerdVocab::new(&back.mesh, [], PartyId(0), PartyId(1)).structure_instance()
        );
    }

    #[test]
    fn deployed_configs_respect_default_deny_and_mtls() {
        let model = LinkerdDomain.build(&example_input()).unwrap();
        let pay = payload(&model).unwrap();
        let lv = &pay.lv;
        let platform = LinkerdDomain.deployed(&model, lv.platform_party).unwrap();
        let linkerd = LinkerdDomain.deployed(&model, lv.linkerd_party).unwrap();
        let full = model.structure.union(&platform).union(&linkerd);
        let allowed = |src: &str, dst: &str, port: u16| {
            let f = lv.allowed_formula(
                Term::Const(lv.svc_atom(src).unwrap()),
                Term::Const(lv.svc_atom(dst).unwrap()),
                Term::Const(lv.port_atom(port).unwrap()),
            );
            muppet_logic::evaluate_closed(&f, &full, &lv.universe).unwrap()
        };
        assert!(allowed("web", "api", 8443), "served + authorized + allowlisted");
        assert!(!allowed("db", "api", 8443), "db holds no authorization");
        assert!(!allowed("web", "db", 5432), "no Server on db: default deny");
        assert!(!allowed("api", "web", 8080), "no Server on web either");
    }

    #[test]
    fn example_reconciles_only_after_dropping_conflicting_goals() {
        let model = LinkerdDomain.build(&example_input()).unwrap();
        let s = model.session();
        let rec = s.reconcile(ReconcileMode::Blameable).unwrap();
        assert!(!rec.success, "legacy/db and 9090 rows conflict");
        // Blame names both sides.
        assert!(
            rec.core.iter().any(|c| c.contains("platform goal")),
            "core: {:?}",
            rec.core
        );
        assert!(
            rec.core.iter().any(|c| c.contains("linkerd goal")),
            "core: {:?}",
            rec.core
        );
        // Dropping the two conflicting reachability rows reconciles.
        let solo = DomainInput {
            goals: vec![
                example_platform_goals(),
                "srcService,dstService,srcPort,dstPort\nweb,api,*,8443\n".into(),
            ],
            ..example_input()
        };
        let model = LinkerdDomain.build(&solo).unwrap();
        let s = model.session();
        let rec = s.reconcile(ReconcileMode::HardBounds).unwrap();
        assert!(rec.success, "core: {:?}", rec.core);
    }

    #[test]
    fn mtls_blocks_unmeshed_sources_in_the_solver_too() {
        // legacy -> db is impossible while db requires strict mTLS,
        // because `meshed` is structure and legacy opted out.
        let input = DomainInput {
            manifests: example_manifests(),
            goals: vec![
                "port,perm,selector\n0,MTLS,db\n".into(),
                "srcService,dstService,srcPort,dstPort\nlegacy,db,*,5432\n".into(),
            ],
            mtls: false,
            extra_ports: Vec::new(),
        };
        let model = LinkerdDomain.build(&input).unwrap();
        let s = model.session();
        assert!(!s.reconcile(ReconcileMode::HardBounds).unwrap().success);
        // Without the mTLS requirement the same row is satisfiable.
        let relaxed = DomainInput {
            goals: vec![
                String::new(),
                "srcService,dstService,srcPort,dstPort\nlegacy,db,*,5432\n".into(),
            ],
            ..input
        };
        let model = LinkerdDomain.build(&relaxed).unwrap();
        let s = model.session();
        assert!(s.reconcile(ReconcileMode::HardBounds).unwrap().success);
    }

    #[test]
    fn platform_goal_table_parses_all_three_perms() {
        let rows = PlatformGoal::parse_csv("port,perm,selector\n23,DENY,*\n80,ALLOW,api\n0,MTLS,db\n")
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert!(matches!(rows[0], PlatformGoal::Port(_)));
        assert!(matches!(rows[2], PlatformGoal::Mtls(Selector::Name(_))));
        assert!(PlatformGoal::parse_csv("23,AUDIT,*\n").is_err());
    }

    #[test]
    fn emit_solution_round_trips_solved_configs() {
        let model = LinkerdDomain.build(&example_input()).unwrap();
        let pay = payload(&model).unwrap();
        let mut configs = BTreeMap::new();
        configs.insert(
            pay.lv.platform_party,
            LinkerdDomain.deployed(&model, pay.lv.platform_party).unwrap(),
        );
        configs.insert(
            pay.lv.linkerd_party,
            LinkerdDomain.deployed(&model, pay.lv.linkerd_party).unwrap(),
        );
        let yaml = LinkerdDomain.emit_solution(&model, &configs).unwrap();
        let back = parse_linkerd_manifests(&yaml).unwrap();
        let lv = &pay.lv;
        assert_eq!(
            lv.compile_platform(&back).unwrap(),
            configs[&lv.platform_party]
        );
        assert_eq!(
            lv.compile_linkerd(&back).unwrap(),
            configs[&lv.linkerd_party]
        );
    }
}
