//! The paper's K8s/Istio service-mesh domain, as a [`ConfigDomain`].
//!
//! This is the load pipeline that used to live inside
//! `muppet-daemon`'s `SessionSpec::load` and `muppet-cli`, moved behind
//! the trait: parse the manifest bundle, derive the port universe from
//! goals + policies + extras, build [`MeshVocab`], translate both goal
//! tables and collect well-formedness axioms. Roles, display names,
//! goal names and the universe derivation are all byte-identical to the
//! pre-plugin pipeline — the N=2 differential gate
//! (`tests/nparty_differential.rs`) holds the refactor to that.

use std::collections::{BTreeMap, BTreeSet};

use muppet::NamedGoal;
use muppet_goals::{translate_istio_goals, translate_k8s_goals, IstioGoal, K8sGoal};
use muppet_logic::{Instance, PartyId};
use muppet_mesh::manifest::{emit_bundle, parse_manifests, ManifestBundle};
use muppet_mesh::MeshVocab;

use crate::{ConfigDomain, DomainInput, DomainModel, DomainParty};

// Re-exported so domain-generic consumers (the daemon's committed paper
// specs, harness lanes) can reach the paper fixture without importing
// the mesh crate directly.
pub use muppet_mesh::manifest::paper_example_manifests;

/// Domain-private state: the parsed manifests and the vocabulary's
/// compile/decompile maps.
pub struct MeshPayload {
    /// Parsed manifest documents.
    pub bundle: ManifestBundle,
    /// Universe + mesh relation handles.
    pub mv: MeshVocab,
}

/// Downcast a model's payload; `Some` iff the model was built by
/// [`MeshDomain`]. Mesh-only consumers (the CLI's dataplane diagnosis,
/// the stream engine) go through this instead of re-parsing.
pub fn payload(model: &DomainModel) -> Option<&MeshPayload> {
    model.payload.downcast_ref::<MeshPayload>()
}

/// The K8s/Istio pair (roles `k8s`, `istio`).
pub struct MeshDomain;

impl ConfigDomain for MeshDomain {
    fn name(&self) -> &'static str {
        "mesh"
    }

    fn roles(&self) -> &'static [&'static str] {
        &["k8s", "istio"]
    }

    fn displays(&self) -> &'static [&'static str] {
        &["k8s-admin", "istio-admin"]
    }

    fn build(&self, input: &DomainInput) -> Result<DomainModel, String> {
        let bundle = parse_manifests(&input.manifests).map_err(|e| e.to_string())?;
        if bundle.mesh.services().is_empty() {
            return Err("no Service documents found in the manifests".into());
        }
        let k8s_rows = K8sGoal::parse_csv(input.goal_text(0)).map_err(|e| e.to_string())?;
        let istio_rows = IstioGoal::parse_csv(input.goal_text(1)).map_err(|e| e.to_string())?;
        // The universe's port set derives from BOTH goal tables, the
        // deployed policies and the explicit extras — anything touching
        // it invalidates every per-op cache key (see the Engine docs).
        let mut ports: BTreeSet<u16> = muppet_goals::collect_goal_ports(&k8s_rows, &istio_rows);
        ports.extend(&input.extra_ports);
        for p in &bundle.k8s_policies {
            for r in &p.rules {
                ports.extend(&r.ports);
            }
        }
        for p in &bundle.istio_policies {
            for r in &p.rules {
                ports.extend(&r.ports);
            }
        }
        let port_list: Vec<u16> = ports.iter().copied().collect();
        let mv = MeshVocab::new_with_features(
            &bundle.mesh,
            ports,
            PartyId(0),
            PartyId(1),
            input.mtls,
        );
        let mut vocab = mv.vocab.clone();
        let k8s_goals: Vec<NamedGoal> = translate_k8s_goals(&k8s_rows, &mv, &mut vocab)
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(NamedGoal::from)
            .collect();
        let istio_goals: Vec<NamedGoal> = translate_istio_goals(&istio_rows, &mv, &mut vocab)
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(NamedGoal::from)
            .collect();
        let axioms = mv.well_formedness_axioms(&mut vocab);
        let services = bundle.mesh.services().len();
        let parties = vec![
            DomainParty {
                id: mv.k8s_party,
                role: "k8s".into(),
                display: "k8s-admin".into(),
                goals: k8s_goals,
                goals_text: input.goal_text(0).to_string(),
            },
            DomainParty {
                id: mv.istio_party,
                role: "istio".into(),
                display: "istio-admin".into(),
                goals: istio_goals,
                goals_text: input.goal_text(1).to_string(),
            },
        ];
        Ok(DomainModel {
            domain: "mesh",
            universe: mv.universe.clone(),
            structure: mv.sidecar_instance(),
            vocab,
            axioms,
            parties,
            ports: port_list,
            services,
            payload: Box::new(MeshPayload { bundle, mv }),
        })
    }

    fn deployed(&self, model: &DomainModel, party: PartyId) -> Result<Instance, String> {
        let pay = payload(model).ok_or("not a mesh model")?;
        if party == pay.mv.k8s_party {
            pay.mv
                .compile_k8s(&pay.bundle.k8s_policies)
                .map_err(|e| e.to_string())
        } else {
            let istio = pay
                .mv
                .compile_istio(&pay.bundle.istio_policies)
                .map_err(|e| e.to_string())?;
            let peer = pay
                .mv
                .compile_peer_auth(&pay.bundle.peer_auth)
                .map_err(|e| e.to_string())?;
            Ok(istio.union(&peer))
        }
    }

    fn deployed_snapshot(
        &self,
        model: &DomainModel,
        party: PartyId,
    ) -> Result<Instance, String> {
        let pay = payload(model).ok_or("not a mesh model")?;
        let deployed = self.deployed(model, party)?;
        if party == pay.mv.istio_party {
            // `listens` is Istio-owned current deployment (see
            // `MeshVocab::structure_instance`), so the snapshot carries
            // it even though solver queries treat it as revisable.
            Ok(pay.mv.structure_instance().union(&deployed))
        } else {
            Ok(deployed)
        }
    }

    fn emit_solution(
        &self,
        model: &DomainModel,
        configs: &BTreeMap<PartyId, Instance>,
    ) -> Option<String> {
        let pay = payload(model)?;
        let mut combined = model.structure.clone();
        for c in configs.values() {
            combined = combined.union(c);
        }
        let empty = Instance::new();
        let k8s_cfg = configs.get(&pay.mv.k8s_party).unwrap_or(&empty);
        let istio_cfg = configs.get(&pay.mv.istio_party).unwrap_or(&empty);
        let bundle = ManifestBundle {
            mesh: pay.mv.decompile_services(&combined),
            k8s_policies: pay.mv.decompile_k8s(k8s_cfg),
            istio_policies: pay.mv.decompile_istio(istio_cfg),
            peer_auth: pay.mv.decompile_peer_auth(istio_cfg),
        };
        Some(emit_bundle(&bundle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet::ReconcileMode;

    fn paper_input(istio_goals: &str) -> DomainInput {
        DomainInput {
            manifests: muppet_mesh::manifest::paper_example_manifests(),
            goals: vec![
                "port,perm,selector\n23,DENY,*\n".into(),
                istio_goals.into(),
            ],
            mtls: false,
            extra_ports: Vec::new(),
        }
    }

    const FIG3: &str = "srcService,dstService,srcPort,dstPort\n\
                        test-frontend,test-backend,24,25\n\
                        test-backend,test-frontend,26,23\n\
                        test-backend,test-db,14000,16000\n\
                        test-db,test-backend,10000,12000\n";

    #[test]
    fn paper_fixture_builds_and_reconciles_as_in_the_paper() {
        let model = MeshDomain.build(&paper_input(FIG3)).unwrap();
        assert_eq!(model.parties.len(), 2);
        assert_eq!(model.role(PartyId(0)), "k8s");
        assert_eq!(model.party_id("istio-admin").unwrap(), PartyId(1));
        let s = model.session();
        let rec = s.reconcile(ReconcileMode::HardBounds).unwrap();
        assert!(!rec.success, "Fig. 3 goals conflict with the port-23 ban");
    }

    #[test]
    fn deployed_is_lazy_and_per_party() {
        let model = MeshDomain.build(&paper_input(FIG3)).unwrap();
        let k8s = MeshDomain.deployed(&model, PartyId(0)).unwrap();
        let istio = MeshDomain.deployed(&model, PartyId(1)).unwrap();
        // The paper manifests carry no deployed policies: both empty.
        assert_eq!(k8s, Instance::new());
        assert_eq!(istio, Instance::new());
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        let mut input = paper_input(FIG3);
        input.manifests = "kind: Nonsense\n".into();
        assert!(MeshDomain.build(&input).is_err());
        let mut input = paper_input(FIG3);
        input.goals[0] = "not,a,valid\nheader,row,x\n".into();
        assert!(MeshDomain.build(&input).is_err());
        let input = DomainInput::default();
        assert!(MeshDomain.build(&input).is_err(), "no services");
    }
}
