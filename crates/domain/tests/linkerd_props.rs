//! Property tests for the Linkerd domain's manifest layer: random
//! bundles survive an emit → parse round trip with identical *compiled
//! semantics* (selector spellings normalize, so raw struct equality is
//! the wrong oracle), and adversarial inputs — deep nesting, missing
//! fields, unknown kinds — fail with errors rather than panics.

use muppet_domain::linkerd::{
    emit_linkerd_bundle, parse_linkerd_manifests, Clients, LinkerdBundle, LinkerdVocab, Server,
    ServerAuthorization, SidecarPolicy,
};
use muppet_logic::PartyId;
use muppet_mesh::{MtlsMode, PeerAuthentication, Selector, Service};
use proptest::prelude::*;

const POOL: [u16; 4] = [8080, 8443, 5432, 9090];

/// An abstract bundle description small enough to generate with plain
/// tuple strategies; [`build_bundle`] turns it into a `LinkerdBundle`.
#[derive(Clone, Debug)]
struct BundleSpec {
    /// Per service: port mask over [`POOL`] and mesh membership.
    services: Vec<(u8, bool)>,
    /// Per `Server`: target service, selector kind, pool port index.
    servers: Vec<(usize, u8, usize)>,
    /// Per `ServerAuthorization`: server index and a clients mask
    /// (0 ⇒ unauthenticated, else service-account set).
    sazs: Vec<(usize, u8)>,
    /// Per `Sidecar`: selector kind, selector service, hosts mask.
    sidecars: Vec<(u8, usize, u8)>,
    /// Per `PeerAuthentication`: selector kind, selector service, strict?
    peers: Vec<(u8, usize, bool)>,
}

fn spec_strategy() -> impl Strategy<Value = BundleSpec> {
    (
        proptest::collection::vec((any::<u8>(), any::<bool>()), 2..=5),
        proptest::collection::vec((0..5usize, 0..3u8, 0..POOL.len()), 0..=3),
        proptest::collection::vec((0..3usize, any::<u8>()), 0..=3),
        proptest::collection::vec((0..3u8, 0..5usize, any::<u8>()), 0..=2),
        proptest::collection::vec((0..3u8, 0..5usize, any::<bool>()), 0..=2),
    )
        .prop_map(|(services, servers, sazs, sidecars, peers)| BundleSpec {
            services,
            servers,
            sazs,
            sidecars,
            peers,
        })
}

/// `Namespace` selectors are deliberately absent: they emit as a
/// `kubernetes.io/metadata.name` label match, which is how real
/// clusters spell them but is *not* semantics-preserving against
/// services that carry no such label — exactly the normalization the
/// compiled-semantics oracle would reject.
fn selector(kind: u8, svc: &str) -> Selector {
    match kind % 3 {
        0 => Selector::All,
        1 => Selector::Name(svc.to_string()),
        _ => Selector::label("app", svc),
    }
}

fn build_bundle(spec: &BundleSpec) -> LinkerdBundle {
    let mut bundle = LinkerdBundle::default();
    let names: Vec<String> = (0..spec.services.len()).map(|i| format!("s{i}")).collect();
    for (i, &(mask, meshed)) in spec.services.iter().enumerate() {
        let ports = POOL
            .iter()
            .enumerate()
            .filter(|(b, _)| (mask | 1) & (1 << b) != 0)
            .map(|(_, &p)| p);
        let mut svc = Service::new(&names[i], ports);
        if !meshed {
            svc = svc.without_sidecar();
        }
        bundle.mesh.add_service(svc);
    }
    let svc_at = |i: usize| &names[i % names.len()];
    // Servers must name ports inside the universe the services induce.
    let used: Vec<u16> = bundle
        .mesh
        .services()
        .iter()
        .flat_map(|s| s.ports.iter().copied())
        .collect();
    for (j, &(svc, sel, port)) in spec.servers.iter().enumerate() {
        bundle.servers.push(Server {
            name: format!("srv{j}"),
            selector: selector(sel, svc_at(svc)),
            port: used[port % used.len()],
        });
    }
    if !bundle.servers.is_empty() {
        for (j, &(srv, mask)) in spec.sazs.iter().enumerate() {
            let clients = if mask == 0 {
                Clients::Unauthenticated
            } else {
                Clients::Services(
                    names
                        .iter()
                        .enumerate()
                        .filter(|(b, _)| (mask | 1) & (1 << b) != 0)
                        .map(|(_, n)| n.clone())
                        .collect(),
                )
            };
            bundle.authorizations.push(ServerAuthorization {
                name: format!("saz{j}"),
                server: bundle.servers[srv % bundle.servers.len()].name.clone(),
                clients,
            });
        }
    }
    for (j, &(sel, svc, mask)) in spec.sidecars.iter().enumerate() {
        bundle.sidecars.push(SidecarPolicy {
            name: format!("egress{j}"),
            selector: selector(sel, svc_at(svc)),
            hosts: names
                .iter()
                .enumerate()
                .filter(|(b, _)| (mask | 1) & (1 << b) != 0)
                .map(|(_, n)| n.clone())
                .collect(),
        });
    }
    for (j, &(sel, svc, strict)) in spec.peers.iter().enumerate() {
        bundle.peer_auth.push(PeerAuthentication {
            name: format!("pa{j}"),
            selector: selector(sel, svc_at(svc)),
            mode: if strict {
                MtlsMode::Strict
            } else {
                MtlsMode::Permissive
            },
        });
    }
    bundle
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// emit ∘ parse preserves compiled semantics: the platform and
    /// linkerd configuration instances and the structure instance are
    /// identical before and after the round trip.
    #[test]
    fn emit_parse_round_trip_preserves_semantics(spec in spec_strategy()) {
        let bundle = build_bundle(&spec);
        let emitted = emit_linkerd_bundle(&bundle);
        let back = parse_linkerd_manifests(&emitted)
            .unwrap_or_else(|e| panic!("emitted bundle must re-parse: {e}\n{emitted}"));

        prop_assert_eq!(bundle.mesh.services().len(), back.mesh.services().len());
        let lv = LinkerdVocab::new(&bundle.mesh, [], PartyId(0), PartyId(1));
        prop_assert_eq!(
            lv.compile_platform(&bundle).unwrap(),
            lv.compile_platform(&back).unwrap(),
            "platform semantics drifted across the round trip"
        );
        prop_assert_eq!(
            lv.compile_linkerd(&bundle).unwrap(),
            lv.compile_linkerd(&back).unwrap(),
            "linkerd semantics drifted across the round trip"
        );
        prop_assert_eq!(
            lv.structure_instance(),
            LinkerdVocab::new(&back.mesh, [], PartyId(0), PartyId(1)).structure_instance(),
            "structure drifted across the round trip"
        );
    }
}

#[test]
fn deeply_nested_yaml_is_rejected_not_overflowed() {
    let mut doc = String::from("kind: Server\nmetadata:\n");
    let mut indent = String::from("  ");
    for _ in 0..200 {
        doc.push_str(&format!("{indent}a:\n"));
        indent.push_str("  ");
    }
    doc.push_str(&format!("{indent}b: 1\n"));
    let err = parse_linkerd_manifests(&doc).unwrap_err();
    assert!(err.contains("deeper"), "want a depth-limit error, got: {err}");
}

#[test]
fn malformed_documents_error_cleanly() {
    for (input, needle) in [
        ("kind: Frobnicator\nmetadata: {name: x}\n", "unsupported kind"),
        ("metadata: {name: x}\n", "without a kind"),
        ("kind: Server\nmetadata: {name: s}\nspec: {}\n", "port"),
        (
            "kind: ServerAuthorization\nmetadata: {name: a}\nspec: {}\n",
            "server",
        ),
    ] {
        let err = parse_linkerd_manifests(input).unwrap_err();
        assert!(err.contains(needle), "input {input:?}: got {err:?}");
    }
}
