//! Differential property tests for the SAT-kernel speed program.
//!
//! Two oracles guard the kernel upgrades:
//!
//! * **Target strategies agree** — core-guided (OLL) `solve_target`
//!   must return byte-identical outcomes and distances to the linear
//!   search baseline on random instances, sequentially and with a
//!   4-thread portfolio configured on the engine.
//! * **Inprocessing is invisible** — with the pass forced to fire
//!   (tiny interval), verdicts, canonical models and minimized cores
//!   must match a kernel running the flat pre-change configuration
//!   (no inprocessing, flat clause cap), both on random CNFs at the
//!   `muppet-sat` level and on warm `IncrementalQuery` stores solved
//!   over several rounds.

use muppet_logic::{Domain, Formula, Instance, PartialInstance, PartyId, Term, Universe, Vocabulary};
use muppet_sat::{mus, Budget, Lit, ReduceStrategy, SolveResult, Solver, Var};
use muppet_solver::{
    FormulaGroup, IncrementalQuery, Outcome, PortfolioConfig, TargetStrategy,
};
use proptest::prelude::*;

const N_ATOMS: usize = 4;

struct Fix {
    u: Universe,
    v: Vocabulary,
    allow: muppet_logic::RelId,
    atoms: Vec<muppet_logic::AtomId>,
}

fn fix() -> Fix {
    let mut u = Universe::new();
    let s = u.add_sort("S");
    let atoms = (0..N_ATOMS).map(|i| u.add_atom(s, format!("a{i}"))).collect();
    let mut v = Vocabulary::new();
    let allow = v.add_simple_rel("allow", vec![s, s], Domain::Party(PartyId(0)));
    Fix { u, v, allow, atoms }
}

fn engine(f: &Fix) -> IncrementalQuery {
    IncrementalQuery::new(
        &f.v,
        &f.u,
        &[f.allow],
        &PartialInstance::new(),
        Instance::new(),
    )
}

/// A random goal literal: tuple (i, j) asserted or negated.
type GoalLit = (usize, usize, bool);

fn pred(f: &Fix, i: usize, j: usize) -> Formula {
    Formula::pred(f.allow, [Term::Const(f.atoms[i]), Term::Const(f.atoms[j])])
}

fn clause_formula(f: &Fix, clause: &[GoalLit]) -> Formula {
    Formula::or(clause.iter().map(|&(i, j, pos)| {
        let p = pred(f, i, j);
        if pos {
            p
        } else {
            Formula::not(p)
        }
    }))
}

fn groups_of(f: &Fix, goals: &[Vec<GoalLit>]) -> Vec<FormulaGroup> {
    goals
        .iter()
        .enumerate()
        .map(|(n, clause)| FormulaGroup::new(format!("g{n}"), vec![clause_formula(f, clause)]))
        .collect()
}

fn target_of(f: &Fix, tuples: &[(usize, usize)]) -> Instance {
    let mut t = Instance::new();
    for &(i, j) in tuples {
        t.insert(f.allow, vec![f.atoms[i], f.atoms[j]]);
    }
    t
}

/// Everything observable about an outcome except the work counters.
fn sig(out: &Outcome) -> String {
    match out {
        Outcome::Sat { solution, .. } => format!("sat {solution:?}"),
        Outcome::Unsat { core, .. } => format!("unsat {core:?}"),
        Outcome::Unknown { phase, partial, .. } => format!("unknown {phase} {partial:?}"),
    }
}

fn goal_lit() -> impl Strategy<Value = GoalLit> {
    (0..N_ATOMS, 0..N_ATOMS, any::<bool>())
}

fn goal_clause() -> impl Strategy<Value = Vec<GoalLit>> {
    prop::collection::vec(goal_lit(), 1..=3)
}

fn goal_set() -> impl Strategy<Value = Vec<Vec<GoalLit>>> {
    prop::collection::vec(goal_clause(), 1..=6)
}

fn target_tuples() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..N_ATOMS, 0..N_ATOMS), 0..=6)
}

fn solve_target_with(
    f: &Fix,
    goals: &[Vec<GoalLit>],
    target: &Instance,
    strategy: TargetStrategy,
    threads: usize,
) -> (String, usize) {
    let mut q = engine(f);
    q.set_target_strategy(strategy);
    if threads > 1 {
        q.set_portfolio(Some(PortfolioConfig {
            threads,
            deterministic: true,
            ..PortfolioConfig::default()
        }));
    }
    let mut active = Vec::new();
    for g in groups_of(f, goals) {
        active.push(q.ensure_group(&g, &Budget::unlimited()).unwrap());
    }
    let (out, dist) = q.solve_target(&active, target, Budget::unlimited());
    (sig(&out), dist)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// OLL core-guided optimization and the linear-search baseline are
    /// observationally identical: same verdict, same canonical model,
    /// same minimized core, same optimal distance — with and without a
    /// portfolio configured on the engine.
    #[test]
    fn oll_matches_linear_search(goals in goal_set(), tuples in target_tuples()) {
        let f = fix();
        let target = target_of(&f, &tuples);
        let (lin_sig, lin_dist) =
            solve_target_with(&f, &goals, &target, TargetStrategy::Linear, 1);
        for threads in [1usize, 4] {
            let (oll_sig, oll_dist) =
                solve_target_with(&f, &goals, &target, TargetStrategy::CoreGuided, threads);
            prop_assert_eq!(&oll_sig, &lin_sig, "threads={}", threads);
            prop_assert_eq!(oll_dist, lin_dist, "threads={}", threads);
        }
    }

    /// Inprocessing (forced to fire with a 1-conflict interval) plus
    /// the tiered clause DB preserve the verdict of the flat,
    /// no-inprocessing baseline kernel on random 3-CNFs, and produce
    /// the identical deterministic minimized core under assumptions.
    #[test]
    fn inprocessing_preserves_random_cnf_verdicts(
        nvars in 8usize..24,
        seed_clauses in prop::collection::vec(
            prop::collection::vec((0u32..24, any::<bool>()), 3), 20..120),
        assumed in prop::collection::vec((0u32..24, any::<bool>()), 0..4),
    ) {
        let build = |tiered: bool| {
            let mut s = Solver::new();
            if tiered {
                s.set_inprocessing(true);
                s.set_inprocess_interval(1);
                s.set_reduce_strategy(ReduceStrategy::Tiered);
                s.set_max_learnt(30); // keep the tier machinery busy
            } else {
                s.set_inprocessing(false);
                s.set_reduce_strategy(ReduceStrategy::Flat);
            }
            let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
            for c in &seed_clauses {
                let lits: Vec<Lit> = c
                    .iter()
                    .map(|&(v, pos)| Lit::new(vars[v as usize % nvars], pos))
                    .collect();
                s.add_clause(lits);
            }
            let assumptions: Vec<Lit> = assumed
                .iter()
                .map(|&(v, pos)| Lit::new(vars[v as usize % nvars], pos))
                .collect();
            (s, assumptions)
        };
        let (mut base, assms) = build(false);
        let (mut tiered, assms2) = build(true);
        prop_assert_eq!(&assms, &assms2);
        let r1 = base.solve_with_assumptions(&assms);
        let r2 = tiered.solve_with_assumptions(&assms);
        prop_assert_eq!(r1.is_sat(), r2.is_sat(), "verdicts diverged");
        prop_assert_eq!(r1.is_unsat(), r2.is_unsat());
        if r1.is_unsat() && !assms.is_empty() {
            // Ordered deletion is deterministic and semantic, so the
            // minimized cores must be byte-identical too.
            let c1 = match mus::shrink_core_ordered(&mut base, &assms) {
                mus::ShrinkResult::Minimal(c) => c,
                other => panic!("baseline shrink: {other:?}"),
            };
            let c2 = match mus::shrink_core_ordered(&mut tiered, &assms) {
                mus::ShrinkResult::Minimal(c) => c,
                other => panic!("tiered shrink: {other:?}"),
            };
            prop_assert_eq!(c1, c2, "minimized cores diverged");
        }
    }

    /// On a warm engine solved over several rounds (so learnt state,
    /// tier churn and inprocessing accumulate across solves), verdicts,
    /// canonical models and minimized cores match an engine with the
    /// kernel upgrades disabled.
    #[test]
    fn inprocessing_is_invisible_on_warm_stores(
        rounds in prop::collection::vec(goal_set(), 2..=3),
    ) {
        let f = fix();
        let mut upgraded = engine(&f);
        upgraded.set_inprocessing(true).set_inprocess_interval(1);
        let mut baseline = engine(&f);
        baseline.set_inprocessing(false);
        for goals in &rounds {
            let mut a1 = Vec::new();
            let mut a2 = Vec::new();
            for g in groups_of(&f, goals) {
                a1.push(upgraded.ensure_group(&g, &Budget::unlimited()).unwrap());
                a2.push(baseline.ensure_group(&g, &Budget::unlimited()).unwrap());
            }
            let o1 = upgraded.solve(&a1, Budget::unlimited());
            let o2 = baseline.solve(&a2, Budget::unlimited());
            prop_assert_eq!(sig(&o1), sig(&o2), "warm round diverged");
        }
    }
}

/// Sanity anchor for the proptests: the pigeonhole family must stay
/// UNSAT under the upgraded kernel with aggressive settings, and reach
/// the same verdict as the baseline. (Deterministic, not property
/// based — a canary for the generators above ever weakening.)
#[test]
fn pigeonhole_verdict_survives_aggressive_kernel_settings() {
    let php = |s: &mut Solver, holes: usize| {
        let pigeons = holes + 1;
        let vars: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in &vars {
            s.add_clause(p.iter().map(|&v| Lit::pos(v)).collect::<Vec<_>>());
        }
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                for (&a, &b) in vars[p1].iter().zip(&vars[p2]) {
                    s.add_clause([Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
    };
    let mut s = Solver::new();
    s.set_inprocess_interval(50);
    s.set_max_learnt(40);
    php(&mut s, 7);
    assert!(matches!(s.solve(), SolveResult::Unsat(_)));
    let mut flat = Solver::new();
    flat.set_inprocessing(false);
    flat.set_reduce_strategy(ReduceStrategy::Flat);
    php(&mut flat, 7);
    assert!(matches!(flat.solve(), SolveResult::Unsat(_)));
}
