//! Grounding: bounded FOL → negation-normal propositional structure.

use std::collections::BTreeMap;

use muppet_logic::{AtomId, Formula, Instance, Term, Universe, VarId};
use muppet_sat::Lit;

use crate::varmap::{TupleState, VarMap};

/// A ground, negation-normal propositional expression. Negation exists
/// only on SAT literals (and is absorbed into them), which is what the
/// one-sided Tseitin encoding requires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GExpr {
    /// Constant.
    Const(bool),
    /// A SAT literal (tuple variable, possibly negated).
    Lit(Lit),
    /// Conjunction (empty = true).
    And(Vec<GExpr>),
    /// Disjunction (empty = false).
    Or(Vec<GExpr>),
}

impl GExpr {
    fn and(parts: Vec<GExpr>) -> GExpr {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                GExpr::Const(true) => {}
                GExpr::Const(false) => return GExpr::Const(false),
                GExpr::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => GExpr::Const(true),
            1 => out.pop().expect("len checked"),
            _ => GExpr::And(out),
        }
    }

    fn or(parts: Vec<GExpr>) -> GExpr {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                GExpr::Const(false) => {}
                GExpr::Const(true) => return GExpr::Const(true),
                GExpr::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => GExpr::Const(false),
            1 => out.pop().expect("len checked"),
            _ => GExpr::Or(out),
        }
    }

    /// Node count (testing/diagnostics).
    pub fn size(&self) -> usize {
        match self {
            GExpr::Const(_) | GExpr::Lit(_) => 1,
            GExpr::And(ps) | GExpr::Or(ps) => 1 + ps.iter().map(GExpr::size).sum::<usize>(),
        }
    }
}

/// Errors during grounding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroundError {
    /// The formula has a free variable.
    UnboundVar(VarId),
}

impl std::fmt::Display for GroundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroundError::UnboundVar(v) => write!(f, "unbound variable {v:?} while grounding"),
        }
    }
}

impl std::error::Error for GroundError {}

/// Ground a closed formula.
///
/// * Atoms over free relations (per `varmap`) become literals or pinned
///   constants.
/// * Atoms over all other relations are resolved against `fixed`
///   (closed-world: absent relation = empty).
/// * Quantifiers expand over the universe; `positive` tracks polarity so
///   the output is in negation normal form.
pub fn ground(
    formula: &Formula,
    varmap: &VarMap,
    fixed: &Instance,
    universe: &Universe,
) -> Result<GExpr, GroundError> {
    let mut env = BTreeMap::new();
    go(formula, varmap, fixed, universe, &mut env, true)
}

fn resolve(t: Term, env: &BTreeMap<VarId, AtomId>) -> Result<AtomId, GroundError> {
    match t {
        Term::Const(a) => Ok(a),
        Term::Var(v) => env.get(&v).copied().ok_or(GroundError::UnboundVar(v)),
    }
}

fn go(
    f: &Formula,
    varmap: &VarMap,
    fixed: &Instance,
    universe: &Universe,
    env: &mut BTreeMap<VarId, AtomId>,
    positive: bool,
) -> Result<GExpr, GroundError> {
    Ok(match f {
        Formula::True => GExpr::Const(positive),
        Formula::False => GExpr::Const(!positive),
        Formula::Pred(rel, args) => {
            let mut tuple = Vec::with_capacity(args.len());
            for &t in args {
                tuple.push(resolve(t, env)?);
            }
            let truth = match varmap.state(*rel, &tuple) {
                Some(TupleState::True) => GExpr::Const(true),
                Some(TupleState::False) => GExpr::Const(false),
                Some(TupleState::Free(v)) => GExpr::Lit(Lit::pos(v)),
                None => GExpr::Const(fixed.holds(*rel, &tuple)),
            };
            negate_if(truth, !positive)
        }
        Formula::Eq(a, b) => {
            let av = resolve(*a, env)?;
            let bv = resolve(*b, env)?;
            GExpr::Const((av == bv) == positive)
        }
        Formula::Not(g) => go(g, varmap, fixed, universe, env, !positive)?,
        Formula::And(fs) => {
            let parts = fs
                .iter()
                .map(|g| go(g, varmap, fixed, universe, env, positive))
                .collect::<Result<Vec<_>, _>>()?;
            if positive {
                GExpr::and(parts)
            } else {
                GExpr::or(parts)
            }
        }
        Formula::Or(fs) => {
            let parts = fs
                .iter()
                .map(|g| go(g, varmap, fixed, universe, env, positive))
                .collect::<Result<Vec<_>, _>>()?;
            if positive {
                GExpr::or(parts)
            } else {
                GExpr::and(parts)
            }
        }
        Formula::Implies(a, b) => {
            // a ⇒ b ≡ ¬a ∨ b
            let na = go(a, varmap, fixed, universe, env, !positive)?;
            let pb = go(b, varmap, fixed, universe, env, positive)?;
            if positive {
                GExpr::or(vec![na, pb])
            } else {
                // ¬(a ⇒ b) ≡ a ∧ ¬b; note `na` above was grounded with
                // polarity `!positive == true`, i.e. it is `a`; and `pb`
                // with polarity false, i.e. `¬b`.
                GExpr::and(vec![na, pb])
            }
        }
        Formula::Iff(a, b) => {
            // a ⇔ b ≡ (a ⇒ b) ∧ (b ⇒ a); under negation:
            // ¬(a ⇔ b) ≡ (a ∨ b) ∧ (¬a ∨ ¬b).
            let pa = go(a, varmap, fixed, universe, env, true)?;
            let na = go(a, varmap, fixed, universe, env, false)?;
            let pb = go(b, varmap, fixed, universe, env, true)?;
            let nb = go(b, varmap, fixed, universe, env, false)?;
            if positive {
                GExpr::and(vec![
                    GExpr::or(vec![na.clone(), pb.clone()]),
                    GExpr::or(vec![nb, pa]),
                ])
            } else {
                GExpr::and(vec![GExpr::or(vec![pa, pb]), GExpr::or(vec![na, nb])])
            }
        }
        Formula::Forall(v, sort, body) => {
            let saved = env.get(v).copied();
            let mut parts = Vec::new();
            for &atom in universe.atoms_of(*sort) {
                env.insert(*v, atom);
                parts.push(go(body, varmap, fixed, universe, env, positive)?);
            }
            match saved {
                Some(a) => {
                    env.insert(*v, a);
                }
                None => {
                    env.remove(v);
                }
            }
            if positive {
                GExpr::and(parts)
            } else {
                GExpr::or(parts)
            }
        }
        Formula::Exists(v, sort, body) => {
            let saved = env.get(v).copied();
            let mut parts = Vec::new();
            for &atom in universe.atoms_of(*sort) {
                env.insert(*v, atom);
                parts.push(go(body, varmap, fixed, universe, env, positive)?);
            }
            match saved {
                Some(a) => {
                    env.insert(*v, a);
                }
                None => {
                    env.remove(v);
                }
            }
            if positive {
                GExpr::or(parts)
            } else {
                GExpr::and(parts)
            }
        }
    })
}

fn negate_if(e: GExpr, negate: bool) -> GExpr {
    if !negate {
        return e;
    }
    match e {
        GExpr::Const(b) => GExpr::Const(!b),
        GExpr::Lit(l) => GExpr::Lit(!l),
        // Atoms only reach here, but stay total:
        GExpr::And(_) | GExpr::Or(_) => unreachable!("negate_if applied to non-atomic GExpr"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_logic::{Domain, PartialInstance, PartyId, Vocabulary};
    use muppet_sat::Solver;

    struct Fix {
        u: Universe,
        v: Vocabulary,
        s: muppet_logic::SortId,
        free: muppet_logic::RelId,
        fixed_rel: muppet_logic::RelId,
        atoms: Vec<AtomId>,
    }

    fn fix() -> Fix {
        let mut u = Universe::new();
        let s = u.add_sort("S");
        let atoms = vec![u.add_atom(s, "a"), u.add_atom(s, "b")];
        let mut v = Vocabulary::new();
        let free = v.add_simple_rel("free", vec![s], Domain::Party(PartyId(0)));
        let fixed_rel = v.add_simple_rel("fixed", vec![s], Domain::Structure);
        Fix { u, v, s, free, fixed_rel, atoms }
    }

    #[test]
    fn fixed_atoms_fold_to_constants() {
        let f = fix();
        let mut solver = Solver::new();
        let vm = VarMap::build(&f.v, &f.u, &[f.free], &PartialInstance::new(), &mut solver);
        let mut fixed = Instance::new();
        fixed.insert(f.fixed_rel, vec![f.atoms[0]]);
        let g_true = Formula::pred(f.fixed_rel, [Term::Const(f.atoms[0])]);
        let g_false = Formula::pred(f.fixed_rel, [Term::Const(f.atoms[1])]);
        assert_eq!(ground(&g_true, &vm, &fixed, &f.u).unwrap(), GExpr::Const(true));
        assert_eq!(ground(&g_false, &vm, &fixed, &f.u).unwrap(), GExpr::Const(false));
        assert_eq!(
            ground(&Formula::not(g_true), &vm, &fixed, &f.u).unwrap(),
            GExpr::Const(false)
        );
    }

    #[test]
    fn free_atoms_become_literals_with_polarity() {
        let f = fix();
        let mut solver = Solver::new();
        let vm = VarMap::build(&f.v, &f.u, &[f.free], &PartialInstance::new(), &mut solver);
        let fixed = Instance::new();
        let g = Formula::pred(f.free, [Term::Const(f.atoms[0])]);
        let pos = ground(&g, &vm, &fixed, &f.u).unwrap();
        let neg = ground(&Formula::not(g), &vm, &fixed, &f.u).unwrap();
        match (pos, neg) {
            (GExpr::Lit(p), GExpr::Lit(n)) => assert_eq!(!p, n),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quantifiers_expand_with_nnf_polarity() {
        let mut f = fix();
        let mut solver = Solver::new();
        let vm = VarMap::build(&f.v, &f.u, &[f.free], &PartialInstance::new(), &mut solver);
        let fixed = Instance::new();
        let x = f.v.fresh_var();
        // ¬∃x. free(x)  ≡  ∧_atoms ¬free(atom)
        let g = Formula::not(Formula::exists(
            x,
            f.s,
            Formula::pred(f.free, [Term::Var(x)]),
        ));
        match ground(&g, &vm, &fixed, &f.u).unwrap() {
            GExpr::And(parts) => {
                assert_eq!(parts.len(), 2);
                for p in parts {
                    assert!(matches!(p, GExpr::Lit(l) if !l.is_positive()));
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn implies_and_iff_polarity() {
        let f = fix();
        let mut solver = Solver::new();
        let vm = VarMap::build(&f.v, &f.u, &[f.free], &PartialInstance::new(), &mut solver);
        let fixed = Instance::new();
        let a = Formula::pred(f.free, [Term::Const(f.atoms[0])]);
        let b = Formula::pred(f.free, [Term::Const(f.atoms[1])]);
        // a ⇒ a is a tautology only semantically; structurally it's
        // (¬a ∨ a) which the or-builder doesn't collapse — check the
        // constant-folding cases instead.
        let g = Formula::implies(Formula::False, a.clone());
        assert_eq!(ground(&g, &vm, &fixed, &f.u).unwrap(), GExpr::Const(true));
        let g = Formula::not(Formula::implies(a.clone(), Formula::False));
        // ¬(a ⇒ ⊥) ≡ a
        assert!(matches!(
            ground(&g, &vm, &fixed, &f.u).unwrap(),
            GExpr::Lit(l) if l.is_positive()
        ));
        let g = Formula::iff(a, b);
        match ground(&g, &vm, &fixed, &f.u).unwrap() {
            GExpr::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_folds() {
        let f = fix();
        let mut solver = Solver::new();
        let vm = VarMap::build(&f.v, &f.u, &[f.free], &PartialInstance::new(), &mut solver);
        let fixed = Instance::new();
        let eq = Formula::Eq(Term::Const(f.atoms[0]), Term::Const(f.atoms[0]));
        let ne = Formula::Eq(Term::Const(f.atoms[0]), Term::Const(f.atoms[1]));
        assert_eq!(ground(&eq, &vm, &fixed, &f.u).unwrap(), GExpr::Const(true));
        assert_eq!(ground(&ne, &vm, &fixed, &f.u).unwrap(), GExpr::Const(false));
    }

    #[test]
    fn open_formula_is_an_error() {
        let mut f = fix();
        let mut solver = Solver::new();
        let vm = VarMap::build(&f.v, &f.u, &[f.free], &PartialInstance::new(), &mut solver);
        let x = f.v.fresh_var();
        let g = Formula::pred(f.free, [Term::Var(x)]);
        assert_eq!(
            ground(&g, &vm, &Instance::new(), &f.u),
            Err(GroundError::UnboundVar(x))
        );
    }
}
