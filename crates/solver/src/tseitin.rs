//! One-sided Tseitin (Plaisted–Greenbaum) CNF conversion.
//!
//! Grounding produces negation normal form, so every subexpression occurs
//! with positive polarity only. One implication direction per gate is then
//! sound and complete for satisfiability, halving clause count relative to
//! full Tseitin.

use muppet_sat::{Lit, Solver};

use crate::ground::GExpr;

/// Encode `expr` and return a literal equivalent (one-sided: literal ⇒
/// expression) to it. Clauses are added to `solver`.
///
/// The typical use is guarding a formula group with a selector `s`:
/// encode the group to literal `l`, then add the clause `¬s ∨ l`, and
/// solve with `s` among the assumptions.
pub fn encode(expr: &GExpr, solver: &mut Solver) -> Lit {
    match expr {
        GExpr::Const(b) => constant_lit(solver, *b),
        GExpr::Lit(l) => *l,
        GExpr::And(parts) => {
            let lits: Vec<Lit> = parts.iter().map(|p| encode(p, solver)).collect();
            let aux = Lit::pos(solver.new_var());
            // aux ⇒ each part.
            for l in lits {
                solver.add_clause([!aux, l]);
            }
            aux
        }
        GExpr::Or(parts) => {
            let lits: Vec<Lit> = parts.iter().map(|p| encode(p, solver)).collect();
            let aux = Lit::pos(solver.new_var());
            // aux ⇒ (l₁ ∨ … ∨ lₙ).
            let mut clause = Vec::with_capacity(lits.len() + 1);
            clause.push(!aux);
            clause.extend(lits);
            solver.add_clause(clause);
            aux
        }
    }
}

/// A literal that is constrained to the given constant value.
fn constant_lit(solver: &mut Solver, value: bool) -> Lit {
    let l = Lit::pos(solver.new_var());
    solver.add_clause([if value { l } else { !l }]);
    l
}

/// Encode `expr` as a *hard* top-level constraint (asserted, not guarded).
pub fn assert_true(expr: &GExpr, solver: &mut Solver) {
    match expr {
        GExpr::Const(true) => {}
        GExpr::Const(false) => {
            // Assert an empty clause via a contradiction.
            let v = solver.new_var();
            solver.add_clause([Lit::pos(v)]);
            solver.add_clause([Lit::neg(v)]);
        }
        GExpr::Lit(l) => {
            solver.add_clause([*l]);
        }
        GExpr::And(parts) => {
            for p in parts {
                assert_true(p, solver);
            }
        }
        GExpr::Or(parts) => {
            let lits: Vec<Lit> = parts.iter().map(|p| encode(p, solver)).collect();
            solver.add_clause(lits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_sat::{SolveResult, Var};

    fn lits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(solver.new_var())).collect()
    }

    #[test]
    fn assert_and_forces_all() {
        let mut s = Solver::new();
        let ls = lits(&mut s, 2);
        let e = GExpr::And(vec![GExpr::Lit(ls[0]), GExpr::Lit(!ls[1])]);
        assert_true(&e, &mut s);
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(m.lit_value(ls[0]));
                assert!(!m.lit_value(ls[1]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn assert_or_requires_one() {
        let mut s = Solver::new();
        let ls = lits(&mut s, 2);
        assert_true(
            &GExpr::Or(vec![GExpr::Lit(ls[0]), GExpr::Lit(ls[1])]),
            &mut s,
        );
        s.add_clause([!ls[0]]);
        s.add_clause([!ls[1]]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn assert_false_makes_unsat() {
        let mut s = Solver::new();
        assert_true(&GExpr::Const(false), &mut s);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn guarded_groups_are_independent() {
        let mut s = Solver::new();
        let x = Lit::pos(s.new_var());
        // Group 1 says x; group 2 says ¬x.
        let g1 = encode(&GExpr::Lit(x), &mut s);
        let g2 = encode(&GExpr::Lit(!x), &mut s);
        let s1 = Lit::pos(s.new_var());
        let s2 = Lit::pos(s.new_var());
        s.add_clause([!s1, g1]);
        s.add_clause([!s2, g2]);
        assert!(s.solve_with_assumptions(&[s1]).is_sat());
        assert!(s.solve_with_assumptions(&[s2]).is_sat());
        match s.solve_with_assumptions(&[s1, s2]) {
            SolveResult::Unsat(core) => {
                assert!(core.contains(&s1) && core.contains(&s2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_structure_is_satisfiable_correctly() {
        // (a ∧ (b ∨ c)) guarded: model must satisfy it when selected.
        let mut s = Solver::new();
        let vs: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        let (a, b, c) = (Lit::pos(vs[0]), Lit::pos(vs[1]), Lit::pos(vs[2]));
        let e = GExpr::And(vec![
            GExpr::Lit(a),
            GExpr::Or(vec![GExpr::Lit(b), GExpr::Lit(c)]),
        ]);
        let sel = Lit::pos(s.new_var());
        let enc = encode(&e, &mut s);
        s.add_clause([!sel, enc]);
        s.add_clause([!b]); // forbid b: c must carry the Or
        match s.solve_with_assumptions(&[sel]) {
            SolveResult::Sat(m) => {
                assert!(m.lit_value(a));
                assert!(!m.lit_value(b));
                assert!(m.lit_value(c));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn const_encodings() {
        let mut s = Solver::new();
        let t = encode(&GExpr::Const(true), &mut s);
        let f = encode(&GExpr::Const(false), &mut s);
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(m.lit_value(t));
                assert!(!m.lit_value(f));
            }
            other => panic!("{other:?}"),
        }
    }
}
