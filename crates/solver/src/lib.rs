//! # muppet-solver — a bounded relational model finder
//!
//! The paper's prototype delegates its logic queries to the Pardinus
//! target-oriented model finder, an extension of Kodkod. This crate is our
//! from-scratch equivalent, sitting between `muppet-logic` (formulas,
//! instances, bounds) and `muppet-sat` (the CDCL solver):
//!
//! * **Grounding** ([`ground()`]): bounded first-order formulas are expanded
//!   over the finite universe into negation-normal propositional
//!   structure, constant-folding fixed relations on the way.
//! * **Variable mapping** ([`VarMap`]): each undetermined tuple of a
//!   *free* relation becomes one SAT variable; bounds from a
//!   [`muppet_logic::PartialInstance`] pin tuples true (lower bound) or
//!   false (outside the upper bound) — exactly Kodkod's partial-instance
//!   mechanism, which is how `C??` holes and soft settings reach the
//!   solver.
//! * **CNF conversion** ([`tseitin`]): one-sided (Plaisted–Greenbaum
//!   style) Tseitin encoding, sound and complete for NNF inputs.
//! * **Named groups and cores**: every formula group is guarded by a
//!   selector literal; UNSAT answers come back as a *minimal* set of group
//!   names (via `muppet-sat`'s MUS extraction), giving the paper's "unsat
//!   core with blame information".
//! * **Target-oriented solving** ([`Query::solve_target`]): find the model
//!   *closest to a target instance* (minimal symmetric-difference),
//!   implemented as MaxSAT linear search over a [`totalizer`] cardinality
//!   encoding. This is Pardinus's headline feature and powers Muppet's
//!   minimal-edit counter-offers (Fig. 8).
//! * **Model enumeration** ([`Query::enumerate`]): iterate distinct models
//!   via blocking clauses; used by tests to verify envelope
//!   necessity/sufficiency by exhaustion on small universes.
//! * **Symmetry breaking** ([`symmetry`], opt-in via
//!   [`Query::set_symmetry_breaking`]): Kodkod's interchangeable-atom
//!   optimization — lex-leader constraints over atoms the problem cannot
//!   tell apart (spare ports). Only legal for plain satisfiability
//!   queries; target-oriented and enumeration queries keep the full
//!   model space.
//! * **One incremental engine** ([`IncrementalQuery`], DESIGN.md §13):
//!   every path above runs on a single warm compilation engine —
//!   selector-gated CNF groups, a content-fingerprinted subformula
//!   ground/encode cache, persistent learned clauses — with [`Query`]
//!   as the one-shot facade and [`PreparedQuery`] as the warm alias.
//!   Models and cores are canonicalized so warm, cold and portfolio
//!   runs answer byte-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(any(test, feature = "fault-inject"))]
pub mod fault;
pub mod ground;
pub mod incremental;
pub mod prepared;
pub mod query;
pub mod symmetry;
pub mod totalizer;
pub mod tseitin;
pub mod varmap;

pub use incremental::{IncrementalQuery, TargetStrategy, DEFAULT_CANONICAL_CAP};
pub use muppet_portfolio::{default_threads, PortfolioConfig, PortfolioSummary};
pub use muppet_sat::{Budget, CancelToken, Exhaustion, ReduceStrategy, RetryPolicy};
pub use prepared::{GroupId, PrepareError, PreparedQuery, PreparedStore};
pub use query::{FormulaGroup, Outcome, PartialResult, Phase, Query, QueryError, QueryStats};
pub use ground::{ground, GExpr};
pub use varmap::VarMap;
