//! Totalizer cardinality encoding.
//!
//! Target-oriented solving needs "at most k of these n relaxation
//! variables are true" as a CNF constraint whose bound can be *tightened
//! incrementally via assumptions*. The totalizer (Bailleux & Boufkhad)
//! builds a balanced tree of unary counters: output literal `o_j` is
//! implied whenever ≥ j inputs are true, so assuming `¬o_{k+1}` enforces
//! `≤ k` without re-encoding.

use muppet_sat::{Lit, Solver};

/// A built totalizer over a fixed set of input literals.
#[derive(Debug)]
pub struct Totalizer {
    /// `outputs[j]` is true in any model where at least `j+1` inputs are
    /// true (one-sided: inputs drive outputs, sufficient for upper
    /// bounds).
    outputs: Vec<Lit>,
}

impl Totalizer {
    /// Encode a totalizer over `inputs`, adding clauses to `solver`.
    pub fn build(inputs: &[Lit], solver: &mut Solver) -> Totalizer {
        let outputs = tree(inputs, solver);
        Totalizer { outputs }
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// `true` when built over zero inputs.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Assumption literals enforcing "at most `k` inputs true".
    ///
    /// Assume the negation of every output with index ≥ k. For `k >= n`
    /// this is empty (no constraint).
    pub fn at_most(&self, k: usize) -> Vec<Lit> {
        self.outputs.iter().skip(k).map(|&o| !o).collect()
    }

    /// The `j`-th unary counter output: a literal true in any model
    /// where at least `j+1` inputs are true. `None` for `j >= n`.
    ///
    /// The one-sided tree forces outputs *monotonically*: when `m`
    /// inputs are true every output `o_0 ..= o_{m-1}` is implied, so a
    /// core-guided loop can assume the single literal `¬o_b` to enforce
    /// "at most `b` inputs true" and read the violated bound directly
    /// off the core.
    pub fn output(&self, j: usize) -> Option<Lit> {
        self.outputs.get(j).copied()
    }
}

/// Recursively build the counter tree; returns the unary count outputs of
/// the subtree (length = number of inputs in the subtree).
fn tree(inputs: &[Lit], solver: &mut Solver) -> Vec<Lit> {
    match inputs.len() {
        0 => Vec::new(),
        1 => vec![inputs[0]],
        n => {
            let mid = n / 2;
            let left = tree(&inputs[..mid], solver);
            let right = tree(&inputs[mid..], solver);
            merge(&left, &right, solver)
        }
    }
}

/// Merge two unary counters: `out[k]` becomes true whenever
/// `left ≥ i` and `right ≥ j` with `i + j = k + 1`.
fn merge(left: &[Lit], right: &[Lit], solver: &mut Solver) -> Vec<Lit> {
    let n = left.len() + right.len();
    let out: Vec<Lit> = (0..n).map(|_| Lit::pos(solver.new_var())).collect();
    // left[i-1] ∧ right[j-1] ⇒ out[i+j-1]  (counts i from left, j from right)
    for i in 0..=left.len() {
        for j in 0..=right.len() {
            if i + j == 0 {
                continue;
            }
            let o = out[i + j - 1];
            let mut clause = Vec::with_capacity(3);
            if i > 0 {
                clause.push(!left[i - 1]);
            }
            if j > 0 {
                clause.push(!right[j - 1]);
            }
            clause.push(o);
            solver.add_clause(clause);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_sat::{SolveResult, Var};

    fn count_true(model: &muppet_sat::Model, vars: &[Var]) -> usize {
        vars.iter().filter(|&&v| model.value(v)).count()
    }

    #[test]
    fn at_most_k_is_enforced() {
        for n in 1..=6usize {
            for k in 0..=n {
                let mut s = Solver::new();
                let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
                let inputs: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
                let tot = Totalizer::build(&inputs, &mut s);
                // Also force at least k true (so we test tightness): pick
                // the first k inputs.
                for &v in vars.iter().take(k) {
                    s.add_clause([Lit::pos(v)]);
                }
                match s.solve_with_assumptions(&tot.at_most(k)) {
                    SolveResult::Sat(m) => {
                        assert!(count_true(&m, &vars) <= k, "n={n} k={k}");
                    }
                    other => panic!("n={n} k={k}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn at_most_k_minus_one_fails_when_k_forced() {
        for n in 2..=6usize {
            for k in 1..=n {
                let mut s = Solver::new();
                let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
                let inputs: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
                let tot = Totalizer::build(&inputs, &mut s);
                for &v in vars.iter().take(k) {
                    s.add_clause([Lit::pos(v)]);
                }
                assert!(
                    s.solve_with_assumptions(&tot.at_most(k - 1)).is_unsat(),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn bound_can_be_relaxed_incrementally() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        let inputs: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        let tot = Totalizer::build(&inputs, &mut s);
        // Force exactly 2 true.
        s.add_clause([Lit::pos(vars[0])]);
        s.add_clause([Lit::pos(vars[1])]);
        assert!(s.solve_with_assumptions(&tot.at_most(0)).is_unsat());
        assert!(s.solve_with_assumptions(&tot.at_most(1)).is_unsat());
        assert!(s.solve_with_assumptions(&tot.at_most(2)).is_sat());
        assert!(s.solve_with_assumptions(&tot.at_most(3)).is_sat());
        assert!(s.solve_with_assumptions(&tot.at_most(99)).is_sat());
    }

    #[test]
    fn empty_totalizer() {
        let mut s = Solver::new();
        let tot = Totalizer::build(&[], &mut s);
        assert!(tot.is_empty());
        assert!(tot.at_most(0).is_empty());
        assert!(s.solve().is_sat());
    }
}
