//! Mapping between relational tuples and SAT variables.

use std::collections::{BTreeMap, BTreeSet};

use muppet_logic::{AtomId, Instance, PartialInstance, RelId, Universe, Vocabulary};
use muppet_sat::{Model, Solver, Var};

/// The truth status of one ground tuple after bounds are applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TupleState {
    /// Pinned true (lower bound, or fixed instance contains it).
    True,
    /// Pinned false (outside the upper bound, or fixed instance lacks it).
    False,
    /// Undetermined: decided by the SAT solver via this variable.
    Free(Var),
}

/// Bidirectional map between the ground atoms of *free* relations and SAT
/// variables, with fixed relations resolved against a concrete instance.
///
/// This mirrors Kodkod's translation of relation bounds: tuples in the
/// lower bound become constants-true, tuples excluded by the upper bound
/// constants-false, and the remainder become propositional variables.
///
/// Bounded relations are stored *sparsely*: only the tuples inside the
/// upper bound (plus any required tuples) get an entry, and every other
/// tuple is implicitly pinned false. An unbounded free relation still
/// materializes its full tuple product. This is what keeps thousand-
/// service mesh queries tractable — a ternary `Svc × Svc × Port` relation
/// bounded to an empty upper bound costs nothing instead of |Svc|²·|Port|
/// map entries.
#[derive(Debug)]
pub struct VarMap {
    free_rels: Vec<RelId>,
    /// Per-relation tuple states. Sparse for bounded relations.
    states: BTreeMap<RelId, BTreeMap<Vec<AtomId>, TupleState>>,
    /// Relations stored sparsely (absent tuple ⇒ pinned false).
    sparse: BTreeSet<RelId>,
    by_var: BTreeMap<Var, (RelId, Vec<AtomId>)>,
}

impl VarMap {
    /// Build the map.
    ///
    /// * `free_rels` — the relations the solver may decide;
    /// * `bounds` — partial-instance bounds over (a subset of) the free
    ///   relations. A free relation not bounded at all ranges over its
    ///   full tuple product; a bounded one only over its upper bound.
    /// * `fixed` — concrete values for every *other* relation mentioned by
    ///   the query formulas.
    ///
    /// Fresh SAT variables are allocated in `solver`.
    pub fn build(
        vocab: &Vocabulary,
        universe: &Universe,
        free_rels: &[RelId],
        bounds: &PartialInstance,
        solver: &mut Solver,
    ) -> VarMap {
        let mut states: BTreeMap<RelId, BTreeMap<Vec<AtomId>, TupleState>> = BTreeMap::new();
        let mut sparse = BTreeSet::new();
        let mut by_var = BTreeMap::new();
        for &rel in free_rels {
            let per = states.entry(rel).or_default();
            if bounds.is_bounded(rel) {
                // Sparse: enumerate the bound support only. `require`
                // also enters the upper bound, so the upper set covers
                // the lower; iterate both anyway to stay correct for
                // hand-built bounds.
                sparse.insert(rel);
                for tuple in bounds.upper(rel).chain(bounds.lower(rel)) {
                    if per.contains_key(tuple.as_slice()) {
                        continue;
                    }
                    let state = if bounds.is_required(rel, tuple) {
                        TupleState::True
                    } else {
                        let v = solver.new_var();
                        by_var.insert(v, (rel, tuple.clone()));
                        TupleState::Free(v)
                    };
                    per.insert(tuple.clone(), state);
                }
            } else {
                let decl = vocab.rel(rel);
                for tuple in tuple_product(universe, &decl.arg_sorts) {
                    let v = solver.new_var();
                    by_var.insert(v, (rel, tuple.clone()));
                    per.insert(tuple, TupleState::Free(v));
                }
            }
        }
        VarMap {
            free_rels: free_rels.to_vec(),
            states,
            sparse,
            by_var,
        }
    }

    /// The state of a ground tuple of a *free* relation. `None` when the
    /// relation is not free (resolve against the fixed instance instead).
    /// For a bounded (sparse) relation, tuples outside the stored support
    /// are pinned false.
    pub(crate) fn state(&self, rel: RelId, tuple: &[AtomId]) -> Option<TupleState> {
        let per = self.states.get(&rel)?;
        match per.get(tuple) {
            Some(s) => Some(*s),
            None if self.sparse.contains(&rel) => Some(TupleState::False),
            None => None,
        }
    }

    /// Iterate the stored states of one relation. For sparse relations
    /// this is the bound support; every absent tuple is pinned false.
    pub(crate) fn rel_states(&self, rel: RelId) -> impl Iterator<Item = (&[AtomId], TupleState)> {
        self.states
            .get(&rel)
            .into_iter()
            .flat_map(|per| per.iter().map(|(t, s)| (t.as_slice(), *s)))
    }

    /// Is `rel` one of the free relations?
    pub fn is_free(&self, rel: RelId) -> bool {
        self.free_rels.contains(&rel)
    }

    /// Number of free (undetermined) SAT variables.
    pub fn num_free_vars(&self) -> usize {
        self.by_var.len()
    }

    /// All (variable, relation, tuple) triples.
    pub fn free_tuples(&self) -> impl Iterator<Item = (Var, RelId, &[AtomId])> {
        self.by_var.iter().map(|(v, (r, t))| (*v, *r, t.as_slice()))
    }

    /// Decode a SAT model into an [`Instance`] over the free relations
    /// (pinned-true tuples included).
    pub fn decode(&self, model: &Model) -> Instance {
        let mut out = Instance::new();
        for (rel, per) in &self.states {
            for (tuple, state) in per {
                let present = match state {
                    TupleState::True => true,
                    TupleState::False => false,
                    TupleState::Free(v) => model.value(*v),
                };
                if present {
                    out.insert(*rel, tuple.clone());
                }
            }
        }
        out
    }
}

/// Enumerate the full tuple product of the given argument sorts.
pub(crate) fn tuple_product(universe: &Universe, arg_sorts: &[muppet_logic::SortId]) -> Vec<Vec<AtomId>> {
    let mut out: Vec<Vec<AtomId>> = vec![Vec::new()];
    for &sort in arg_sorts {
        let atoms = universe.atoms_of(sort);
        let mut next = Vec::with_capacity(out.len() * atoms.len().max(1));
        for prefix in &out {
            for &a in atoms {
                let mut t = prefix.clone();
                t.push(a);
                next.push(t);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_logic::Domain;

    fn setup() -> (Universe, Vocabulary, RelId, Vec<AtomId>) {
        let mut u = Universe::new();
        let s = u.add_sort("S");
        let atoms = vec![u.add_atom(s, "a"), u.add_atom(s, "b")];
        let mut v = Vocabulary::new();
        let r = v.add_simple_rel("r", vec![s, s], Domain::Structure);
        (u, v, r, atoms)
    }

    #[test]
    fn tuple_product_sizes() {
        let (u, v, r, _) = setup();
        let decl = v.rel(r);
        assert_eq!(tuple_product(&u, &decl.arg_sorts).len(), 4);
        assert_eq!(tuple_product(&u, &[]).len(), 1); // nullary: one empty tuple
    }

    #[test]
    fn bounds_pin_tuples() {
        let (u, v, r, a) = setup();
        let mut bounds = PartialInstance::new();
        bounds.require(r, vec![a[0], a[0]]);
        bounds.permit(r, vec![a[0], a[1]]);
        // (a,a) required; (a,b) free; (b,*) outside upper bound → false.
        let mut solver = Solver::new();
        let vm = VarMap::build(&v, &u, &[r], &bounds, &mut solver);
        assert_eq!(vm.state(r, &[a[0], a[0]]), Some(TupleState::True));
        assert!(matches!(vm.state(r, &[a[0], a[1]]), Some(TupleState::Free(_))));
        assert_eq!(vm.state(r, &[a[1], a[0]]), Some(TupleState::False));
        assert_eq!(vm.num_free_vars(), 1);
    }

    #[test]
    fn bounded_relation_is_stored_sparsely() {
        let (u, v, r, a) = setup();
        let mut bounds = PartialInstance::new();
        bounds.require(r, vec![a[0], a[0]]);
        bounds.permit(r, vec![a[0], a[1]]);
        let mut solver = Solver::new();
        let vm = VarMap::build(&v, &u, &[r], &bounds, &mut solver);
        // Only the two bound tuples are materialized; the rest of the
        // 2×2 product is implicit.
        assert_eq!(vm.rel_states(r).count(), 2);
        assert_eq!(vm.state(r, &[a[1], a[1]]), Some(TupleState::False));
    }

    #[test]
    fn empty_bound_pins_whole_relation_false() {
        let (u, v, r, a) = setup();
        let mut bounds = PartialInstance::new();
        bounds.bound(r);
        let mut solver = Solver::new();
        let vm = VarMap::build(&v, &u, &[r], &bounds, &mut solver);
        assert_eq!(vm.num_free_vars(), 0);
        assert_eq!(vm.rel_states(r).count(), 0);
        assert_eq!(vm.state(r, &[a[0], a[1]]), Some(TupleState::False));
        assert!(vm.is_free(r));
    }

    #[test]
    fn unbounded_relation_is_fully_free() {
        let (u, v, r, _) = setup();
        let bounds = PartialInstance::new();
        let mut solver = Solver::new();
        let vm = VarMap::build(&v, &u, &[r], &bounds, &mut solver);
        assert_eq!(vm.num_free_vars(), 4);
        assert!(vm.is_free(r));
    }

    #[test]
    fn decode_reads_model_and_pins() {
        let (u, v, r, a) = setup();
        let mut bounds = PartialInstance::new();
        bounds.require(r, vec![a[0], a[0]]);
        bounds.permit(r, vec![a[0], a[1]]);
        let mut solver = Solver::new();
        let vm = VarMap::build(&v, &u, &[r], &bounds, &mut solver);
        // Force the free tuple true and solve.
        let (var, _, _) = vm.free_tuples().next().unwrap();
        solver.add_clause([muppet_sat::Lit::pos(var)]);
        match solver.solve() {
            muppet_sat::SolveResult::Sat(m) => {
                let inst = vm.decode(&m);
                assert!(inst.holds(r, &[a[0], a[0]]));
                assert!(inst.holds(r, &[a[0], a[1]]));
                assert!(!inst.holds(r, &[a[1], a[0]]));
            }
            other => panic!("{other:?}"),
        }
    }
}
