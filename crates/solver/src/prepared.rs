//! Warm, reusable encode state for repeated queries.
//!
//! The warm query type itself is the incremental engine
//! ([`IncrementalQuery`], DESIGN.md §13); [`PreparedQuery`] is kept as
//! an alias for daemon-facing callers. This module owns
//! [`PreparedStore`]: a capped, keyed store of warm engines.
//!
//! [`PreparedStore`] maps a *base fingerprint* — vocabulary, universe,
//! fixed structure, bounds and free relations — to its warm engine, so
//! callers with several distinct query shapes (per-party consistency
//! checks vs. joint reconciliation) each get their own warm state.

use std::collections::HashMap;

pub use crate::incremental::{GroupId, IncrementalQuery, PrepareError};

/// Back-compat alias: the warm prepared query *is* the incremental
/// engine.
pub type PreparedQuery = IncrementalQuery;

/// A keyed store of warm [`PreparedQuery`]s. Keys are *base
/// fingerprints* — everything that shapes the variable layout: vocab,
/// universe, fixed instance, bounds and free relations. Distinct keys
/// get distinct warm states; hitting an existing key is the warm path.
///
/// Counter discipline: `builds`, `hits` and the group/ground-cache
/// counters are **monotone over the store's lifetime** — evicting an
/// engine retires its counters into store-level accumulators instead of
/// forgetting them, so dashboards never see totals go backwards.
pub struct PreparedStore {
    map: HashMap<u128, PreparedQuery>,
    order: Vec<u128>,
    cap: usize,
    builds: u64,
    hits: u64,
    evictions: u64,
    retired_encoded: u64,
    retired_reused: u64,
    retired_cache_hits: u64,
    retired_cache_misses: u64,
}

impl PreparedStore {
    /// A store holding at most 8 distinct query shapes.
    pub fn new() -> PreparedStore {
        PreparedStore::with_cap(8)
    }

    /// A store holding at most `cap` (≥ 1) distinct query shapes; the
    /// oldest is dropped beyond that.
    pub fn with_cap(cap: usize) -> PreparedStore {
        PreparedStore {
            map: HashMap::new(),
            order: Vec::new(),
            cap: cap.max(1),
            builds: 0,
            hits: 0,
            evictions: 0,
            retired_encoded: 0,
            retired_reused: 0,
            retired_cache_hits: 0,
            retired_cache_misses: 0,
        }
    }

    /// Fetch the warm query for `key`, building it on first use.
    ///
    /// A key evicted earlier is simply rebuilt (another cold build):
    /// sessions whose warm engine was evicted mid-negotiation rebuild
    /// transparently and keep working.
    pub fn get_or_build(
        &mut self,
        key: u128,
        build: impl FnOnce() -> PreparedQuery,
    ) -> &mut PreparedQuery {
        if !self.map.contains_key(&key) {
            if self.order.len() >= self.cap {
                let evict = self.order.remove(0);
                if let Some(old) = self.map.remove(&evict) {
                    // Retire the evicted engine's counters so the
                    // store-level totals stay monotone.
                    self.evictions += 1;
                    self.retired_encoded += old.encoded_groups();
                    self.retired_reused += old.reused_groups();
                    self.retired_cache_hits += old.ground_cache_hits();
                    self.retired_cache_misses += old.ground_cache_misses();
                }
            }
            self.map.insert(key, build());
            self.order.push(key);
            self.builds += 1;
        } else {
            self.hits += 1;
        }
        self.map.get_mut(&key).unwrap_or_else(|| {
            // Just inserted or found above; unreachable in practice.
            unreachable!("prepared store entry vanished")
        })
    }

    /// Cold builds performed.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Warm hits served.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Engines evicted to stay within the cap.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Distinct query shapes currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Summed (encoded, reused) group counters across the store's whole
    /// lifetime: live engines plus everything retired at eviction.
    pub fn group_counters(&self) -> (u64, u64) {
        self.map.values().fold(
            (self.retired_encoded, self.retired_reused),
            |(e, r), q| (e + q.encoded_groups(), r + q.reused_groups()),
        )
    }

    /// Summed subformula ground/encode cache (hits, misses) across the
    /// store's whole lifetime, eviction-safe like
    /// [`PreparedStore::group_counters`].
    pub fn ground_cache_counters(&self) -> (u64, u64) {
        self.map.values().fold(
            (self.retired_cache_hits, self.retired_cache_misses),
            |(h, m), q| (h + q.ground_cache_hits(), m + q.ground_cache_misses()),
        )
    }
}

impl Default for PreparedStore {
    fn default() -> Self {
        PreparedStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{FormulaGroup, Outcome, Phase};
    use muppet_logic::{
        Domain, Formula, Instance, PartialInstance, PartyId, RelId, Term, Universe, Vocabulary,
    };
    use muppet_sat::Budget;

    struct Fix {
        u: Universe,
        v: Vocabulary,
        allow: RelId,
        atoms: Vec<muppet_logic::AtomId>,
    }

    fn fix() -> Fix {
        let mut u = Universe::new();
        let s = u.add_sort("Service");
        let atoms = vec![u.add_atom(s, "fe"), u.add_atom(s, "be"), u.add_atom(s, "db")];
        let mut v = Vocabulary::new();
        let allow = v.add_simple_rel("allow", vec![s, s], Domain::Party(PartyId(0)));
        Fix { u, v, allow, atoms }
    }

    fn pq(f: &Fix) -> PreparedQuery {
        PreparedQuery::new(
            &f.v,
            &f.u,
            &[f.allow],
            &PartialInstance::new(),
            Instance::new(),
        )
    }

    #[test]
    fn warm_solve_matches_cold_verdicts() {
        let f = fix();
        let t = [f.atoms[0], f.atoms[1]];
        let pos = Formula::pred(f.allow, t.iter().map(|&a| Term::Const(a)));
        let neg = Formula::not(pos.clone());
        let g_pos = FormulaGroup::new("require", vec![pos]);
        let g_neg = FormulaGroup::new("forbid", vec![neg]);
        let mut q = pq(&f);
        let b = Budget::unlimited();
        let id_pos = q.ensure_group(&g_pos, &b).unwrap();
        let id_neg = q.ensure_group(&g_neg, &b).unwrap();
        // Both active: unsat, blaming exactly the two groups.
        match q.solve(&[id_pos, id_neg], Budget::unlimited()) {
            Outcome::Unsat { mut core, .. } => {
                core.sort();
                assert_eq!(core, vec!["forbid".to_string(), "require".to_string()]);
            }
            other => panic!("{other:?}"),
        }
        // Only one active: sat — the other group's clauses are inert.
        match q.solve(&[id_pos], Budget::unlimited()) {
            Outcome::Sat { solution, .. } => {
                assert!(solution.holds(f.allow, &t));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn identical_groups_are_encoded_once() {
        let f = fix();
        let g = FormulaGroup::new(
            "g",
            vec![Formula::pred(
                f.allow,
                [Term::Const(f.atoms[0]), Term::Const(f.atoms[0])],
            )],
        );
        let mut q = pq(&f);
        let b = Budget::unlimited();
        let a = q.ensure_group(&g, &b).unwrap();
        let bb = q.ensure_group(&g, &b).unwrap();
        assert_eq!(a, bb);
        assert_eq!(q.encoded_groups(), 1);
        assert_eq!(q.reused_groups(), 1);
        assert_eq!(q.num_groups(), 1);
    }

    #[test]
    fn per_solve_stats_are_deltas() {
        let f = fix();
        let x_pos = Formula::pred(f.allow, [Term::Const(f.atoms[0]), Term::Const(f.atoms[0])]);
        let g1 = FormulaGroup::new("a", vec![x_pos.clone()]);
        let g2 = FormulaGroup::new("b", vec![Formula::not(x_pos)]);
        let mut q = pq(&f);
        let b = Budget::unlimited();
        let i1 = q.ensure_group(&g1, &b).unwrap();
        let i2 = q.ensure_group(&g2, &b).unwrap();
        let first = q.solve(&[i1, i2], Budget::unlimited());
        let second = q.solve(&[i1, i2], Budget::unlimited());
        // Delta accounting: the second run's counters must not include
        // the first run's work (non-decreasing totals would show up as
        // second >= first + first if they were absolute).
        assert!(second.stats().conflicts <= first.stats().conflicts + 2);
        assert!(!first.is_unknown() && !second.is_unknown());
    }

    #[test]
    fn exhausted_budget_reports_unknown() {
        let f = fix();
        let g = FormulaGroup::new(
            "g",
            vec![Formula::pred(
                f.allow,
                [Term::Const(f.atoms[0]), Term::Const(f.atoms[1])],
            )],
        );
        let mut q = pq(&f);
        let id = q.ensure_group(&g, &Budget::unlimited()).unwrap();
        let expired = Budget::unlimited().with_timeout(std::time::Duration::from_millis(0));
        assert!(q.solve(&[id], expired).is_unknown());
        // The same warm state still answers once the budget is lifted.
        assert!(q.solve(&[id], Budget::unlimited()).is_sat());
    }

    #[test]
    fn ensure_group_respects_expired_budget() {
        let f = fix();
        let g = FormulaGroup::new(
            "g",
            vec![Formula::pred(
                f.allow,
                [Term::Const(f.atoms[0]), Term::Const(f.atoms[1])],
            )],
        );
        let mut q = pq(&f);
        let expired = Budget::unlimited().with_timeout(std::time::Duration::from_millis(0));
        match q.ensure_group(&g, &expired) {
            Err(PrepareError::Exhausted(Phase::Ground)) => {}
            other => panic!("expected ground exhaustion, got {other:?}"),
        }
        // Already-encoded groups are still reusable under an expired
        // budget (the reuse path does no work).
        let id = q.ensure_group(&g, &Budget::unlimited()).unwrap();
        assert_eq!(q.ensure_group(&g, &expired).unwrap(), id);
    }

    #[test]
    fn store_caps_and_counts() {
        let f = fix();
        let mut store = PreparedStore::with_cap(2);
        for key in [1u128, 2, 3, 2] {
            store.get_or_build(key, || pq(&f));
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.builds(), 3, "key 1 evicted, keys 2/3 built once");
        assert_eq!(store.hits(), 1);
        assert_eq!(store.evictions(), 1);
        assert!(!store.is_empty());
    }

    /// Eviction must not roll counters backwards, and an evicted key
    /// must rebuild transparently and keep answering.
    #[test]
    fn evicted_engines_retire_counters_and_rebuild() {
        let f = fix();
        let g = FormulaGroup::new(
            "g",
            vec![Formula::pred(
                f.allow,
                [Term::Const(f.atoms[0]), Term::Const(f.atoms[1])],
            )],
        );
        let b = Budget::unlimited();
        let mut store = PreparedStore::with_cap(1);
        // Warm up key 1: one encode + one reuse.
        let id = {
            let q = store.get_or_build(1, || pq(&f));
            let id = q.ensure_group(&g, &b).unwrap();
            q.ensure_group(&g, &b).unwrap();
            assert!(q.solve(&[id], Budget::unlimited()).is_sat());
            id
        };
        let before = store.group_counters();
        assert_eq!(before, (1, 1));
        // Key 2 evicts key 1 (cap is 1); totals must not shrink.
        store.get_or_build(2, || pq(&f));
        assert_eq!(store.evictions(), 1);
        assert_eq!(
            store.group_counters(),
            before,
            "eviction retired key 1's counters instead of dropping them"
        );
        // Re-requesting key 1 mid-"negotiation" rebuilds transparently:
        // a fresh cold build whose groups re-encode, and the old
        // GroupId is meaningless for the new engine until re-ensured.
        let q = store.get_or_build(1, || pq(&f));
        let id2 = q.ensure_group(&g, &b).unwrap();
        assert_eq!(id, id2, "fresh engine hands out ids from zero again");
        assert!(q.solve(&[id2], Budget::unlimited()).is_sat());
        assert_eq!(store.builds(), 3);
        let after = store.group_counters();
        assert!(after.0 > before.0, "rebuild re-encodes monotonically");
    }
}
