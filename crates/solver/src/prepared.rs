//! Warm, reusable encode state for repeated queries.
//!
//! A [`PreparedQuery`] is the daemon-facing counterpart of [`Query`]:
//! it owns its vocabulary/universe (no borrowed lifetimes, so it can
//! outlive the session that built it), keeps the SAT solver, variable
//! map and every Tseitin-encoded formula group alive across requests,
//! and gates each group behind a selector literal. A later request that
//! shares groups with an earlier one re-grounds and re-encodes
//! *nothing*: it just assumes the selectors of the groups it needs.
//! Groups that are absent from a request are inert (their clauses are
//! `¬sel ∨ …` and `sel` is not assumed), which is what makes
//! delta-aware reuse sound.
//!
//! [`PreparedStore`] maps a *base fingerprint* — vocabulary, universe,
//! fixed structure, bounds and free relations — to its prepared query,
//! so callers with several distinct query shapes (per-party consistency
//! checks vs. joint reconciliation) each get their own warm state.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use muppet_logic::{Instance, PartialInstance, RelId, Universe, Vocabulary};
use muppet_portfolio::PortfolioConfig;
use muppet_sat::{Budget, Lit, Solver};

use crate::ground::{ground, GExpr, GroundError};
use crate::query::{run_sat_solve, FormulaGroup, Outcome, Phase, QueryStats};
use crate::tseitin::encode;
use crate::varmap::VarMap;

/// Handle to a formula group already grounded + encoded into a
/// [`PreparedQuery`]. Only meaningful for the query that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupId(usize);

/// How [`PreparedQuery::ensure_group`] can fail.
#[derive(Debug)]
pub enum PrepareError {
    /// The group's formulas could not be grounded (free variables).
    Ground(GroundError),
    /// The budget fired while grounding or encoding the group.
    Exhausted(Phase),
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrepareError::Ground(e) => write!(f, "grounding failed: {e}"),
            PrepareError::Exhausted(phase) => {
                write!(f, "budget exhausted at phase {phase} while preparing group")
            }
        }
    }
}

impl std::error::Error for PrepareError {}

/// A warm query: solver + varmap built once, formula groups encoded on
/// first use and reused (via selector assumptions) ever after.
///
/// Restrictions compared to [`Query`]: no symmetry breaking (its lex
/// clauses are permanent and goal-set dependent), no target-oriented
/// solving and no enumeration (both add permanent clauses that would
/// poison later reuse). Callers needing those fall back to a cold
/// [`Query`].
pub struct PreparedQuery {
    vocab: Vocabulary,
    universe: Universe,
    fixed: Instance,
    solver: Solver,
    varmap: VarMap,
    selectors: Vec<(String, Lit)>,
    index: HashMap<u64, usize>,
    minimize_cores: bool,
    portfolio: Option<PortfolioConfig>,
    encoded_groups: u64,
    reused_groups: u64,
}

impl PreparedQuery {
    /// Build the warm state: allocate the free-relation variables under
    /// `bounds` against `fixed`. Groups are added lazily via
    /// [`PreparedQuery::ensure_group`].
    ///
    /// The vocabulary and universe are cloned so the prepared query is
    /// self-contained (`'static`) and can be cached across sessions
    /// that rebuild their borrowed views per request.
    pub fn new(
        vocab: &Vocabulary,
        universe: &Universe,
        free_rels: &[RelId],
        bounds: &PartialInstance,
        fixed: Instance,
    ) -> PreparedQuery {
        let vocab = vocab.clone();
        let universe = universe.clone();
        let mut solver = Solver::new();
        let varmap = VarMap::build(&vocab, &universe, free_rels, bounds, &mut solver);
        PreparedQuery {
            vocab,
            universe,
            fixed,
            solver,
            varmap,
            selectors: Vec::new(),
            index: HashMap::new(),
            minimize_cores: true,
            portfolio: None,
            encoded_groups: 0,
            reused_groups: 0,
        }
    }

    /// Whether UNSAT cores are shrunk to minimal ones (default: yes).
    pub fn set_minimize_cores(&mut self, minimize: bool) -> &mut Self {
        self.minimize_cores = minimize;
        self
    }

    /// Fan the search phase of [`PreparedQuery::solve`] out across a
    /// portfolio of diversified workers. `None` (the default) or a
    /// config with `threads <= 1` keeps the search sequential. The
    /// shared proofs flow back into the warm solver, so later solves on
    /// this prepared query benefit from earlier races.
    pub fn set_portfolio(&mut self, portfolio: Option<PortfolioConfig>) -> &mut Self {
        self.portfolio = portfolio;
        self
    }

    /// Content fingerprint of a group: name + formulas. Two groups with
    /// identical content share one encoding.
    fn group_key(group: &FormulaGroup) -> u64 {
        let mut h = DefaultHasher::new();
        group.name.hash(&mut h);
        group.formulas.hash(&mut h);
        h.finish()
    }

    /// Ground + encode `group` if this query has not seen its content
    /// before; otherwise reuse the existing encoding. The returned id
    /// activates the group in a later [`PreparedQuery::solve`].
    pub fn ensure_group(
        &mut self,
        group: &FormulaGroup,
        budget: &Budget,
    ) -> Result<GroupId, PrepareError> {
        let key = Self::group_key(group);
        if let Some(&i) = self.index.get(&key) {
            self.reused_groups += 1;
            return Ok(GroupId(i));
        }
        #[cfg(any(test, feature = "fault-inject"))]
        if crate::fault::should_trip(Phase::Ground) {
            return Err(PrepareError::Exhausted(Phase::Ground));
        }
        if budget.poll().is_some() {
            return Err(PrepareError::Exhausted(Phase::Ground));
        }
        let mut ground_span = muppet_obs::span("ground");
        ground_span.record("groups", 1);
        let mut parts = group
            .formulas
            .iter()
            .map(|f| ground(f, &self.varmap, &self.fixed, &self.universe))
            .collect::<Result<Vec<_>, _>>()
            .map_err(PrepareError::Ground)?;
        let expr = if parts.len() == 1 {
            parts.pop().unwrap_or(GExpr::And(Vec::new()))
        } else {
            GExpr::And(parts)
        };
        drop(ground_span);
        #[cfg(any(test, feature = "fault-inject"))]
        if crate::fault::should_trip(Phase::Encode) {
            return Err(PrepareError::Exhausted(Phase::Encode));
        }
        if budget.poll().is_some() {
            return Err(PrepareError::Exhausted(Phase::Encode));
        }
        let mut encode_span = muppet_obs::span("encode");
        encode_span.record("groups", 1);
        let lit = encode(&expr, &mut self.solver);
        let sel = Lit::pos(self.solver.new_var());
        self.solver.add_clause([!sel, lit]);
        drop(encode_span);
        let i = self.selectors.len();
        self.selectors.push((group.name.clone(), sel));
        self.index.insert(key, i);
        self.encoded_groups += 1;
        Ok(GroupId(i))
    }

    /// Solve with exactly the given groups active, under `budget`.
    /// Work counters in the outcome are the *delta* for this solve, not
    /// the warm solver's lifetime totals.
    pub fn solve(&mut self, active: &[GroupId], budget: Budget) -> Outcome {
        let base = QueryStats {
            free_tuple_vars: 0,
            conflicts: self.solver.stats.conflicts,
            decisions: self.solver.stats.decisions,
            propagations: self.solver.stats.propagations,
            restarts: self.solver.stats.restarts,
            portfolio: None,
        };
        self.solver.set_budget(budget);
        let assumptions: Vec<Lit> = active
            .iter()
            .filter_map(|g| self.selectors.get(g.0).map(|(_, l)| *l))
            .collect();
        run_sat_solve(
            &mut self.solver,
            &self.varmap,
            &self.selectors,
            &assumptions,
            self.minimize_cores,
            &self.fixed,
            base,
            self.portfolio.as_ref(),
        )
    }

    /// Groups grounded + encoded by this query so far.
    pub fn num_groups(&self) -> usize {
        self.selectors.len()
    }

    /// How many `ensure_group` calls did fresh ground/encode work.
    pub fn encoded_groups(&self) -> u64 {
        self.encoded_groups
    }

    /// How many `ensure_group` calls reused an existing encoding.
    pub fn reused_groups(&self) -> u64 {
        self.reused_groups
    }

    /// The owned vocabulary (for decoding / debugging).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }
}

/// A keyed store of warm [`PreparedQuery`]s. Keys are *base
/// fingerprints* — everything that shapes the variable layout: vocab,
/// universe, fixed instance, bounds and free relations. Distinct keys
/// get distinct warm states; hitting an existing key is the warm path.
pub struct PreparedStore {
    map: HashMap<u128, PreparedQuery>,
    order: Vec<u128>,
    cap: usize,
    builds: u64,
    hits: u64,
}

impl PreparedStore {
    /// A store holding at most 8 distinct query shapes.
    pub fn new() -> PreparedStore {
        PreparedStore::with_cap(8)
    }

    /// A store holding at most `cap` (≥ 1) distinct query shapes; the
    /// oldest is dropped beyond that.
    pub fn with_cap(cap: usize) -> PreparedStore {
        PreparedStore {
            map: HashMap::new(),
            order: Vec::new(),
            cap: cap.max(1),
            builds: 0,
            hits: 0,
        }
    }

    /// Fetch the warm query for `key`, building it on first use.
    pub fn get_or_build(
        &mut self,
        key: u128,
        build: impl FnOnce() -> PreparedQuery,
    ) -> &mut PreparedQuery {
        if !self.map.contains_key(&key) {
            if self.order.len() >= self.cap {
                let evict = self.order.remove(0);
                self.map.remove(&evict);
            }
            self.map.insert(key, build());
            self.order.push(key);
            self.builds += 1;
        } else {
            self.hits += 1;
        }
        self.map.get_mut(&key).unwrap_or_else(|| {
            // Just inserted or found above; unreachable in practice.
            unreachable!("prepared store entry vanished")
        })
    }

    /// Cold builds performed.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Warm hits served.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Distinct query shapes currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Summed (encoded, reused) group counters across all held queries.
    pub fn group_counters(&self) -> (u64, u64) {
        self.map.values().fold((0, 0), |(e, r), q| {
            (e + q.encoded_groups(), r + q.reused_groups())
        })
    }
}

impl Default for PreparedStore {
    fn default() -> Self {
        PreparedStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_logic::{Domain, Formula, PartyId, Term};

    struct Fix {
        u: Universe,
        v: Vocabulary,
        allow: RelId,
        atoms: Vec<muppet_logic::AtomId>,
    }

    fn fix() -> Fix {
        let mut u = Universe::new();
        let s = u.add_sort("Service");
        let atoms = vec![u.add_atom(s, "fe"), u.add_atom(s, "be"), u.add_atom(s, "db")];
        let mut v = Vocabulary::new();
        let allow = v.add_simple_rel("allow", vec![s, s], Domain::Party(PartyId(0)));
        Fix { u, v, allow, atoms }
    }

    fn pq(f: &Fix) -> PreparedQuery {
        PreparedQuery::new(
            &f.v,
            &f.u,
            &[f.allow],
            &PartialInstance::new(),
            Instance::new(),
        )
    }

    #[test]
    fn warm_solve_matches_cold_verdicts() {
        let f = fix();
        let t = [f.atoms[0], f.atoms[1]];
        let pos = Formula::pred(f.allow, t.iter().map(|&a| Term::Const(a)));
        let neg = Formula::not(pos.clone());
        let g_pos = FormulaGroup::new("require", vec![pos]);
        let g_neg = FormulaGroup::new("forbid", vec![neg]);
        let mut q = pq(&f);
        let b = Budget::unlimited();
        let id_pos = q.ensure_group(&g_pos, &b).unwrap();
        let id_neg = q.ensure_group(&g_neg, &b).unwrap();
        // Both active: unsat, blaming exactly the two groups.
        match q.solve(&[id_pos, id_neg], Budget::unlimited()) {
            Outcome::Unsat { mut core, .. } => {
                core.sort();
                assert_eq!(core, vec!["forbid".to_string(), "require".to_string()]);
            }
            other => panic!("{other:?}"),
        }
        // Only one active: sat — the other group's clauses are inert.
        match q.solve(&[id_pos], Budget::unlimited()) {
            Outcome::Sat { solution, .. } => {
                assert!(solution.holds(f.allow, &t));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn identical_groups_are_encoded_once() {
        let f = fix();
        let g = FormulaGroup::new(
            "g",
            vec![Formula::pred(
                f.allow,
                [Term::Const(f.atoms[0]), Term::Const(f.atoms[0])],
            )],
        );
        let mut q = pq(&f);
        let b = Budget::unlimited();
        let a = q.ensure_group(&g, &b).unwrap();
        let bb = q.ensure_group(&g, &b).unwrap();
        assert_eq!(a, bb);
        assert_eq!(q.encoded_groups(), 1);
        assert_eq!(q.reused_groups(), 1);
        assert_eq!(q.num_groups(), 1);
    }

    #[test]
    fn per_solve_stats_are_deltas() {
        let f = fix();
        let x_pos = Formula::pred(f.allow, [Term::Const(f.atoms[0]), Term::Const(f.atoms[0])]);
        let g1 = FormulaGroup::new("a", vec![x_pos.clone()]);
        let g2 = FormulaGroup::new("b", vec![Formula::not(x_pos)]);
        let mut q = pq(&f);
        let b = Budget::unlimited();
        let i1 = q.ensure_group(&g1, &b).unwrap();
        let i2 = q.ensure_group(&g2, &b).unwrap();
        let first = q.solve(&[i1, i2], Budget::unlimited());
        let second = q.solve(&[i1, i2], Budget::unlimited());
        // Delta accounting: the second run's counters must not include
        // the first run's work (non-decreasing totals would show up as
        // second >= first + first if they were absolute).
        assert!(second.stats().conflicts <= first.stats().conflicts + 2);
        assert!(!first.is_unknown() && !second.is_unknown());
    }

    #[test]
    fn exhausted_budget_reports_unknown() {
        let f = fix();
        let g = FormulaGroup::new(
            "g",
            vec![Formula::pred(
                f.allow,
                [Term::Const(f.atoms[0]), Term::Const(f.atoms[1])],
            )],
        );
        let mut q = pq(&f);
        let id = q.ensure_group(&g, &Budget::unlimited()).unwrap();
        let expired = Budget::unlimited().with_timeout(std::time::Duration::from_millis(0));
        assert!(q.solve(&[id], expired).is_unknown());
        // The same warm state still answers once the budget is lifted.
        assert!(q.solve(&[id], Budget::unlimited()).is_sat());
    }

    #[test]
    fn ensure_group_respects_expired_budget() {
        let f = fix();
        let g = FormulaGroup::new(
            "g",
            vec![Formula::pred(
                f.allow,
                [Term::Const(f.atoms[0]), Term::Const(f.atoms[1])],
            )],
        );
        let mut q = pq(&f);
        let expired = Budget::unlimited().with_timeout(std::time::Duration::from_millis(0));
        match q.ensure_group(&g, &expired) {
            Err(PrepareError::Exhausted(Phase::Ground)) => {}
            other => panic!("expected ground exhaustion, got {other:?}"),
        }
        // Already-encoded groups are still reusable under an expired
        // budget (the reuse path does no work).
        let id = q.ensure_group(&g, &Budget::unlimited()).unwrap();
        assert_eq!(q.ensure_group(&g, &expired).unwrap(), id);
    }

    #[test]
    fn store_caps_and_counts() {
        let f = fix();
        let mut store = PreparedStore::with_cap(2);
        for key in [1u128, 2, 3, 2] {
            store.get_or_build(key, || pq(&f));
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.builds(), 3, "key 1 evicted, keys 2/3 built once");
        assert_eq!(store.hits(), 1);
        assert!(!store.is_empty());
    }
}
