//! Symmetry breaking over interchangeable atoms.
//!
//! Kodkod's signature optimization, reproduced: atoms of a sort that are
//! indistinguishable to the problem — they appear in no fixed-instance
//! tuple, no bound tuple and no formula constant — can be permuted in
//! any model to give another model. Lex-leader constraints over adjacent
//! transpositions of such atoms prune the symmetric copies, which is
//! exactly what makes "spare port" universes (Fig. 4's ∃-port goals)
//! affordable as they grow.
//!
//! Soundness: each added clause set `V ≤lex π(V)` (for `π` an adjacent
//! transposition of two interchangeable atoms, applied to every free
//! tuple variable simultaneously) preserves satisfiability — any model
//! can be canonicalized by sorting within its symmetry class. The
//! constraints are added as *hard* clauses outside all groups, so UNSAT
//! cores remain sound. They do restrict *which* models are returned,
//! which is why target-oriented and enumeration queries must not use
//! them (the [`crate::Query`] API enforces this).

use std::collections::BTreeSet;

use muppet_logic::{AtomId, Formula, Instance, PartialInstance, RelId, SortId, Universe, Vocabulary};
use muppet_sat::{Lit, Solver};

use crate::varmap::{TupleState, VarMap};

/// Compute the interchangeable-atom classes: for each sort, the atoms
/// that never appear as a constant in any formula, in the fixed
/// instance, or in any bound tuple.
pub(crate) fn interchangeable_classes(
    vocab: &Vocabulary,
    universe: &Universe,
    formulas: &[&Formula],
    fixed: &Instance,
    bounds: &PartialInstance,
) -> Vec<Vec<AtomId>> {
    let mut named: BTreeSet<AtomId> = BTreeSet::new();
    for f in formulas {
        named.extend(f.constants());
    }
    for (rel, _) in vocab.rels() {
        for t in fixed.tuples(rel) {
            named.extend(t.iter().copied());
        }
        for t in bounds.lower(rel).chain(bounds.upper(rel)) {
            named.extend(t.iter().copied());
        }
    }
    let mut classes = Vec::new();
    for sort_idx in 0..universe.num_sorts() {
        let sort = SortId(sort_idx as u32);
        let class: Vec<AtomId> = universe
            .atoms_of(sort)
            .iter()
            .copied()
            .filter(|a| !named.contains(a))
            .collect();
        if class.len() >= 2 {
            classes.push(class);
        }
    }
    classes
}

/// Kodkod's default symmetry-breaking budget: each lex-leader predicate
/// is truncated to this many variable pairs. A truncated predicate is a
/// *weaker* constraint, hence still sound; the cap keeps the encoding
/// overhead proportional to the benefit (long chains over ternary
/// relations otherwise swamp easy instances).
pub const DEFAULT_MAX_PAIRS: usize = 20;

/// Add lex-leader clauses for every adjacent transposition within each
/// interchangeable class, each truncated to `max_pairs` variable pairs.
/// Returns the number of transpositions broken.
pub(crate) fn add_symmetry_breaking(
    classes: &[Vec<AtomId>],
    free_rels: &[RelId],
    vocab: &Vocabulary,
    universe: &Universe,
    varmap: &VarMap,
    solver: &mut Solver,
    max_pairs: usize,
) -> usize {
    let mut broken = 0;
    for class in classes {
        for pair in class.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if add_lex_leader(a, b, free_rels, vocab, universe, varmap, solver, max_pairs) {
                broken += 1;
            }
        }
    }
    broken
}

/// Constrain `V ≤lex π(V)` where `π` swaps atoms `a`/`b` in every tuple.
///
/// The vector `V` enumerates, in a fixed global order, the SAT variables
/// of every free-relation tuple that *changes* under the swap (tuples
/// fixed by `π` contribute equal entries and can be skipped). Standard
/// chained encoding with prefix-equality selectors:
/// `eq₀ = true`, `eqᵢ ⇒ (vᵢ ⇒ wᵢ)`, `eqᵢ₊₁ ⇔ eqᵢ ∧ (vᵢ = wᵢ)`
/// (one-sided implications suffice for the ≤lex direction).
#[allow(clippy::too_many_arguments)]
fn add_lex_leader(
    a: AtomId,
    b: AtomId,
    free_rels: &[RelId],
    vocab: &Vocabulary,
    universe: &Universe,
    varmap: &VarMap,
    solver: &mut Solver,
    max_pairs: usize,
) -> bool {
    let swap = |atom: AtomId| {
        if atom == a {
            b
        } else if atom == b {
            a
        } else {
            atom
        }
    };
    // Collect (v, w) pairs: v = var of tuple t, w = var of π(t).
    let mut pairs: Vec<(Lit, Lit)> = Vec::new();
    for &rel in free_rels {
        let decl = vocab.rel(rel);
        for tuple in crate::varmap::tuple_product(universe, &decl.arg_sorts) {
            let swapped: Vec<AtomId> = tuple.iter().map(|&x| swap(x)).collect();
            if swapped == tuple {
                continue;
            }
            // Visit each orbit once (tuple < swapped in canonical order).
            if swapped < tuple {
                continue;
            }
            let v = match varmap.state(rel, &tuple) {
                Some(TupleState::Free(v)) => Lit::pos(v),
                // Pinned tuples make the atoms distinguishable; the
                // interchangeability analysis should have excluded them,
                // but stay safe and skip the whole transposition.
                _ => return false,
            };
            let w = match varmap.state(rel, &swapped) {
                Some(TupleState::Free(v)) => Lit::pos(v),
                _ => return false,
            };
            pairs.push((v, w));
        }
    }
    if pairs.is_empty() {
        return false;
    }
    pairs.truncate(max_pairs.max(1));
    // Chained lex-leader: eq starts true.
    // (eq_i ∧ v_i) ⇒ w_i  and  eq_{i+1} ⇐ eq_i ∧ (v_i ⇔ w_i)
    // encoded one-sidedly: ¬eq_i ∨ ¬v_i ∨ w_i ; and
    // eq_{i+1} implied via: ¬eq_i ∨ v_i ∨ ¬w_i ∨ eq_{i+1} is wrong
    // direction — we need eq_{i+1} ⇒ eq_i ∧ (v_i = w_i), i.e. use
    // eq_{i+1} only positively in the first clause and constrain it by:
    // eq_{i+1} ⇒ eq_i, eq_{i+1} ⇒ (v_i ⇒ w_i is already global)… the
    // safe standard form adds, for each i:
    //   ¬eq_i ∨ ¬v_i ∨ w_i
    //   eq_{i+1} ⇒ eq_i           (¬eq_{i+1} ∨ eq_i)
    //   eq_{i+1} ⇒ (¬v_i ∨ w_i) ∧ (v_i ∨ ¬w_i)   (equality of step i)
    // and asserts nothing forces eq_{i+1} true — the solver may set it
    // false, which only weakens later steps (still sound, still breaks
    // the symmetry at step i).
    let mut eq = Lit::pos(solver.new_var());
    solver.add_clause([eq]);
    let n = pairs.len();
    for (i, (v, w)) in pairs.into_iter().enumerate() {
        solver.add_clause([!eq, !v, w]);
        if i + 1 < n {
            let eq_next = Lit::pos(solver.new_var());
            solver.add_clause([!eq_next, eq]);
            solver.add_clause([!eq_next, !v, w]);
            solver.add_clause([!eq_next, v, !w]);
            eq = eq_next;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_logic::{Domain, PartyId, Term};

    struct Fix {
        u: Universe,
        v: Vocabulary,
        r: RelId,
        atoms: Vec<AtomId>,
    }

    fn fix(n_atoms: usize) -> Fix {
        let mut u = Universe::new();
        let s = u.add_sort("S");
        let atoms: Vec<AtomId> = (0..n_atoms)
            .map(|i| u.add_atom(s, format!("a{i}")))
            .collect();
        let mut v = Vocabulary::new();
        let r = v.add_simple_rel("r", vec![s], Domain::Party(PartyId(0)));
        Fix { u, v, r, atoms }
    }

    #[test]
    fn classes_exclude_named_atoms() {
        let f = fix(4);
        let goal = Formula::pred(f.r, [Term::Const(f.atoms[1])]);
        let classes = interchangeable_classes(
            &f.v,
            &f.u,
            &[&goal],
            &Instance::new(),
            &PartialInstance::new(),
        );
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0], vec![f.atoms[0], f.atoms[2], f.atoms[3]]);
    }

    #[test]
    fn classes_exclude_fixed_and_bound_atoms() {
        let f = fix(4);
        let mut fixed = Instance::new();
        fixed.insert(f.r, vec![f.atoms[0]]);
        let mut bounds = PartialInstance::new();
        bounds.permit(f.r, vec![f.atoms[3]]);
        let classes = interchangeable_classes(&f.v, &f.u, &[], &fixed, &bounds);
        assert_eq!(classes, vec![vec![f.atoms[1], f.atoms[2]]]);
        // A singleton remainder is not a class.
        let mut fixed2 = fixed.clone();
        fixed2.insert(f.r, vec![f.atoms[1]]);
        let classes = interchangeable_classes(&f.v, &f.u, &[], &fixed2, &bounds);
        assert_eq!(classes, vec![vec![f.atoms[2]]].into_iter().filter(|c: &Vec<AtomId>| c.len() >= 2).collect::<Vec<_>>());
    }

    #[test]
    #[allow(clippy::while_let_loop)]
    fn lex_leader_prunes_symmetric_models() {
        // Free unary relation over 3 interchangeable atoms; constraint:
        // exactly… nothing. Without SB: 8 models. With SB over the full
        // class, only sorted characteristic vectors survive: the models
        // where the vector (r(a0), r(a1), r(a2)) is lex-minimal under
        // adjacent swaps, i.e. non-decreasing… count = 4 (k of them true
        // in canonical positions for k = 0..3).
        let f = fix(3);
        let mut solver = Solver::new();
        let varmap = VarMap::build(&f.v, &f.u, &[f.r], &PartialInstance::new(), &mut solver);
        let classes = vec![f.atoms.clone()];
        let broken = add_symmetry_breaking(
            &classes,
            &[f.r],
            &f.v,
            &f.u,
            &varmap,
            &mut solver,
            DEFAULT_MAX_PAIRS,
        );
        assert_eq!(broken, 2);
        // Enumerate remaining models by blocking.
        let mut count = 0;
        loop {
            match solver.solve() {
                muppet_sat::SolveResult::Sat(m) => {
                    count += 1;
                    let blocking: Vec<Lit> = varmap
                        .free_tuples()
                        .map(|(v, _, _)| Lit::new(v, !m.value(v)))
                        .collect();
                    solver.add_clause(blocking);
                }
                _ => break,
            }
            assert!(count <= 8, "runaway enumeration");
        }
        assert_eq!(count, 4, "canonical vectors only");
    }
}
