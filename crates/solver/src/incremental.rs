//! The incremental compilation engine: one warm ground→encode→search→
//! minimize pipeline behind every solve path (DESIGN.md §13).
//!
//! An [`IncrementalQuery`] owns its vocabulary/universe (no borrowed
//! lifetimes, so it can outlive the session that built it), keeps the
//! SAT solver, variable map and every Tseitin-encoded formula group
//! alive across requests, and gates each group behind a selector
//! literal. A later request that shares groups with an earlier one
//! re-grounds and re-encodes *nothing*: it just assumes the selectors
//! of the groups it needs. Groups absent from a request are inert
//! (their clauses are `¬sel ∨ …` and `sel` is not assumed), which is
//! what makes delta-aware reuse sound. Below group granularity, a
//! per-subformula cache keyed by content fingerprint
//! ([`muppet_logic::fingerprint`]) shares ground/encode work between
//! groups that repeat a formula.
//!
//! Learned clauses and variable activity persist in the warm solver,
//! so negotiation round *N* starts from round *N−1*'s search state.
//! Because a warm solver's heuristic state differs from a cold one's,
//! every satisfiable answer is **canonicalized** to the
//! lexicographically smallest model over the free tuple variables (in
//! ascending variable order, `false < true`) and every minimized core
//! is shrunk by deterministic ordered deletion — so warm, cold and
//! portfolio runs return byte-identical verdicts, models and cores.
//! Canonicalization costs one incremental solve per `true` variable,
//! so it applies below a free-variable cap
//! ([`DEFAULT_CANONICAL_CAP`], adjustable per engine): the cap is a
//! pure function of the instance, so warm and cold agree on whether it
//! fires, and above it answers stay valid but the witness model is
//! whichever the search produced.
//!
//! The one-shot [`crate::Query`] facade compiles into a fresh engine
//! per call; [`crate::PreparedQuery`] is an alias for this type.

use std::collections::HashMap;

use muppet_logic::fingerprint::Fingerprinter;
use muppet_logic::{Formula, Instance, PartialInstance, RelId, Universe, Vocabulary};
use muppet_obs::{Counter, Gauge};
use muppet_portfolio::{solve_portfolio, PortfolioConfig, PortfolioSummary};
use muppet_sat::{mus, Budget, Lit, Model, ReduceStrategy, SolveResult, Solver, SolverStats, Var};

use crate::ground::{ground, GExpr, GroundError};
use crate::query::{FormulaGroup, Outcome, PartialResult, Phase, QueryError, QueryStats};
use crate::totalizer::Totalizer;
use crate::tseitin::encode;
use crate::varmap::VarMap;

/// Handle to a formula group already grounded + encoded into an
/// [`IncrementalQuery`]. Only meaningful for the engine that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupId(usize);

/// How [`IncrementalQuery::ensure_group`] can fail.
#[derive(Debug)]
pub enum PrepareError {
    /// The group's formulas could not be grounded (free variables).
    Ground(GroundError),
    /// The budget fired while grounding or encoding the group.
    Exhausted(Phase),
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepareError::Ground(e) => write!(f, "grounding failed: {e}"),
            PrepareError::Exhausted(phase) => {
                write!(f, "budget exhausted at phase {phase} while preparing group")
            }
        }
    }
}

impl std::error::Error for PrepareError {}

/// Default free-variable cap under which satisfiable models are
/// canonicalized (see the module docs). Covers every scenario in the
/// paper — the Fig. 1–4 mesh reconcile sits at 390 free tuple
/// variables — with headroom for moderately larger meshes; big
/// synthetic instances skip the canonical walk rather than pay
/// `O(free vars)` extra solves per answer.
pub const DEFAULT_CANONICAL_CAP: usize = 768;

/// Fingerprint tag separating OLL relaxation-sum totalizers from the
/// difference-indicator totalizers in the shared cache: the two kinds
/// can range over overlapping literal sets but encode different
/// constraints.
const OLL_SUM_TAG: u64 = 0x4f4c_4c5f_5355_4d31; // "OLL_SUM1"

/// How [`IncrementalQuery::solve_target`] proves the minimal edit
/// distance.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TargetStrategy {
    /// Core-guided (OLL-style) ascent: every UNSAT core raises the
    /// proven lower bound by one and is relaxed through a cached
    /// totalizer, so hard instances climb in conflict-driven steps
    /// instead of one solve per candidate distance.
    #[default]
    CoreGuided,
    /// Linear search upward from distance 0 over the cached difference
    /// totalizer — the pre-OLL baseline, kept as a differential oracle
    /// and as the semantics both strategies degrade to under budget
    /// exhaustion (best-so-far partial model).
    Linear,
}

/// The warm incremental engine: solver + varmap built once, formula
/// groups encoded on first use and activated by selector assumptions
/// ever after. See the module docs for the reuse and canonicalization
/// contracts.
///
/// Restriction: [`IncrementalQuery::add_symmetry_breaking`] installs
/// *permanent*, goal-set-dependent lex clauses, so it is only sound on
/// an engine used as a one-shot (the [`crate::Query`] facade). Warm
/// callers must not enable it — `Session` falls back to a cold facade
/// query when symmetry breaking is on.
pub struct IncrementalQuery {
    vocab: Vocabulary,
    universe: Universe,
    free_rels: Vec<RelId>,
    bounds: PartialInstance,
    fixed: Instance,
    solver: Solver,
    varmap: VarMap,
    selectors: Vec<(String, Lit)>,
    /// Group content fingerprint → index into `selectors`.
    index: HashMap<u128, usize>,
    /// Subformula content fingerprint → encoded root literal.
    ground_cache: HashMap<u128, Lit>,
    /// Difference-input fingerprint → cardinality network, so repeated
    /// target-oriented solves against the same target reuse the
    /// (permanent, one-sided, assumption-activated) totalizer clauses.
    totalizers: HashMap<u128, Totalizer>,
    minimize_cores: bool,
    canonical_cap: usize,
    portfolio: Option<PortfolioConfig>,
    target_strategy: TargetStrategy,
    /// Lifetime count of OLL cores consumed by core-guided target
    /// solves on this engine; [`QueryStats::oll_cores`] reports the
    /// per-solve delta.
    oll_rounds: u64,
    /// Kernel counter values already pushed to the metrics registry;
    /// [`Self::publish_kernel_metrics`] publishes the delta since.
    kernel_published: SolverStats,
    encoded_groups: u64,
    reused_groups: u64,
    ground_cache_hits: u64,
    ground_cache_misses: u64,
    ctr_encoded: Counter,
    ctr_reused: Counter,
    ctr_cache_hits: Counter,
    ctr_cache_misses: Counter,
    ctr_inprocessings: Counter,
    ctr_subsumed: Counter,
    ctr_strengthened: Counter,
    ctr_vivified: Counter,
    ctr_oll_cores: Counter,
    gauge_tier_core: Gauge,
    gauge_tier_mid: Gauge,
    gauge_tier_local: Gauge,
}

impl IncrementalQuery {
    /// Build the warm state: allocate the free-relation variables under
    /// `bounds` against `fixed`. Groups are added lazily via
    /// [`IncrementalQuery::ensure_group`].
    ///
    /// The vocabulary and universe are cloned so the engine is
    /// self-contained (`'static`) and can be cached across sessions
    /// that rebuild their borrowed views per request.
    pub fn new(
        vocab: &Vocabulary,
        universe: &Universe,
        free_rels: &[RelId],
        bounds: &PartialInstance,
        fixed: Instance,
    ) -> IncrementalQuery {
        let vocab = vocab.clone();
        let universe = universe.clone();
        let mut solver = Solver::new();
        let varmap = VarMap::build(&vocab, &universe, free_rels, bounds, &mut solver);
        let metrics = muppet_obs::registry();
        IncrementalQuery {
            vocab,
            universe,
            free_rels: free_rels.to_vec(),
            bounds: bounds.clone(),
            fixed,
            solver,
            varmap,
            selectors: Vec::new(),
            index: HashMap::new(),
            ground_cache: HashMap::new(),
            totalizers: HashMap::new(),
            minimize_cores: true,
            canonical_cap: DEFAULT_CANONICAL_CAP,
            portfolio: None,
            target_strategy: TargetStrategy::default(),
            oll_rounds: 0,
            kernel_published: SolverStats::default(),
            encoded_groups: 0,
            reused_groups: 0,
            ground_cache_hits: 0,
            ground_cache_misses: 0,
            ctr_encoded: metrics.counter("engine.groups.encoded"),
            ctr_reused: metrics.counter("engine.groups.reused"),
            ctr_cache_hits: metrics.counter("engine.ground_cache.hits"),
            ctr_cache_misses: metrics.counter("engine.ground_cache.misses"),
            ctr_inprocessings: metrics.counter("kernel.inprocessings"),
            ctr_subsumed: metrics.counter("kernel.subsumed_clauses"),
            ctr_strengthened: metrics.counter("kernel.strengthened_clauses"),
            ctr_vivified: metrics.counter("kernel.vivified_clauses"),
            ctr_oll_cores: metrics.counter("kernel.oll_cores"),
            gauge_tier_core: metrics.gauge("kernel.tier.core"),
            gauge_tier_mid: metrics.gauge("kernel.tier.mid"),
            gauge_tier_local: metrics.gauge("kernel.tier.local"),
        }
    }

    /// How target-oriented solves prove the minimal distance (default:
    /// core-guided). The two strategies return byte-identical outcomes
    /// and distances; only the search trajectory (and therefore cost)
    /// differs.
    pub fn set_target_strategy(&mut self, strategy: TargetStrategy) -> &mut Self {
        self.target_strategy = strategy;
        self
    }

    /// The current target-oriented search strategy.
    pub fn target_strategy(&self) -> TargetStrategy {
        self.target_strategy
    }

    /// Toggle the kernel's restart-boundary inprocessing (subsumption,
    /// self-subsuming resolution, vivification). Passthrough to
    /// [`muppet_sat::Solver::set_inprocessing`]; on by default.
    pub fn set_inprocessing(&mut self, on: bool) -> &mut Self {
        self.solver.set_inprocessing(on);
        self
    }

    /// Conflicts between kernel inprocessing passes (clamped to ≥ 1).
    /// Passthrough to [`muppet_sat::Solver::set_inprocess_interval`];
    /// meant for differential tests that need the pass to fire on small
    /// instances.
    pub fn set_inprocess_interval(&mut self, conflicts: u64) -> &mut Self {
        self.solver.set_inprocess_interval(conflicts);
        self
    }

    /// Select the kernel's learnt-clause retention policy. Passthrough
    /// to [`muppet_sat::Solver::set_reduce_strategy`]; the tiered DB is
    /// the default, the flat cap is the pre-change baseline.
    pub fn set_reduce_strategy(&mut self, strategy: ReduceStrategy) -> &mut Self {
        self.solver.set_reduce_strategy(strategy);
        self
    }

    /// Whether UNSAT cores are shrunk to minimal ones (default: yes).
    /// Shrinking uses deterministic ordered deletion, so minimized
    /// cores are identical warm and cold; with minimization off the
    /// solver's first core is returned, which *does* depend on search
    /// state.
    pub fn set_minimize_cores(&mut self, minimize: bool) -> &mut Self {
        self.minimize_cores = minimize;
        self
    }

    /// Free-variable cap under which satisfiable models are
    /// canonicalized (default [`DEFAULT_CANONICAL_CAP`]).
    pub fn canonical_cap(&self) -> usize {
        self.canonical_cap
    }

    /// Adjust the canonicalization cap. `usize::MAX` canonicalizes
    /// unconditionally; `0` disables the canonical walk. Must be set
    /// identically on every engine whose answers are compared
    /// byte-for-byte.
    pub fn set_canonical_cap(&mut self, cap: usize) -> &mut Self {
        self.canonical_cap = cap;
        self
    }

    /// Fan the search phase of [`IncrementalQuery::solve`] out across a
    /// portfolio of diversified workers. `None` (the default) or a
    /// config with `threads <= 1` keeps the search sequential. The
    /// shared proofs flow back into the warm solver, so later solves on
    /// this engine benefit from earlier races. Target-oriented solving
    /// and enumeration stay sequential either way.
    pub fn set_portfolio(&mut self, portfolio: Option<PortfolioConfig>) -> &mut Self {
        self.portfolio = portfolio;
        self
    }

    /// Content fingerprint of a group — [`FormulaGroup::content_key`].
    fn group_key(group: &FormulaGroup) -> u128 {
        group.content_key()
    }

    /// Content fingerprint of one formula (the subformula-cache key).
    fn formula_key(formula: &Formula) -> u128 {
        let mut fp = Fingerprinter::new();
        fp.add_hash(formula);
        fp.digest()
    }

    /// Ground + encode `group` if this engine has not seen its content
    /// before; otherwise reuse the existing encoding. The returned id
    /// activates the group in a later solve. Individual formulas are
    /// cached by content too, so a new group made of already-seen
    /// formulas costs one selector variable and one clause per formula.
    pub fn ensure_group(
        &mut self,
        group: &FormulaGroup,
        budget: &Budget,
    ) -> Result<GroupId, PrepareError> {
        let key = Self::group_key(group);
        if let Some(&i) = self.index.get(&key) {
            self.reused_groups += 1;
            self.ctr_reused.inc();
            return Ok(GroupId(i));
        }
        #[cfg(any(test, feature = "fault-inject"))]
        if crate::fault::should_trip(Phase::Ground) {
            return Err(PrepareError::Exhausted(Phase::Ground));
        }
        if budget.poll().is_some() {
            return Err(PrepareError::Exhausted(Phase::Ground));
        }
        // Ground phase: every formula not in the subformula cache.
        let mut ground_span = muppet_obs::span("ground");
        ground_span.record("groups", 1);
        let mut hits = 0u64;
        let mut pending: Vec<(u128, Option<GExpr>)> = Vec::with_capacity(group.formulas.len());
        for f in &group.formulas {
            let fkey = Self::formula_key(f);
            if self.ground_cache.contains_key(&fkey) {
                hits += 1;
                pending.push((fkey, None));
            } else {
                let expr = ground(f, &self.varmap, &self.fixed, &self.universe)
                    .map_err(PrepareError::Ground)?;
                pending.push((fkey, Some(expr)));
            }
        }
        let misses = pending.len() as u64 - hits;
        ground_span.record("cache_hits", hits);
        ground_span.record("cache_misses", misses);
        drop(ground_span);
        #[cfg(any(test, feature = "fault-inject"))]
        if crate::fault::should_trip(Phase::Encode) {
            return Err(PrepareError::Exhausted(Phase::Encode));
        }
        if budget.poll().is_some() {
            return Err(PrepareError::Exhausted(Phase::Encode));
        }
        // Encode phase: the group's selector implies each formula's
        // root literal (`¬sel ∨ lit_f` per formula — one-sided, so the
        // clauses are inert whenever `sel` is not assumed).
        let mut encode_span = muppet_obs::span("encode");
        encode_span.record("groups", 1);
        let sel = Lit::pos(self.solver.new_var());
        for (fkey, expr) in pending {
            let lit = match expr {
                Some(expr) => {
                    let lit = encode(&expr, &mut self.solver);
                    self.ground_cache.insert(fkey, lit);
                    lit
                }
                None => self.ground_cache[&fkey],
            };
            self.solver.add_clause([!sel, lit]);
        }
        drop(encode_span);
        self.ground_cache_hits += hits;
        self.ground_cache_misses += misses;
        self.ctr_cache_hits.add(hits);
        self.ctr_cache_misses.add(misses);
        let i = self.selectors.len();
        self.selectors.push((group.name.clone(), sel));
        self.index.insert(key, i);
        self.encoded_groups += 1;
        self.ctr_encoded.inc();
        Ok(GroupId(i))
    }

    /// Install lex-leader symmetry-breaking clauses for the given goal
    /// set. The clauses are **permanent** and goal-set dependent, so
    /// this is only sound on an engine used as a one-shot (the
    /// [`crate::Query`] facade); never call it on a warm engine.
    pub fn add_symmetry_breaking(&mut self, groups: &[FormulaGroup]) {
        let formulas: Vec<&Formula> = groups.iter().flat_map(|g| g.formulas.iter()).collect();
        let classes = crate::symmetry::interchangeable_classes(
            &self.vocab,
            &self.universe,
            &formulas,
            &self.fixed,
            &self.bounds,
        );
        crate::symmetry::add_symmetry_breaking(
            &classes,
            &self.free_rels,
            &self.vocab,
            &self.universe,
            &self.varmap,
            &mut self.solver,
            crate::symmetry::DEFAULT_MAX_PAIRS,
        );
    }

    /// Counters snapshot before a solve; [`Self::delta_stats`] reports
    /// the work done since.
    fn stats_base(&self) -> QueryStats {
        QueryStats {
            free_tuple_vars: 0,
            conflicts: self.solver.stats.conflicts,
            decisions: self.solver.stats.decisions,
            propagations: self.solver.stats.propagations,
            restarts: self.solver.stats.restarts,
            inprocessings: self.solver.stats.inprocessings,
            oll_cores: self.oll_rounds,
            portfolio: None,
        }
    }

    fn delta_stats(&self, base: &QueryStats, summary: Option<PortfolioSummary>) -> QueryStats {
        QueryStats {
            free_tuple_vars: self.varmap.num_free_vars(),
            conflicts: self.solver.stats.conflicts.saturating_sub(base.conflicts),
            decisions: self.solver.stats.decisions.saturating_sub(base.decisions),
            propagations: self.solver.stats.propagations.saturating_sub(base.propagations),
            restarts: self.solver.stats.restarts.saturating_sub(base.restarts),
            inprocessings: self
                .solver
                .stats
                .inprocessings
                .saturating_sub(base.inprocessings),
            oll_cores: self.oll_rounds.saturating_sub(base.oll_cores),
            portfolio: summary,
        }
    }

    /// Push the kernel's inprocessing counters to the metrics registry
    /// as deltas since the last publish, and refresh the tier-size
    /// gauges. Called at the end of every solve entry point so the
    /// daemon's `stats` op sees live kernel numbers.
    fn publish_kernel_metrics(&mut self) {
        let s = self.solver.stats;
        let p = self.kernel_published;
        self.ctr_inprocessings
            .add(s.inprocessings.saturating_sub(p.inprocessings));
        self.ctr_subsumed
            .add(s.subsumed_clauses.saturating_sub(p.subsumed_clauses));
        self.ctr_strengthened
            .add(s.strengthened_clauses.saturating_sub(p.strengthened_clauses));
        self.ctr_vivified
            .add(s.vivified_clauses.saturating_sub(p.vivified_clauses));
        self.kernel_published = s;
        let (core, mid, local) = self.solver.tier_sizes();
        self.gauge_tier_core.set(core as u64);
        self.gauge_tier_mid.set(mid as u64);
        self.gauge_tier_local.set(local as u64);
    }

    fn assumptions_for(&self, active: &[GroupId]) -> Vec<Lit> {
        active
            .iter()
            .filter_map(|g| self.selectors.get(g.0).map(|(_, l)| *l))
            .collect()
    }

    /// Group names of the core `lits`, ordered by the **current
    /// solve's assumption order** (= the caller's group submission
    /// order), not the engine's selector-creation order. A warm engine
    /// carries selectors from earlier solves in whatever order history
    /// created them, so ordering by `self.selectors` would make core
    /// order depend on engine history; ordering by `assumptions` makes
    /// warm, cold and portfolio cores byte-identical. (The shrinker
    /// already returns an ordered subsequence of the assumptions; this
    /// also normalizes raw solver-reported cores, whose order is
    /// heuristic-dependent.)
    fn names_of_in(&self, assumptions: &[Lit], lits: &[Lit]) -> Vec<String> {
        assumptions
            .iter()
            .filter(|l| lits.contains(l))
            .filter_map(|l| {
                self.selectors
                    .iter()
                    .find(|(_, sl)| sl == l)
                    .map(|(n, _)| n.clone())
            })
            .collect()
    }

    /// Reduce `model` to the canonical (lexicographically smallest)
    /// model under `assumptions`: walk the free tuple variables in
    /// ascending variable order, fixing each to `false` when some model
    /// agrees with the prefix built so far and to `true` otherwise.
    ///
    /// Each variable's final value is a pure function of the problem
    /// semantics and the variable order — independent of solver
    /// heuristic state — which is what makes warm, cold and portfolio
    /// answers byte-identical. Costs at most one incremental solve per
    /// variable the intermediate models assign `true`, so instances
    /// with more than [`Self::canonical_cap`] free variables skip the
    /// walk (the cap itself is a pure function of the instance, so the
    /// skip is identical warm and cold); a budget firing mid-walk
    /// returns the current (valid, possibly non-canonical) model rather
    /// than losing the answer.
    fn canonicalize(&mut self, mut model: Model, assumptions: &[Lit]) -> Model {
        if self.varmap.num_free_vars() > self.canonical_cap {
            return model;
        }
        let free: Vec<Var> = self.varmap.free_tuples().map(|(v, _, _)| v).collect();
        let mut assms = assumptions.to_vec();
        let base_len = assms.len();
        let mut prefix: Vec<Lit> = Vec::with_capacity(free.len());
        for v in free {
            if !model.value(v) {
                // `model` satisfies prefix ∪ {¬v}: no probe needed.
                prefix.push(Lit::neg(v));
                continue;
            }
            assms.truncate(base_len);
            assms.extend_from_slice(&prefix);
            assms.push(Lit::neg(v));
            match self.solver.solve_with_assumptions(&assms) {
                SolveResult::Sat(better) => {
                    model = better;
                    prefix.push(Lit::neg(v));
                }
                SolveResult::Unsat(_) => prefix.push(Lit::pos(v)),
                SolveResult::Unknown => return model,
            }
        }
        model
    }

    /// Ensure the global difference-count totalizer for a
    /// `solve_target` call is encoded and return its negated outputs
    /// (`&outputs[k..]` assumes "at most k differences"). Cached by the
    /// difference-indicator fingerprint, so warm engines re-solving
    /// against the same target reuse the clauses.
    fn target_totalizer(&mut self, diff_inputs: &[Lit], tkey: u128) -> Vec<Lit> {
        if !self.totalizers.contains_key(&tkey) {
            let tot = Totalizer::build(diff_inputs, &mut self.solver);
            self.totalizers.insert(tkey, tot);
        }
        self.totalizers[&tkey].at_most(0)
    }

    /// The shared search → minimize tail: run the CDCL search under the
    /// already-installed budget (fanning out across a portfolio when
    /// configured), canonicalize satisfiable models, shrink cores by
    /// ordered deletion, and report work counters as the delta from
    /// `base`.
    fn run_search(&mut self, assumptions: &[Lit], base: &QueryStats) -> Outcome {
        // Failpoints are thread-local: check on the calling thread
        // before any portfolio fan-out, so fault-injected queries
        // always degrade on the sequential path.
        #[cfg(any(test, feature = "fault-inject"))]
        if crate::fault::should_trip(Phase::Search) {
            return Outcome::Unknown {
                phase: Phase::Search,
                stats: self.delta_stats(base, None),
                partial: None,
            };
        }
        let mut summary: Option<PortfolioSummary> = None;
        let mut search_span = muppet_obs::span("search");
        let search_result = match self.portfolio {
            Some(cfg) if cfg.is_parallel() => {
                let (result, s) = solve_portfolio(&mut self.solver, assumptions, &cfg);
                summary = Some(s);
                result
            }
            _ => self.solver.solve_with_assumptions(assumptions),
        };
        // Canonicalize inside the search span so its probes are
        // attributed to the search phase.
        let search_result = match search_result {
            SolveResult::Sat(model) => SolveResult::Sat(self.canonicalize(model, assumptions)),
            other => other,
        };
        if search_span.is_recording() {
            let d = self.delta_stats(base, summary);
            search_span.record("conflicts", d.conflicts);
            search_span.record("decisions", d.decisions);
            search_span.record("propagations", d.propagations);
            search_span.record("restarts", d.restarts);
            search_span.attr(
                "result",
                match &search_result {
                    SolveResult::Sat(_) => "sat",
                    SolveResult::Unsat(_) => "unsat",
                    SolveResult::Unknown => "unknown",
                },
            );
        }
        drop(search_span);
        match search_result {
            SolveResult::Sat(model) => {
                let solution = self.fixed.union(&self.varmap.decode(&model));
                let stats = self.delta_stats(base, summary);
                Outcome::Sat { solution, stats }
            }
            SolveResult::Unsat(first_core) => {
                let core_lits = if self.minimize_cores {
                    let mut minimize_span = muppet_obs::span("minimize");
                    let pre_conflicts = self.solver.stats.conflicts;
                    let shrunk = mus::shrink_core_ordered(&mut self.solver, assumptions);
                    minimize_span.record(
                        "conflicts",
                        self.solver.stats.conflicts.saturating_sub(pre_conflicts),
                    );
                    drop(minimize_span);
                    match shrunk {
                        mus::ShrinkResult::Minimal(core) => core,
                        // The assumptions were just proved UNSAT, so a
                        // Sat answer here cannot happen; fall back to
                        // the first core rather than panic.
                        mus::ShrinkResult::Sat => first_core,
                        mus::ShrinkResult::Exhausted { best } => {
                            // UNSAT is established; surface the best
                            // (unminimized) core as a partial artifact.
                            let stats = self.delta_stats(base, summary);
                            let partial = Some(PartialResult::Core(
                                self.names_of_in(assumptions, &best.unwrap_or(first_core)),
                            ));
                            return Outcome::Unknown {
                                phase: Phase::Minimize,
                                stats,
                                partial,
                            };
                        }
                    }
                } else {
                    first_core
                };
                let core = self.names_of_in(assumptions, &core_lits);
                let stats = self.delta_stats(base, summary);
                Outcome::Unsat { core, stats }
            }
            SolveResult::Unknown => Outcome::Unknown {
                phase: Phase::Search,
                stats: self.delta_stats(base, None),
                partial: None,
            },
        }
    }

    /// Solve with exactly the given groups active, under `budget`.
    /// Work counters in the outcome are the *delta* for this solve, not
    /// the warm solver's lifetime totals. Satisfiable answers are the
    /// canonical (lex-smallest) model up to the canonicalization cap;
    /// UNSAT cores are minimized by ordered deletion — see the module
    /// docs.
    pub fn solve(&mut self, active: &[GroupId], budget: Budget) -> Outcome {
        let base = self.stats_base();
        self.solver.set_budget(budget);
        let assumptions = self.assumptions_for(active);
        let outcome = self.run_search(&assumptions, &base);
        self.publish_kernel_metrics();
        outcome
    }

    /// Find the satisfying instance *closest to `target`* (fewest tuple
    /// flips over the free relations) with the given groups active.
    /// Returns the outcome and, when SAT, the achieved distance.
    ///
    /// This reproduces Pardinus's target-oriented model finding over a
    /// cached totalizer cardinality network. The default
    /// [`TargetStrategy::CoreGuided`] proves the minimum by OLL-style
    /// core-guided ascent (each UNSAT core raises the lower bound by
    /// one and is relaxed through a cached sum totalizer);
    /// [`TargetStrategy::Linear`] searches upward from distance 0 one
    /// bound at a time. Both return byte-identical results. The
    /// totalizers' clauses are one-sided (inputs drive outputs) and
    /// activated purely by assumptions, so they stay inert for every
    /// other solve on this warm engine. Among the minimal-distance
    /// models the canonical one (see [`Self::solve`]) is returned. On
    /// budget exhaustion the returned [`Outcome::Unknown`] carries the
    /// best model found so far as a [`PartialResult::Model`], so a
    /// counter-offer can still be made.
    pub fn solve_target(
        &mut self,
        active: &[GroupId],
        target: &Instance,
        budget: Budget,
    ) -> (Outcome, usize) {
        let result = self.solve_target_inner(active, target, budget);
        self.publish_kernel_metrics();
        result
    }

    fn solve_target_inner(
        &mut self,
        active: &[GroupId],
        target: &Instance,
        budget: Budget,
    ) -> (Outcome, usize) {
        let base = self.stats_base();
        self.solver.set_budget(budget);
        let assumptions = self.assumptions_for(active);
        #[cfg(any(test, feature = "fault-inject"))]
        if crate::fault::should_trip(Phase::Search) {
            return (
                Outcome::Unknown {
                    phase: Phase::Search,
                    stats: self.delta_stats(&base, None),
                    partial: None,
                },
                0,
            );
        }

        // Difference indicators: literal true iff the tuple's value in
        // the model differs from its value in the target.
        let mut diff_inputs = Vec::new();
        for (var, rel, tuple) in self.varmap.free_tuples() {
            let in_target = target.holds(rel, tuple);
            diff_inputs.push(Lit::new(var, !in_target));
        }
        // Pinned tuples that disagree with the target contribute a
        // fixed base distance no model can avoid. Walk the varmap's
        // stored states (pinned-true vs target) plus the target's own
        // tuples (pinned-false, stored or implicit outside a sparse
        // bound) instead of the full tuple product — the two sweeps
        // together count exactly the disagreeing pins.
        let mut dist_base = 0usize;
        for &rel in &self.free_rels {
            for (tuple, state) in self.varmap.rel_states(rel) {
                if state == crate::varmap::TupleState::True && !target.holds(rel, tuple) {
                    dist_base += 1;
                }
            }
            for tuple in target.tuples(rel) {
                if self.varmap.state(rel, tuple) == Some(crate::varmap::TupleState::False) {
                    dist_base += 1;
                }
            }
        }

        // Initial unconstrained probe: establishes feasibility and an
        // upper bound on the distance.
        let mut search_span = muppet_obs::span("search");
        search_span.attr("mode", "target");
        let (best_solution, best_dist) = match self.solver.solve_with_assumptions(&assumptions) {
            SolveResult::Sat(model) => {
                let dist = diff_inputs.iter().filter(|&&l| model.lit_value(l)).count();
                (self.fixed.union(&self.varmap.decode(&model)), dist)
            }
            SolveResult::Unsat(first_core) => {
                drop(search_span);
                // Infeasible at any distance: produce a core.
                let _minimize_span = muppet_obs::span("minimize");
                let core = match mus::shrink_core_ordered(&mut self.solver, &assumptions) {
                    mus::ShrinkResult::Minimal(core) => self.names_of_in(&assumptions, &core),
                    mus::ShrinkResult::Sat => self.names_of_in(&assumptions, &first_core),
                    mus::ShrinkResult::Exhausted { best } => {
                        let stats = self.delta_stats(&base, None);
                        let partial = Some(PartialResult::Core(
                            self.names_of_in(&assumptions, &best.unwrap_or(first_core)),
                        ));
                        return (
                            Outcome::Unknown {
                                phase: Phase::Minimize,
                                stats,
                                partial,
                            },
                            0,
                        );
                    }
                };
                let stats = self.delta_stats(&base, None);
                return (Outcome::Unsat { core, stats }, 0);
            }
            SolveResult::Unknown => {
                return (
                    Outcome::Unknown {
                        phase: Phase::Search,
                        stats: self.delta_stats(&base, None),
                        partial: None,
                    },
                    0,
                );
            }
        };

        // Cardinality network over the difference indicators, cached by
        // their content so repeated solves against the same target (and
        // bound set) reuse the clauses. Built lazily: the linear arm
        // and the bounded finisher need it, but a core-guided ascent
        // that ends holding a witness (and skips the canonical walk)
        // never pays for the O(n log n) global network — its cores see
        // only the small per-core relaxation sums.
        let mut fp = Fingerprinter::new();
        for &l in &diff_inputs {
            fp.add_u64(l.var().index() as u64);
            fp.add_bool(l.is_positive());
        }
        let tkey = fp.digest();

        // Prove the minimal number of true difference indicators
        // (`optimum <= best_dist`). Strategy-dependent: both arms either
        // return early (Sat found in the Linear loop, budget fired) or
        // fall through to the shared finisher below with a proven
        // optimum — and, for the core-guided arm, a witness model at
        // that optimum when one is in hand.
        let optimum: usize;
        let mut witness: Option<Model> = None;
        match self.target_strategy {
            TargetStrategy::Linear => {
                // Linear search upward from distance 0, bounded above by
                // the probe's distance: minimal edits are small in
                // practice, so this touches few bounds.
                let neg_outputs = self.target_totalizer(&diff_inputs, tkey);
                let at_most = |k: usize| &neg_outputs[k.min(neg_outputs.len())..];
                for k in 0..best_dist {
                    let mut assms = assumptions.clone();
                    assms.extend_from_slice(at_most(k));
                    match self.solver.solve_with_assumptions(&assms) {
                        SolveResult::Sat(model) => {
                            let model = self.canonicalize(model, &assms);
                            let solution = self.fixed.union(&self.varmap.decode(&model));
                            drop(search_span);
                            let stats = self.delta_stats(&base, None);
                            return (Outcome::Sat { solution, stats }, dist_base + k);
                        }
                        SolveResult::Unsat(_) => continue,
                        SolveResult::Unknown => {
                            // Budget fired mid-search: the probe model is
                            // still a valid (if non-minimal) counter-offer.
                            drop(search_span);
                            let stats = self.delta_stats(&base, None);
                            let partial = Some(PartialResult::Model {
                                solution: best_solution,
                                distance: dist_base + best_dist,
                            });
                            return (
                                Outcome::Unknown {
                                    phase: Phase::Search,
                                    stats,
                                    partial,
                                },
                                0,
                            );
                        }
                    }
                }
                optimum = best_dist;
            }
            TargetStrategy::CoreGuided => {
                // OLL-style ascent. Every difference indicator `d` gets
                // the soft assumption `¬d`. Each UNSAT core proves one
                // more unavoidable flip: the blamed softs are retired
                // and — when the core blames two or more indicators —
                // replaced by a totalizer over them whose bound starts
                // at 1 and is raised one unit each time a later core
                // blames its current bound output. The loop ends when
                // the softs-plus-bounds state is satisfiable (cost
                // exactly `lb`) or `lb` meets the probe's upper bound.
                let mut softs: Vec<Lit> = diff_inputs.iter().map(|&d| !d).collect();
                // Live relaxation sums: (totalizer cache key, current
                // bound, input count). The one-sided tree forces
                // outputs monotonically, so assuming the single
                // literal `¬output(bound)` enforces "≤ bound".
                let mut sums: Vec<(u128, usize, usize)> = Vec::new();
                let mut lb = 0usize;
                loop {
                    if lb >= best_dist {
                        // The probe model already attains the proven
                        // lower bound.
                        optimum = best_dist;
                        break;
                    }
                    let mut assms = assumptions.clone();
                    assms.extend_from_slice(&softs);
                    for &(key, bound, _) in &sums {
                        if let Some(o) = self.totalizers[&key].output(bound) {
                            assms.push(!o);
                        }
                    }
                    match self.solver.solve_with_assumptions(&assms) {
                        SolveResult::Sat(model) => {
                            // Cost of this model is exactly `lb`, which
                            // the cores prove minimal.
                            optimum = lb;
                            witness = Some(model);
                            break;
                        }
                        SolveResult::Unsat(core) => {
                            self.oll_rounds += 1;
                            self.ctr_oll_cores.inc();
                            lb += 1;
                            // Collect the difference indicators this
                            // core blames: retired softs contribute the
                            // indicator itself, relaxation sums their
                            // violated bound output.
                            let mut indicators: Vec<Lit> = Vec::new();
                            softs.retain(|&s| {
                                if core.contains(&s) {
                                    indicators.push(!s);
                                    false
                                } else {
                                    true
                                }
                            });
                            let mut next_sums = Vec::with_capacity(sums.len());
                            for (key, bound, len) in sums.drain(..) {
                                let o = self.totalizers[&key]
                                    .output(bound)
                                    .expect("sum bound < input count");
                                if core.contains(&!o) {
                                    indicators.push(o);
                                    if bound + 1 < len {
                                        next_sums.push((key, bound + 1, len));
                                    }
                                    // A sum at full bound can never be
                                    // violated again; drop it.
                                } else {
                                    next_sums.push((key, bound, len));
                                }
                            }
                            sums = next_sums;
                            if indicators.len() >= 2 {
                                let mut sfp = Fingerprinter::new();
                                sfp.add_u64(OLL_SUM_TAG);
                                for &l in &indicators {
                                    sfp.add_u64(l.var().index() as u64);
                                    sfp.add_bool(l.is_positive());
                                }
                                let skey = sfp.digest();
                                if !self.totalizers.contains_key(&skey) {
                                    let tot = Totalizer::build(&indicators, &mut self.solver);
                                    self.totalizers.insert(skey, tot);
                                }
                                sums.push((skey, 1, indicators.len()));
                            } else if indicators.is_empty() {
                                // Defensive — unreachable: the probe
                                // proved the hard groups satisfiable, so
                                // every core must blame a soft. Degrade
                                // to linear search from the bound the
                                // genuine cores proved.
                                let neg_outputs =
                                    self.target_totalizer(&diff_inputs, tkey);
                                let at_most =
                                    |k: usize| &neg_outputs[k.min(neg_outputs.len())..];
                                let mut k = lb.saturating_sub(1);
                                loop {
                                    if k >= best_dist {
                                        break;
                                    }
                                    let mut assms = assumptions.clone();
                                    assms.extend_from_slice(at_most(k));
                                    match self.solver.solve_with_assumptions(&assms) {
                                        SolveResult::Sat(_) => break,
                                        SolveResult::Unsat(_) => k += 1,
                                        SolveResult::Unknown => {
                                            drop(search_span);
                                            let stats = self.delta_stats(&base, None);
                                            let partial = Some(PartialResult::Model {
                                                solution: best_solution,
                                                distance: dist_base + best_dist,
                                            });
                                            return (
                                                Outcome::Unknown {
                                                    phase: Phase::Search,
                                                    stats,
                                                    partial,
                                                },
                                                0,
                                            );
                                        }
                                    }
                                }
                                optimum = k.min(best_dist);
                                break;
                            }
                            // A single blamed indicator needs no sum:
                            // one Boolean can only be violated once, and
                            // its unit of cost is now counted in `lb`.
                        }
                        SolveResult::Unknown => {
                            // Budget fired mid-ascent: same best-so-far
                            // semantics as the linear strategy.
                            drop(search_span);
                            let stats = self.delta_stats(&base, None);
                            let partial = Some(PartialResult::Model {
                                solution: best_solution,
                                distance: dist_base + best_dist,
                            });
                            return (
                                Outcome::Unknown {
                                    phase: Phase::Search,
                                    stats,
                                    partial,
                                },
                                0,
                            );
                        }
                    }
                }
            }
        }
        // Shared finisher: (re-)derive a model at the proven optimal
        // distance and canonicalize among the distance-minimal models,
        // so both strategies return the same byte-identical answer. The
        // core-guided Sat exit already holds such a model and skips the
        // extra solve. The distance bound is needed to derive a missing
        // witness and to pin the canonical walk to distance-minimal
        // models; a witness-holding run with canonicalization skipped
        // (cap exceeded or disabled) needs no bound — and so never
        // builds the global totalizer at all.
        let will_canonicalize = self.canonical_cap >= self.varmap.num_free_vars();
        let mut assms = assumptions.clone();
        if witness.is_none() || will_canonicalize {
            let neg_outputs = self.target_totalizer(&diff_inputs, tkey);
            assms.extend_from_slice(&neg_outputs[optimum.min(neg_outputs.len())..]);
        }
        let found = match witness {
            Some(model) => Some(model),
            None => match self.solver.solve_with_assumptions(&assms) {
                SolveResult::Sat(model) => Some(model),
                // For `optimum == best_dist` the probe model witnesses
                // satisfiability at this distance; keep it if the budget
                // fires (or the defensive unreachable Unsat arm) here.
                _ => None,
            },
        };
        let solution = match found {
            Some(model) => {
                let model = self.canonicalize(model, &assms);
                self.fixed.union(&self.varmap.decode(&model))
            }
            None if optimum == best_dist => best_solution,
            None => {
                // The optimum is proven below the probe's distance but
                // the budget fired before a model at it could be
                // derived: report the probe model as best-so-far rather
                // than a Sat answer whose distance we cannot witness.
                drop(search_span);
                let stats = self.delta_stats(&base, None);
                let partial = Some(PartialResult::Model {
                    solution: best_solution,
                    distance: dist_base + best_dist,
                });
                return (
                    Outcome::Unknown {
                        phase: Phase::Search,
                        stats,
                        partial,
                    },
                    0,
                );
            }
        };
        drop(search_span);
        let stats = self.delta_stats(&base, None);
        (Outcome::Sat { solution, stats }, dist_base + optimum)
    }

    /// Enumerate up to `limit` distinct solutions (distinct over the
    /// free relations) with the given groups active, in canonical
    /// lexicographic order. Intended for exhaustive verification on
    /// small universes.
    ///
    /// Blocking clauses are gated behind a fresh per-call enumeration
    /// selector that is never assumed again afterwards, so enumeration
    /// leaves no trace in the warm engine.
    pub fn enumerate(
        &mut self,
        active: &[GroupId],
        limit: usize,
        budget: Budget,
    ) -> Result<Vec<Instance>, QueryError> {
        let base = self.stats_base();
        self.solver.set_budget(budget);
        #[cfg(any(test, feature = "fault-inject"))]
        if crate::fault::should_trip(Phase::Search) {
            return Err(QueryError::Exhausted {
                phase: Phase::Search,
                stats: self.delta_stats(&base, None),
            });
        }
        let esel = Lit::pos(self.solver.new_var());
        let mut assumptions = self.assumptions_for(active);
        assumptions.push(esel);
        let mut out = Vec::new();
        while out.len() < limit {
            match self.solver.solve_with_assumptions(&assumptions) {
                SolveResult::Sat(model) => {
                    let model = self.canonicalize(model, &assumptions);
                    out.push(self.fixed.union(&self.varmap.decode(&model)));
                    // Block this assignment of the free tuple vars,
                    // gated on the enumeration selector.
                    let mut blocking: Vec<Lit> = self
                        .varmap
                        .free_tuples()
                        .map(|(v, _, _)| Lit::new(v, !model.value(v)))
                        .collect();
                    if blocking.is_empty() {
                        break; // unique model
                    }
                    blocking.push(!esel);
                    self.solver.add_clause(blocking);
                }
                SolveResult::Unsat(_) => break,
                SolveResult::Unknown => {
                    return Err(QueryError::Exhausted {
                        phase: Phase::Search,
                        stats: self.delta_stats(&base, None),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Groups grounded + encoded by this engine so far.
    pub fn num_groups(&self) -> usize {
        self.selectors.len()
    }

    /// How many `ensure_group` calls did fresh ground/encode work.
    pub fn encoded_groups(&self) -> u64 {
        self.encoded_groups
    }

    /// How many `ensure_group` calls reused an existing encoding.
    pub fn reused_groups(&self) -> u64 {
        self.reused_groups
    }

    /// Subformula ground/encode cache hits across all `ensure_group`
    /// calls (formulas shared between distinct groups).
    pub fn ground_cache_hits(&self) -> u64 {
        self.ground_cache_hits
    }

    /// Subformula ground/encode cache misses (fresh ground + encode
    /// work) across all `ensure_group` calls.
    pub fn ground_cache_misses(&self) -> u64 {
        self.ground_cache_misses
    }

    /// The owned vocabulary (for decoding / debugging).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_logic::{Domain, PartyId, Term};

    struct Fix {
        u: Universe,
        v: Vocabulary,
        allow: RelId,
        atoms: Vec<muppet_logic::AtomId>,
    }

    fn fix() -> Fix {
        let mut u = Universe::new();
        let s = u.add_sort("Service");
        let atoms = vec![u.add_atom(s, "fe"), u.add_atom(s, "be"), u.add_atom(s, "db")];
        let mut v = Vocabulary::new();
        let allow = v.add_simple_rel("allow", vec![s, s], Domain::Party(PartyId(0)));
        Fix { u, v, allow, atoms }
    }

    fn engine(f: &Fix) -> IncrementalQuery {
        IncrementalQuery::new(
            &f.v,
            &f.u,
            &[f.allow],
            &PartialInstance::new(),
            Instance::new(),
        )
    }

    fn tuple_pred(f: &Fix, i: usize, j: usize) -> Formula {
        Formula::pred(f.allow, [Term::Const(f.atoms[i]), Term::Const(f.atoms[j])])
    }

    #[test]
    fn shared_subformulas_hit_the_ground_cache() {
        let f = fix();
        let shared = tuple_pred(&f, 0, 1);
        let own = tuple_pred(&f, 1, 2);
        let g1 = FormulaGroup::new("g1", vec![shared.clone()]);
        let g2 = FormulaGroup::new("g2", vec![shared.clone(), own]);
        let mut q = engine(&f);
        let b = Budget::unlimited();
        let i1 = q.ensure_group(&g1, &b).unwrap();
        let i2 = q.ensure_group(&g2, &b).unwrap();
        assert_ne!(i1, i2, "distinct groups get distinct selectors");
        assert_eq!(q.encoded_groups(), 2);
        assert_eq!(q.ground_cache_misses(), 2, "`shared` and `own` ground once each");
        assert_eq!(q.ground_cache_hits(), 1, "`shared` reused by the second group");
        // Both groups behave correctly despite the shared encoding.
        assert!(q.solve(&[i1, i2], Budget::unlimited()).is_sat());
        let neg = FormulaGroup::new("neg", vec![Formula::not(shared)]);
        let i3 = q.ensure_group(&neg, &b).unwrap();
        match q.solve(&[i1, i3], Budget::unlimited()) {
            Outcome::Unsat { mut core, .. } => {
                core.sort();
                assert_eq!(core, vec!["g1".to_string(), "neg".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn models_are_canonical_across_warm_state() {
        let f = fix();
        // allow(fe,fe) ∨ allow(fe,be): two minimal models; canonical
        // answer must be stable no matter what solved before.
        let goal = FormulaGroup::new(
            "or",
            vec![Formula::or([tuple_pred(&f, 0, 0), tuple_pred(&f, 0, 1)])],
        );
        let mut warm = engine(&f);
        let b = Budget::unlimited();
        let id = warm.ensure_group(&goal, &b).unwrap();
        let first = warm.solve(&[id], Budget::unlimited());
        // Perturb the warm solver with an unrelated (UNSAT) solve.
        let clash = FormulaGroup::new("clash", vec![tuple_pred(&f, 2, 2)]);
        let nclash = FormulaGroup::new("nclash", vec![Formula::not(tuple_pred(&f, 2, 2))]);
        let ic = warm.ensure_group(&clash, &b).unwrap();
        let inc = warm.ensure_group(&nclash, &b).unwrap();
        assert!(!warm.solve(&[ic, inc], Budget::unlimited()).is_sat());
        let again = warm.solve(&[id], Budget::unlimited());
        assert_eq!(
            first.solution(),
            again.solution(),
            "warm resolve must return the same canonical model"
        );
        // And a completely cold engine agrees byte-for-byte.
        let mut cold = engine(&f);
        let cid = cold.ensure_group(&goal, &b).unwrap();
        let cold_out = cold.solve(&[cid], Budget::unlimited());
        assert_eq!(first.solution(), cold_out.solution());
    }

    #[test]
    fn warm_solve_target_reuses_the_totalizer() {
        let f = fix();
        let goal = FormulaGroup::new("g", vec![tuple_pred(&f, 0, 1)]);
        let mut q = engine(&f);
        let id = q.ensure_group(&goal, &Budget::unlimited()).unwrap();
        let target = Instance::new();
        let (out1, d1) = q.solve_target(&[id], &target, Budget::unlimited());
        assert!(out1.is_sat());
        assert_eq!(d1, 1);
        assert_eq!(q.totalizers.len(), 1);
        let (out2, d2) = q.solve_target(&[id], &target, Budget::unlimited());
        assert_eq!(d2, 1);
        assert_eq!(out1.solution(), out2.solution());
        assert_eq!(q.totalizers.len(), 1, "same target reuses the cardinality network");
        // A plain solve on the same warm engine is unaffected by the
        // (assumption-gated) totalizer clauses.
        assert!(q.solve(&[id], Budget::unlimited()).is_sat());
    }

    #[test]
    fn core_guided_and_linear_target_strategies_agree() {
        let f = fix();
        // Two forced flips plus a one-of-two choice: the OLL ascent
        // sees both singleton cores (the forced tuples) and a
        // multi-indicator core (the disjunction), which exercises the
        // relaxation-sum path.
        let goal = FormulaGroup::new(
            "g",
            vec![
                tuple_pred(&f, 0, 1),
                tuple_pred(&f, 1, 2),
                Formula::or([tuple_pred(&f, 0, 0), tuple_pred(&f, 2, 2)]),
            ],
        );
        let target = Instance::new();
        let b = Budget::unlimited();
        let mut oll = engine(&f);
        assert_eq!(oll.target_strategy(), TargetStrategy::CoreGuided);
        let id = oll.ensure_group(&goal, &b).unwrap();
        let (out_oll, d_oll) = oll.solve_target(&[id], &target, Budget::unlimited());
        let mut lin = engine(&f);
        lin.set_target_strategy(TargetStrategy::Linear);
        let lid = lin.ensure_group(&goal, &b).unwrap();
        let (out_lin, d_lin) = lin.solve_target(&[lid], &target, Budget::unlimited());
        assert_eq!(d_oll, 3, "two forced tuples plus one disjunct");
        assert_eq!(d_lin, 3);
        assert_eq!(
            out_oll.solution(),
            out_lin.solution(),
            "strategies must return the byte-identical canonical model"
        );
        match out_oll {
            Outcome::Sat { stats, .. } => {
                assert!(stats.oll_cores >= 1, "core-guided run consumed no cores");
            }
            other => panic!("{other:?}"),
        }
        match out_lin {
            Outcome::Sat { stats, .. } => {
                assert_eq!(stats.oll_cores, 0, "linear run must not count OLL cores");
            }
            other => panic!("{other:?}"),
        }
        // Warm re-solve under the other strategy on the same engine
        // still agrees: the relaxation sums are assumption-gated.
        oll.set_target_strategy(TargetStrategy::Linear);
        let (out_again, d_again) = oll.solve_target(&[id], &target, Budget::unlimited());
        assert_eq!(d_again, 3);
        assert_eq!(out_again.solution(), out_lin.solution());
    }

    #[test]
    fn enumeration_leaves_the_warm_engine_reusable() {
        let f = fix();
        let t1 = vec![f.atoms[0], f.atoms[0]];
        let t2 = vec![f.atoms[0], f.atoms[1]];
        let mut bounds = PartialInstance::new();
        bounds.permit(f.allow, t1.clone());
        bounds.permit(f.allow, t2.clone());
        let goal = FormulaGroup::new(
            "or",
            vec![Formula::or([tuple_pred(&f, 0, 0), tuple_pred(&f, 0, 1)])],
        );
        let mut q = IncrementalQuery::new(&f.v, &f.u, &[f.allow], &bounds, Instance::new());
        let id = q.ensure_group(&goal, &Budget::unlimited()).unwrap();
        let models = q.enumerate(&[id], 10, Budget::unlimited()).unwrap();
        assert_eq!(models.len(), 3);
        // The blocking clauses are gated off: solves still see all
        // three models, and a second enumeration repeats exactly.
        assert!(q.solve(&[id], Budget::unlimited()).is_sat());
        let again = q.enumerate(&[id], 10, Budget::unlimited()).unwrap();
        assert_eq!(models, again, "canonical enumeration is deterministic");
    }
}
