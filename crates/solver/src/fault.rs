//! Fault-injection failpoints for exercising degradation paths.
//!
//! Compiled only under `cfg(test)` or the `fault-inject` feature. Tests
//! arm a phase with [`arm`]; the next `times` budget polls in that phase
//! report exhaustion as if a real budget had fired, letting deterministic
//! tests drive the Unknown/retry machinery without tuning real workloads
//! to straddle a deadline.
//!
//! State is thread-local, so parallel test threads do not interfere.
//!
//! For chaos testing there is additionally a **process-global**
//! probabilistic failpoint ([`arm_global`]): solver work happens on
//! daemon worker threads and portfolio threads the test never touches
//! directly, so a thread-local trigger cannot reach it. The global
//! failpoint trips every N-th matching poll process-wide, either
//! reporting exhaustion ([`Mode::Exhaust`]) or panicking outright
//! ([`Mode::Panic`]) to exercise panic isolation in callers.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::query::Phase;

thread_local! {
    static ARMED: Cell<Option<(Phase, u32)>> = const { Cell::new(None) };
}

/// What a tripped global failpoint does at the poll site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Report exhaustion, as if a real budget had fired.
    Exhaust,
    /// Panic at the poll site, exercising `catch_unwind` isolation.
    Panic,
}

/// Global failpoint state: 0 = disarmed, else `phase tag + 1`.
static GLOBAL_PHASE: AtomicU8 = AtomicU8::new(0);
/// Trip every N-th matching poll (0 treated as disarmed).
static GLOBAL_EVERY: AtomicU64 = AtomicU64::new(0);
/// 1 when tripping should panic instead of exhausting.
static GLOBAL_PANIC: AtomicU8 = AtomicU8::new(0);
/// Matching polls observed since arming.
static GLOBAL_POLLS: AtomicU64 = AtomicU64::new(0);

fn phase_tag(phase: Phase) -> u8 {
    match phase {
        Phase::Ground => 1,
        Phase::Encode => 2,
        Phase::Search => 3,
        Phase::Minimize => 4,
    }
}

/// Arm the process-global failpoint: every `every`-th budget poll of
/// `phase`, on any thread, trips with the given [`Mode`] until
/// [`disarm_global`]. `every == 0` disarms.
pub fn arm_global(phase: Phase, every: u64, mode: Mode) {
    GLOBAL_POLLS.store(0, Ordering::SeqCst);
    GLOBAL_EVERY.store(every, Ordering::SeqCst);
    GLOBAL_PANIC.store(u8::from(mode == Mode::Panic), Ordering::SeqCst);
    // Phase last: it is the arming gate read first by pollers.
    GLOBAL_PHASE.store(if every == 0 { 0 } else { phase_tag(phase) }, Ordering::SeqCst);
}

/// Disarm the process-global failpoint.
pub fn disarm_global() {
    GLOBAL_PHASE.store(0, Ordering::SeqCst);
}

/// Guard that disarms the global failpoint when dropped.
pub struct ArmedGlobal;

impl ArmedGlobal {
    /// Arm the global failpoint and return a disarm-on-drop guard.
    pub fn new(phase: Phase, every: u64, mode: Mode) -> ArmedGlobal {
        arm_global(phase, every, mode);
        ArmedGlobal
    }
}

impl Drop for ArmedGlobal {
    fn drop(&mut self) {
        disarm_global();
    }
}

/// The global half of the poll check. Panics when armed in
/// [`Mode::Panic`] and this poll is the trip.
fn global_should_trip(phase: Phase) -> bool {
    let armed = GLOBAL_PHASE.load(Ordering::Relaxed);
    if armed == 0 || armed != phase_tag(phase) {
        return false;
    }
    let every = GLOBAL_EVERY.load(Ordering::Relaxed);
    if every == 0 {
        return false;
    }
    let n = GLOBAL_POLLS.fetch_add(1, Ordering::Relaxed) + 1;
    if !n.is_multiple_of(every) {
        return false;
    }
    if GLOBAL_PANIC.load(Ordering::Relaxed) != 0 {
        panic!("fault-inject: injected panic at phase {phase}");
    }
    true
}

/// Arm the failpoint: the next `times` polls of `phase` trip, after which
/// the failpoint disarms itself.
pub fn arm(phase: Phase, times: u32) {
    ARMED.with(|a| a.set(Some((phase, times))));
}

/// Disarm any armed failpoint on this thread.
pub fn disarm() {
    ARMED.with(|a| a.set(None));
}

/// Called by the query pipeline at each budget poll site. Returns `true`
/// (and consumes one trip) when the armed failpoint matches `phase`.
pub(crate) fn should_trip(phase: Phase) -> bool {
    let local = ARMED.with(|a| match a.get() {
        Some((p, times)) if p == phase && times > 0 => {
            a.set(if times > 1 { Some((p, times - 1)) } else { None });
            true
        }
        _ => false,
    });
    local || global_should_trip(phase)
}

/// Guard that disarms the failpoint when dropped, keeping tests tidy even
/// on panic.
pub struct Armed;

impl Armed {
    /// Arm `phase` for `times` trips and return a disarm-on-drop guard.
    pub fn new(phase: Phase, times: u32) -> Armed {
        arm(phase, times);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        disarm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_exactly_times_then_disarms() {
        let _g = Armed::new(Phase::Ground, 2);
        assert!(should_trip(Phase::Ground));
        assert!(!should_trip(Phase::Encode)); // wrong phase: no trip, no consume
        assert!(should_trip(Phase::Ground));
        assert!(!should_trip(Phase::Ground));
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _g = Armed::new(Phase::Search, 5);
        }
        assert!(!should_trip(Phase::Search));
    }

    /// Both global-failpoint tests arm the same process-wide state, so
    /// they serialize on this lock; they use `Phase::Minimize`, which
    /// has no production poll site, so concurrently running solver
    /// tests can neither trip nor skew the counter.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn global_failpoint_trips_every_nth_poll_on_any_thread() {
        let _l = global_lock();
        let _g = ArmedGlobal::new(Phase::Minimize, 3, Mode::Exhaust);
        let tripped: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| s.spawn(|| (0..3).filter(|_| should_trip(Phase::Minimize)).count()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(tripped, 3, "9 polls at every=3 must trip exactly 3 times");
        assert!(!should_trip(Phase::Search), "wrong phase never trips");
        drop(_g);
        assert!(!should_trip(Phase::Minimize), "disarmed after drop");
    }

    #[test]
    fn global_panic_mode_panics_at_the_poll_site() {
        let _l = global_lock();
        let _g = ArmedGlobal::new(Phase::Minimize, 1, Mode::Panic);
        let r = std::panic::catch_unwind(|| should_trip(Phase::Minimize));
        disarm_global();
        assert!(r.is_err(), "panic mode must panic, not return");
    }
}
