//! Fault-injection failpoints for exercising degradation paths.
//!
//! Compiled only under `cfg(test)` or the `fault-inject` feature. Tests
//! arm a phase with [`arm`]; the next `times` budget polls in that phase
//! report exhaustion as if a real budget had fired, letting deterministic
//! tests drive the Unknown/retry machinery without tuning real workloads
//! to straddle a deadline.
//!
//! State is thread-local, so parallel test threads do not interfere.

use std::cell::Cell;

use crate::query::Phase;

thread_local! {
    static ARMED: Cell<Option<(Phase, u32)>> = const { Cell::new(None) };
}

/// Arm the failpoint: the next `times` polls of `phase` trip, after which
/// the failpoint disarms itself.
pub fn arm(phase: Phase, times: u32) {
    ARMED.with(|a| a.set(Some((phase, times))));
}

/// Disarm any armed failpoint on this thread.
pub fn disarm() {
    ARMED.with(|a| a.set(None));
}

/// Called by the query pipeline at each budget poll site. Returns `true`
/// (and consumes one trip) when the armed failpoint matches `phase`.
pub(crate) fn should_trip(phase: Phase) -> bool {
    ARMED.with(|a| match a.get() {
        Some((p, times)) if p == phase && times > 0 => {
            a.set(if times > 1 { Some((p, times - 1)) } else { None });
            true
        }
        _ => false,
    })
}

/// Guard that disarms the failpoint when dropped, keeping tests tidy even
/// on panic.
pub struct Armed;

impl Armed {
    /// Arm `phase` for `times` trips and return a disarm-on-drop guard.
    pub fn new(phase: Phase, times: u32) -> Armed {
        arm(phase, times);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        disarm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_exactly_times_then_disarms() {
        let _g = Armed::new(Phase::Ground, 2);
        assert!(should_trip(Phase::Ground));
        assert!(!should_trip(Phase::Encode)); // wrong phase: no trip, no consume
        assert!(should_trip(Phase::Ground));
        assert!(!should_trip(Phase::Ground));
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _g = Armed::new(Phase::Search, 5);
        }
        assert!(!should_trip(Phase::Search));
    }
}
