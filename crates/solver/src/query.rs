//! The query API: SAT questions about configurations.
//!
//! A [`Query`] packages what all of Muppet's algorithms share: a universe
//! and vocabulary, a set of *free* relations with bounds (the holes and
//! soft settings of `C??`), a *fixed* instance (structure plus any
//! already-committed configuration), and named groups of goal formulas.
//! `solve` answers Algs. 1–2's satisfiability questions, `solve_target`
//! answers Pardinus-style "closest model" questions (Fig. 8 minimal
//! edits), and `enumerate` lists models for exhaustive checks.

use std::fmt;

use muppet_logic::{Formula, Instance, PartialInstance, RelId, Universe, Vocabulary};
use muppet_portfolio::{solve_portfolio, PortfolioConfig, PortfolioSummary};
use muppet_sat::{mus, Budget, Lit, SolveResult, Solver};

use crate::ground::{ground, GExpr, GroundError};
use crate::totalizer::Totalizer;
use crate::tseitin::encode;
use crate::varmap::VarMap;

/// A named group of formulas. Groups are the unit of *blame*: an UNSAT
/// answer names the minimal set of groups that conflict. Typical groups
/// are one per goal row ("istio goal 2"), one per envelope predicate, or
/// one per structural axiom.
#[derive(Clone, Debug)]
pub struct FormulaGroup {
    /// Display name used in cores and feedback.
    pub name: String,
    /// The group's formulas (conjoined).
    pub formulas: Vec<Formula>,
}

impl FormulaGroup {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, formulas: Vec<Formula>) -> FormulaGroup {
        FormulaGroup {
            name: name.into(),
            formulas,
        }
    }
}

/// Counters from one query run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Free (undetermined) tuple variables.
    pub free_tuple_vars: usize,
    /// SAT conflicts during the run.
    pub conflicts: u64,
    /// SAT decisions during the run.
    pub decisions: u64,
    /// SAT propagations during the run.
    pub propagations: u64,
    /// SAT restarts during the run.
    pub restarts: u64,
    /// Portfolio aggregates when the search phase fanned out across
    /// diversified workers (`None` for a sequential solve).
    pub portfolio: Option<PortfolioSummary>,
}

impl fmt::Display for QueryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "free_vars={} conflicts={} decisions={} propagations={} restarts={}",
            self.free_tuple_vars, self.conflicts, self.decisions, self.propagations, self.restarts
        )?;
        if let Some(p) = &self.portfolio {
            write!(
                f,
                " workers={} winner={} shared_out={} shared_in={}",
                p.workers,
                p.winner.map_or_else(|| "-".to_string(), |w| w.to_string()),
                p.exported,
                p.imported
            )?;
        }
        Ok(())
    }
}

/// The pipeline phase a query was in when its budget fired — the "where
/// the time went" part of an exhaustion report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Grounding first-order goals to propositional structure.
    Ground,
    /// Tseitin-encoding ground formulas to CNF.
    Encode,
    /// CDCL model search.
    Search,
    /// Deletion-based core minimization (MUS extraction).
    Minimize,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Ground => write!(f, "ground"),
            Phase::Encode => write!(f, "encode"),
            Phase::Search => write!(f, "search"),
            Phase::Minimize => write!(f, "minimize"),
        }
    }
}

/// Best-effort artifact salvaged from a query whose budget fired.
#[derive(Clone, Debug)]
pub enum PartialResult {
    /// A sound but *unminimized* blame core: the budget fired during MUS
    /// extraction, after unsatisfiability was already established.
    Core(Vec<String>),
    /// A satisfying model whose edit distance to the target was not yet
    /// proven minimal (target-oriented search's best model so far).
    Model {
        /// The satisfying (but possibly non-closest) instance.
        solution: Instance,
        /// Its edit distance from the target.
        distance: usize,
    },
}

/// Result of [`Query::solve`].
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Satisfiable. `solution` is the fixed instance unioned with the
    /// solver's choices for the free relations — a complete configuration.
    Sat {
        /// The complete satisfying instance.
        solution: Instance,
        /// Work counters.
        stats: QueryStats,
    },
    /// Unsatisfiable. `core` is a *minimal* set of group names that are
    /// jointly contradictory (blame information, Sec. 4.3).
    Unsat {
        /// Minimal conflicting group names.
        core: Vec<String>,
        /// Work counters.
        stats: QueryStats,
    },
    /// A resource budget (deadline, conflict/propagation cap, or
    /// cancellation) fired before the query could answer. Carries where
    /// the work went and any best-effort artifact, so callers can report
    /// and degrade instead of losing everything.
    Unknown {
        /// The pipeline phase that was running when the budget fired.
        phase: Phase,
        /// Work counters accumulated before exhaustion.
        stats: QueryStats,
        /// Best-effort artifact, when one was established in time.
        partial: Option<PartialResult>,
    },
}

impl Outcome {
    /// `true` if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat { .. })
    }

    /// `true` if the budget fired before an answer.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Outcome::Unknown { .. })
    }

    /// The solution instance, if satisfiable.
    pub fn solution(&self) -> Option<&Instance> {
        match self {
            Outcome::Sat { solution, .. } => Some(solution),
            _ => None,
        }
    }

    /// The blame core, if unsatisfiable.
    pub fn core(&self) -> Option<&[String]> {
        match self {
            Outcome::Unsat { core, .. } => Some(core),
            _ => None,
        }
    }

    /// Work counters, whatever the verdict.
    pub fn stats(&self) -> &QueryStats {
        match self {
            Outcome::Sat { stats, .. }
            | Outcome::Unsat { stats, .. }
            | Outcome::Unknown { stats, .. } => stats,
        }
    }
}

/// Errors from query execution. Every variant that represents abandoned
/// solver work carries the [`QueryStats`] accumulated up to that point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A goal formula had a free variable.
    Ground(GroundError),
    /// A resource budget fired in an API (like enumeration) that has no
    /// way to express a partial answer. `solve`/`solve_target` report
    /// exhaustion as [`Outcome::Unknown`] instead.
    Exhausted {
        /// The pipeline phase that was running when the budget fired.
        phase: Phase,
        /// Work counters accumulated before exhaustion.
        stats: QueryStats,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Ground(e) => write!(f, "grounding failed: {e}"),
            QueryError::Exhausted { phase, stats } => {
                write!(f, "solver budget exhausted at phase {phase} ({stats})")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<GroundError> for QueryError {
    fn from(e: GroundError) -> QueryError {
        QueryError::Ground(e)
    }
}

/// How [`Query::build`] can fail before a solver exists.
enum BuildError {
    Ground(GroundError),
    Exhausted(Phase),
}

/// A configurable model-finding query. See the module docs.
pub struct Query<'a> {
    vocab: &'a Vocabulary,
    universe: &'a Universe,
    free_rels: Vec<RelId>,
    bounds: PartialInstance,
    fixed: Instance,
    groups: Vec<FormulaGroup>,
    minimize_cores: bool,
    symmetry_breaking: bool,
    budget: Budget,
    portfolio: Option<PortfolioConfig>,
}

impl<'a> Query<'a> {
    /// A query with no free relations, empty fixed instance and no goals.
    pub fn new(vocab: &'a Vocabulary, universe: &'a Universe) -> Query<'a> {
        Query {
            vocab,
            universe,
            free_rels: Vec::new(),
            bounds: PartialInstance::new(),
            fixed: Instance::new(),
            groups: Vec::new(),
            minimize_cores: true,
            symmetry_breaking: false,
            budget: Budget::unlimited(),
            portfolio: None,
        }
    }

    /// Install a resource [`Budget`] governing this query: the deadline,
    /// caps and cancellation token apply across grounding, encoding, the
    /// SAT search, and core minimization. The default is unlimited.
    pub fn set_budget(&mut self, budget: Budget) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Enable lex-leader symmetry breaking over interchangeable atoms
    /// (see [`crate::symmetry`]). Applies to [`Query::solve`] only:
    /// `solve_target` must see the whole model space to find the true
    /// nearest model, and `enumerate` must not skip symmetric models, so
    /// both ignore this flag.
    pub fn set_symmetry_breaking(&mut self, enable: bool) -> &mut Self {
        self.symmetry_breaking = enable;
        self
    }

    /// Whether UNSAT cores are shrunk to minimal ones (default: yes).
    /// Turning this off returns the solver's first core — faster but
    /// potentially blaming more groups than necessary (ablation A2).
    pub fn set_minimize_cores(&mut self, minimize: bool) -> &mut Self {
        self.minimize_cores = minimize;
        self
    }

    /// Fan the search phase out across a portfolio of diversified
    /// workers. `None` (the default) or a config with `threads <= 1`
    /// keeps the search sequential. Applies to [`Query::solve`] only:
    /// target-oriented solving and enumeration add permanent clauses
    /// mid-search and stay sequential.
    pub fn set_portfolio(&mut self, portfolio: Option<PortfolioConfig>) -> &mut Self {
        self.portfolio = portfolio;
        self
    }

    /// Declare `rel` as free (solver-decided).
    pub fn free_rel(&mut self, rel: RelId) -> &mut Self {
        if !self.free_rels.contains(&rel) {
            self.free_rels.push(rel);
        }
        self
    }

    /// Declare several relations free.
    pub fn free_rels(&mut self, rels: impl IntoIterator<Item = RelId>) -> &mut Self {
        for r in rels {
            self.free_rel(r);
        }
        self
    }

    /// Set partial-instance bounds for the free relations.
    pub fn set_bounds(&mut self, bounds: PartialInstance) -> &mut Self {
        self.bounds = bounds;
        self
    }

    /// Set the fixed instance (structure + committed configurations).
    pub fn set_fixed(&mut self, fixed: Instance) -> &mut Self {
        self.fixed = fixed;
        self
    }

    /// Add a named formula group.
    pub fn add_group(&mut self, group: FormulaGroup) -> &mut Self {
        self.groups.push(group);
        self
    }

    /// The declared free relations.
    pub fn free_relations(&self) -> &[RelId] {
        &self.free_rels
    }

    #[allow(clippy::type_complexity)]
    fn build(&self) -> Result<(Solver, VarMap, Vec<(String, Lit)>), BuildError> {
        let mut solver = Solver::new();
        let varmap = VarMap::build(
            self.vocab,
            self.universe,
            &self.free_rels,
            &self.bounds,
            &mut solver,
        );
        // Grounding: per-group, interruptible between groups.
        let mut ground_span = muppet_obs::span("ground");
        let mut ground_exprs = Vec::with_capacity(self.groups.len());
        for g in &self.groups {
            #[cfg(any(test, feature = "fault-inject"))]
            if crate::fault::should_trip(Phase::Ground) {
                return Err(BuildError::Exhausted(Phase::Ground));
            }
            if self.budget.poll().is_some() {
                return Err(BuildError::Exhausted(Phase::Ground));
            }
            let mut parts = g
                .formulas
                .iter()
                .map(|f| ground(f, &varmap, &self.fixed, self.universe))
                .collect::<Result<Vec<_>, _>>()
                .map_err(BuildError::Ground)?;
            let expr = if parts.len() == 1 {
                parts.pop().unwrap_or(GExpr::And(Vec::new()))
            } else {
                GExpr::And(parts)
            };
            ground_exprs.push(expr);
        }
        ground_span.record("groups", self.groups.len() as u64);
        ground_span.record("free_tuple_vars", varmap.num_free_vars() as u64);
        drop(ground_span);
        // Tseitin encoding: per-group, interruptible between groups.
        let mut encode_span = muppet_obs::span("encode");
        let mut selectors = Vec::with_capacity(self.groups.len());
        for (g, expr) in self.groups.iter().zip(&ground_exprs) {
            #[cfg(any(test, feature = "fault-inject"))]
            if crate::fault::should_trip(Phase::Encode) {
                return Err(BuildError::Exhausted(Phase::Encode));
            }
            if self.budget.poll().is_some() {
                return Err(BuildError::Exhausted(Phase::Encode));
            }
            let lit = encode(expr, &mut solver);
            let sel = Lit::pos(solver.new_var());
            solver.add_clause([!sel, lit]);
            selectors.push((g.name.clone(), sel));
        }
        encode_span.record("groups", self.groups.len() as u64);
        drop(encode_span);
        // The search phase enforces the rest of the budget inside the
        // CDCL loop.
        solver.set_budget(self.budget.clone());
        Ok((solver, varmap, selectors))
    }

    fn stats_of(varmap: &VarMap, solver: &Solver) -> QueryStats {
        QueryStats {
            free_tuple_vars: varmap.num_free_vars(),
            conflicts: solver.stats.conflicts,
            decisions: solver.stats.decisions,
            propagations: solver.stats.propagations,
            restarts: solver.stats.restarts,
            portfolio: None,
        }
    }

    /// Convert a pre-solver build abort into the structured outcome.
    fn exhausted_outcome(&self, phase: Phase) -> Outcome {
        Outcome::Unknown {
            phase,
            stats: QueryStats::default(),
            partial: None,
        }
    }

    /// Is the conjunction of all groups satisfiable over the bounds?
    ///
    /// Under a [`Budget`] this never hangs: on exhaustion it returns
    /// [`Outcome::Unknown`] naming the phase that was running, the work
    /// counters, and (when UNSAT was already established but the core
    /// was still being minimized) the unminimized core as a partial
    /// artifact.
    pub fn solve(&self) -> Result<Outcome, QueryError> {
        let (mut solver, varmap, selectors) = match self.build() {
            Ok(built) => built,
            Err(BuildError::Ground(e)) => return Err(QueryError::Ground(e)),
            Err(BuildError::Exhausted(phase)) => return Ok(self.exhausted_outcome(phase)),
        };
        if self.symmetry_breaking {
            let formulas: Vec<&Formula> = self
                .groups
                .iter()
                .flat_map(|g| g.formulas.iter())
                .collect();
            let classes = crate::symmetry::interchangeable_classes(
                self.vocab,
                self.universe,
                &formulas,
                &self.fixed,
                &self.bounds,
            );
            crate::symmetry::add_symmetry_breaking(
                &classes,
                &self.free_rels,
                self.vocab,
                self.universe,
                &varmap,
                &mut solver,
                crate::symmetry::DEFAULT_MAX_PAIRS,
            );
        }
        let assumptions: Vec<Lit> = selectors.iter().map(|(_, l)| *l).collect();
        Ok(run_sat_solve(
            &mut solver,
            &varmap,
            &selectors,
            &assumptions,
            self.minimize_cores,
            &self.fixed,
            QueryStats::default(),
            self.portfolio.as_ref(),
        ))
    }

    /// Find the satisfying instance *closest to `target`* (fewest tuple
    /// flips over the free relations). Returns the outcome and, when SAT,
    /// the achieved distance.
    ///
    /// This reproduces Pardinus's target-oriented model finding: the
    /// target is the administrator's rejected or preferred configuration,
    /// and the answer is the minimal edit of it that satisfies the goals.
    /// On budget exhaustion the returned [`Outcome::Unknown`] carries the
    /// best model found so far (feasible but not proven closest) as a
    /// [`PartialResult::Model`], so a counter-offer can still be made.
    pub fn solve_target(&self, target: &Instance) -> Result<(Outcome, usize), QueryError> {
        let (mut solver, varmap, selectors) = match self.build() {
            Ok(built) => built,
            Err(BuildError::Ground(e)) => return Err(QueryError::Ground(e)),
            Err(BuildError::Exhausted(phase)) => return Ok((self.exhausted_outcome(phase), 0)),
        };
        let assumptions: Vec<Lit> = selectors.iter().map(|(_, l)| *l).collect();
        #[cfg(any(test, feature = "fault-inject"))]
        if crate::fault::should_trip(Phase::Search) {
            return Ok((
                Outcome::Unknown {
                    phase: Phase::Search,
                    stats: Self::stats_of(&varmap, &solver),
                    partial: None,
                },
                0,
            ));
        }

        // Difference indicators: literal true iff the tuple's value in the
        // model differs from its value in the target.
        let mut diff_inputs = Vec::new();
        for (var, rel, tuple) in varmap.free_tuples() {
            let in_target = target.holds(rel, tuple);
            diff_inputs.push(Lit::new(var, !in_target));
        }
        // Pinned tuples that disagree with the target contribute a fixed
        // base distance no model can avoid.
        let mut base = 0usize;
        for &rel in &self.free_rels {
            let decl = self.vocab.rel(rel);
            for tuple in crate::varmap::tuple_product(self.universe, &decl.arg_sorts) {
                match varmap.state(rel, &tuple) {
                    Some(crate::varmap::TupleState::True)
                        if !target.holds(rel, &tuple) => {
                            base += 1;
                        }
                    Some(crate::varmap::TupleState::False)
                        if target.holds(rel, &tuple) => {
                            base += 1;
                        }
                    _ => {}
                }
            }
        }

        // Initial unconstrained probe: establishes feasibility, an upper
        // bound on the distance, and the best-effort model surfaced if
        // the budgeted distance search below exhausts.
        let names_of = |lits: &[Lit], selectors: &[(String, Lit)]| -> Vec<String> {
            selectors
                .iter()
                .filter(|(_, l)| lits.contains(l))
                .map(|(n, _)| n.clone())
                .collect()
        };
        let mut search_span = muppet_obs::span("search");
        search_span.attr("mode", "target");
        let (best_solution, best_dist) = match solver.solve_with_assumptions(&assumptions) {
            SolveResult::Sat(model) => {
                let dist = diff_inputs.iter().filter(|&&l| model.lit_value(l)).count();
                (self.fixed.union(&varmap.decode(&model)), dist)
            }
            SolveResult::Unsat(first_core) => {
                drop(search_span);
                // Infeasible at any distance: produce a core.
                let _minimize_span = muppet_obs::span("minimize");
                let core = match mus::shrink_core(&mut solver, &assumptions) {
                    mus::ShrinkResult::Minimal(core) => names_of(&core, &selectors),
                    mus::ShrinkResult::Sat => names_of(&first_core, &selectors),
                    mus::ShrinkResult::Exhausted { best } => {
                        let stats = Self::stats_of(&varmap, &solver);
                        let partial = Some(PartialResult::Core(names_of(
                            &best.unwrap_or(first_core),
                            &selectors,
                        )));
                        return Ok((
                            Outcome::Unknown {
                                phase: Phase::Minimize,
                                stats,
                                partial,
                            },
                            0,
                        ));
                    }
                };
                let stats = Self::stats_of(&varmap, &solver);
                return Ok((Outcome::Unsat { core, stats }, 0));
            }
            SolveResult::Unknown => {
                return Ok((
                    Outcome::Unknown {
                        phase: Phase::Search,
                        stats: Self::stats_of(&varmap, &solver),
                        partial: None,
                    },
                    0,
                ));
            }
        };

        let tot = Totalizer::build(&diff_inputs, &mut solver);
        // Linear search upward from distance 0, bounded above by the
        // probe's distance: minimal edits are small in practice, so this
        // touches few bounds.
        for k in 0..best_dist {
            let mut assms = assumptions.clone();
            assms.extend(tot.at_most(k));
            match solver.solve_with_assumptions(&assms) {
                SolveResult::Sat(model) => {
                    let solution = self.fixed.union(&varmap.decode(&model));
                    let stats = Self::stats_of(&varmap, &solver);
                    return Ok((Outcome::Sat { solution, stats }, base + k));
                }
                SolveResult::Unsat(_) => continue,
                SolveResult::Unknown => {
                    // Budget fired mid-search: the probe model is still a
                    // valid (if non-minimal) counter-offer.
                    let stats = Self::stats_of(&varmap, &solver);
                    let partial = Some(PartialResult::Model {
                        solution: best_solution,
                        distance: base + best_dist,
                    });
                    return Ok((
                        Outcome::Unknown {
                            phase: Phase::Search,
                            stats,
                            partial,
                        },
                        0,
                    ));
                }
            }
        }
        // No strictly closer model exists: the probe model is optimal.
        let stats = Self::stats_of(&varmap, &solver);
        Ok((
            Outcome::Sat {
                solution: best_solution,
                stats,
            },
            base + best_dist,
        ))
    }

    /// Enumerate up to `limit` distinct solutions (distinct over the free
    /// relations). Intended for exhaustive verification on small
    /// universes.
    pub fn enumerate(&self, limit: usize) -> Result<Vec<Instance>, QueryError> {
        let (mut solver, varmap, selectors) = match self.build() {
            Ok(parts) => parts,
            Err(BuildError::Ground(e)) => return Err(QueryError::Ground(e)),
            Err(BuildError::Exhausted(phase)) => {
                return Err(QueryError::Exhausted {
                    phase,
                    stats: QueryStats::default(),
                })
            }
        };
        #[cfg(any(test, feature = "fault-inject"))]
        if crate::fault::should_trip(Phase::Search) {
            return Err(QueryError::Exhausted {
                phase: Phase::Search,
                stats: Self::stats_of(&varmap, &solver),
            });
        }
        let assumptions: Vec<Lit> = selectors.iter().map(|(_, l)| *l).collect();
        let mut out = Vec::new();
        while out.len() < limit {
            match solver.solve_with_assumptions(&assumptions) {
                SolveResult::Sat(model) => {
                    out.push(self.fixed.union(&varmap.decode(&model)));
                    // Block this assignment of the free tuple vars.
                    let blocking: Vec<Lit> = varmap
                        .free_tuples()
                        .map(|(v, _, _)| Lit::new(v, !model.value(v)))
                        .collect();
                    if blocking.is_empty() {
                        break; // unique model
                    }
                    solver.add_clause(blocking);
                }
                SolveResult::Unsat(_) => break,
                SolveResult::Unknown => {
                    return Err(QueryError::Exhausted {
                        phase: Phase::Search,
                        stats: Self::stats_of(&varmap, &solver),
                    })
                }
            }
        }
        Ok(out)
    }
}

/// Shared search/minimize tail used by [`Query::solve`] and the warm
/// [`crate::prepared::PreparedQuery::solve`]: run the CDCL search under
/// the already-installed budget (fanning out across a portfolio when
/// `portfolio` says so), shrink cores when asked, and report work
/// counters as the delta from `base` (a cold query passes zeros; a warm
/// query passes the solver's counters before this solve).
///
/// The fault-injection check runs on the *calling* thread before any
/// fan-out (failpoints are thread-local), so a query under fault
/// injection always degrades to the sequential path.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by two call sites
pub(crate) fn run_sat_solve(
    solver: &mut Solver,
    varmap: &VarMap,
    selectors: &[(String, Lit)],
    assumptions: &[Lit],
    minimize_cores: bool,
    fixed: &Instance,
    base: QueryStats,
    portfolio: Option<&PortfolioConfig>,
) -> Outcome {
    let delta_stats = |solver: &Solver, summary: Option<PortfolioSummary>| QueryStats {
        free_tuple_vars: varmap.num_free_vars(),
        conflicts: solver.stats.conflicts.saturating_sub(base.conflicts),
        decisions: solver.stats.decisions.saturating_sub(base.decisions),
        propagations: solver.stats.propagations.saturating_sub(base.propagations),
        restarts: solver.stats.restarts.saturating_sub(base.restarts),
        portfolio: summary,
    };
    #[cfg(any(test, feature = "fault-inject"))]
    if crate::fault::should_trip(Phase::Search) {
        return Outcome::Unknown {
            phase: Phase::Search,
            stats: delta_stats(solver, None),
            partial: None,
        };
    }
    let mut summary: Option<PortfolioSummary> = None;
    let mut search_span = muppet_obs::span("search");
    let search_result = match portfolio {
        Some(cfg) if cfg.is_parallel() => {
            let (result, s) = solve_portfolio(solver, assumptions, cfg);
            summary = Some(s);
            result
        }
        _ => solver.solve_with_assumptions(assumptions),
    };
    if search_span.is_recording() {
        let d = delta_stats(solver, summary);
        search_span.record("conflicts", d.conflicts);
        search_span.record("decisions", d.decisions);
        search_span.record("propagations", d.propagations);
        search_span.record("restarts", d.restarts);
        search_span.attr(
            "result",
            match &search_result {
                SolveResult::Sat(_) => "sat",
                SolveResult::Unsat(_) => "unsat",
                SolveResult::Unknown => "unknown",
            },
        );
    }
    drop(search_span);
    match search_result {
        SolveResult::Sat(model) => {
            let solution = fixed.union(&varmap.decode(&model));
            let stats = delta_stats(solver, summary);
            Outcome::Sat { solution, stats }
        }
        SolveResult::Unsat(first_core) => {
            let names_of = |lits: &[Lit]| -> Vec<String> {
                selectors
                    .iter()
                    .filter(|(_, l)| lits.contains(l))
                    .map(|(n, _)| n.clone())
                    .collect()
            };
            let core_lits = if minimize_cores {
                let mut minimize_span = muppet_obs::span("minimize");
                let pre_conflicts = solver.stats.conflicts;
                let shrunk = mus::shrink_core(solver, assumptions);
                minimize_span
                    .record("conflicts", solver.stats.conflicts.saturating_sub(pre_conflicts));
                drop(minimize_span);
                match shrunk {
                    mus::ShrinkResult::Minimal(core) => core,
                    // The assumptions were just proved UNSAT, so a Sat
                    // answer here cannot happen; fall back to the first
                    // core rather than panic.
                    mus::ShrinkResult::Sat => first_core,
                    mus::ShrinkResult::Exhausted { best } => {
                        // UNSAT is established; surface the best
                        // (unminimized) core as a partial artifact.
                        let stats = delta_stats(solver, summary);
                        let partial = Some(PartialResult::Core(
                            names_of(&best.unwrap_or(first_core)),
                        ));
                        return Outcome::Unknown {
                            phase: Phase::Minimize,
                            stats,
                            partial,
                        };
                    }
                }
            } else {
                first_core
            };
            let core = names_of(&core_lits);
            let stats = delta_stats(solver, summary);
            Outcome::Unsat { core, stats }
        }
        SolveResult::Unknown => Outcome::Unknown {
            phase: Phase::Search,
            stats: delta_stats(solver, summary),
            partial: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_logic::{evaluate_closed, Domain, PartyId, Term};

    struct Fix {
        u: Universe,
        v: Vocabulary,
        s: muppet_logic::SortId,
        allow: RelId,
        listens: RelId,
        atoms: Vec<muppet_logic::AtomId>,
    }

    fn fix() -> Fix {
        let mut u = Universe::new();
        let s = u.add_sort("Service");
        let atoms = vec![u.add_atom(s, "fe"), u.add_atom(s, "be"), u.add_atom(s, "db")];
        let mut v = Vocabulary::new();
        let allow = v.add_simple_rel("allow", vec![s, s], Domain::Party(PartyId(0)));
        let listens = v.add_simple_rel("listens", vec![s], Domain::Structure);
        Fix { u, v, s, allow, listens, atoms }
    }

    #[test]
    fn synthesis_fills_free_relation() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let mut fixed = Instance::new();
        fixed.insert(f.listens, vec![f.atoms[1]]);
        // Goal: every listening service is allowed-from fe.
        let goal = Formula::forall(
            x,
            f.s,
            Formula::implies(
                Formula::pred(f.listens, [Term::Var(x)]),
                Formula::pred(f.allow, [Term::Const(f.atoms[0]), Term::Var(x)]),
            ),
        );
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .set_fixed(fixed.clone())
            .add_group(FormulaGroup::new("goal", vec![goal.clone()]));
        match q.solve().unwrap() {
            Outcome::Sat { solution, stats } => {
                assert!(solution.holds(f.allow, &[f.atoms[0], f.atoms[1]]));
                assert!(evaluate_closed(&goal, &solution, &f.u).unwrap());
                assert_eq!(stats.free_tuple_vars, 9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsat_core_names_minimal_groups() {
        let f = fix();
        let t = [f.atoms[0], f.atoms[1]];
        let pos = Formula::pred(f.allow, t.iter().map(|&a| Term::Const(a)));
        let neg = Formula::not(pos.clone());
        let other = Formula::pred(
            f.allow,
            [Term::Const(f.atoms[2]), Term::Const(f.atoms[2])],
        );
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .add_group(FormulaGroup::new("require", vec![pos]))
            .add_group(FormulaGroup::new("forbid", vec![neg]))
            .add_group(FormulaGroup::new("irrelevant", vec![other]));
        match q.solve().unwrap() {
            Outcome::Unsat { core, .. } => {
                let mut core = core;
                core.sort();
                assert_eq!(core, vec!["forbid".to_string(), "require".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bounds_pin_choices() {
        let f = fix();
        let t_req = vec![f.atoms[0], f.atoms[0]];
        let t_opt = vec![f.atoms[0], f.atoms[1]];
        let mut bounds = PartialInstance::new();
        bounds.require(f.allow, t_req.clone());
        bounds.permit(f.allow, t_opt.clone());
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow).set_bounds(bounds);
        match q.solve().unwrap() {
            Outcome::Sat { solution, .. } => {
                assert!(solution.holds(f.allow, &t_req));
                // Upper bound excludes everything else except t_opt.
                for a in &f.atoms {
                    for b in &f.atoms {
                        let t = vec![*a, *b];
                        if t != t_req && t != t_opt {
                            assert!(!solution.holds(f.allow, &t));
                        }
                    }
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn target_solving_returns_closest_model() {
        let f = fix();
        // Goal: allow(fe,be) must hold. Target: empty config. Minimal
        // edit = 1 (add just that tuple).
        let goal = Formula::pred(
            f.allow,
            [Term::Const(f.atoms[0]), Term::Const(f.atoms[1])],
        );
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .add_group(FormulaGroup::new("g", vec![goal]));
        let target = Instance::new();
        let (outcome, dist) = q.solve_target(&target).unwrap();
        match outcome {
            Outcome::Sat { solution, .. } => {
                assert_eq!(dist, 1);
                assert_eq!(solution.distance(&target), 1);
                assert!(solution.holds(f.allow, &[f.atoms[0], f.atoms[1]]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn target_solving_prefers_keeping_existing_tuples() {
        let f = fix();
        // Target has allow(db,db); goals don't mention it; the closest
        // model must keep it.
        let goal = Formula::pred(
            f.allow,
            [Term::Const(f.atoms[0]), Term::Const(f.atoms[1])],
        );
        let mut target = Instance::new();
        target.insert(f.allow, vec![f.atoms[2], f.atoms[2]]);
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .add_group(FormulaGroup::new("g", vec![goal]));
        let (outcome, dist) = q.solve_target(&target).unwrap();
        let solution = outcome.solution().unwrap().clone();
        assert_eq!(dist, 1);
        assert!(solution.holds(f.allow, &[f.atoms[2], f.atoms[2]]));
        assert!(solution.holds(f.allow, &[f.atoms[0], f.atoms[1]]));
    }

    #[test]
    fn target_base_distance_counts_pinned_disagreements() {
        let f = fix();
        let t = vec![f.atoms[0], f.atoms[0]];
        let mut bounds = PartialInstance::new();
        bounds.require(f.allow, t.clone()); // pinned true
        // Target disagrees: does not contain t. Everything else outside
        // the upper bound is pinned false and agrees with empty target.
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow).set_bounds(bounds);
        let (outcome, dist) = q.solve_target(&Instance::new()).unwrap();
        assert!(outcome.is_sat());
        assert_eq!(dist, 1);
    }

    #[test]
    fn enumerate_counts_models() {
        let f = fix();
        // allow(fe,fe) ∨ allow(fe,be), all other tuples excluded by upper
        // bound ⇒ exactly 3 models (TT, TF, FT).
        let t1 = vec![f.atoms[0], f.atoms[0]];
        let t2 = vec![f.atoms[0], f.atoms[1]];
        let mut bounds = PartialInstance::new();
        bounds.permit(f.allow, t1.clone());
        bounds.permit(f.allow, t2.clone());
        let goal = Formula::or([
            Formula::pred(f.allow, t1.iter().map(|&a| Term::Const(a))),
            Formula::pred(f.allow, t2.iter().map(|&a| Term::Const(a))),
        ]);
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .set_bounds(bounds)
            .add_group(FormulaGroup::new("g", vec![goal]));
        let models = q.enumerate(10).unwrap();
        assert_eq!(models.len(), 3);
        // All distinct and all satisfying.
        for (i, m) in models.iter().enumerate() {
            assert!(m.holds(f.allow, &t1) || m.holds(f.allow, &t2));
            for m2 in &models[i + 1..] {
                assert_ne!(m, m2);
            }
        }
    }

    #[test]
    fn enumerate_respects_limit() {
        let f = fix();
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow);
        let models = q.enumerate(5).unwrap();
        assert_eq!(models.len(), 5);
    }

    #[test]
    fn no_groups_means_any_instance_works() {
        let f = fix();
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow);
        assert!(q.solve().unwrap().is_sat());
    }

    #[test]
    fn symmetry_breaking_preserves_verdicts() {
        // ∃-style goal over interchangeable atoms: SAT with and without
        // SB; an UNSAT variant stays UNSAT.
        let f = fix();
        let mut q = Query::new(&f.v, &f.u);
        let t1 = Formula::pred(f.allow, [Term::Const(f.atoms[0]), Term::Const(f.atoms[0])]);
        // fe/be/db all appear as constants? atoms[0] does; atoms 1,2 are
        // interchangeable.
        q.free_rel(f.allow)
            .set_symmetry_breaking(true)
            .add_group(FormulaGroup::new("g", vec![t1.clone()]));
        assert!(q.solve().unwrap().is_sat());
        let mut q2 = Query::new(&f.v, &f.u);
        q2.free_rel(f.allow)
            .set_symmetry_breaking(true)
            .add_group(FormulaGroup::new("g", vec![t1.clone()]))
            .add_group(FormulaGroup::new("ng", vec![Formula::not(t1)]));
        match q2.solve().unwrap() {
            Outcome::Unsat { core, .. } => assert_eq!(core.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn symmetry_breaking_skipped_for_target_and_enumerate() {
        // enumerate must still see ALL models even with the flag set.
        let f = fix();
        let mut q = Query::new(&f.v, &f.u);
        let mut bounds = PartialInstance::new();
        // Two interchangeable-atom tuples only.
        bounds.permit(f.listens, vec![f.atoms[1]]);
        bounds.permit(f.listens, vec![f.atoms[2]]);
        q.free_rel(f.listens)
            .set_bounds(bounds)
            .set_symmetry_breaking(true);
        let models = q.enumerate(10).unwrap();
        assert_eq!(models.len(), 4, "all 2^2 models, symmetric ones included");
        // Target solving also ignores the flag: nearest model to
        // {listens(atom2)} is itself, not a canonical rotation.
        let mut target = Instance::new();
        target.insert(f.listens, vec![f.atoms[2]]);
        let (out, dist) = q.solve_target(&target).unwrap();
        assert!(out.is_sat());
        assert_eq!(dist, 0);
    }

    /// Relational pigeonhole: `sits ⊆ P×H`, every pigeon sits somewhere,
    /// no hole holds two pigeons. Pure quantifiers — every atom is
    /// interchangeable — so symmetry breaking should slash the conflict
    /// count on the UNSAT instance.
    fn php_query(
        pigeons: usize,
        holes: usize,
    ) -> (Universe, Vocabulary, muppet_logic::RelId) {
        let mut u = Universe::new();
        let ps = u.add_sort("P");
        let hs = u.add_sort("H");
        for i in 0..pigeons {
            u.add_atom(ps, format!("p{i}"));
        }
        for i in 0..holes {
            u.add_atom(hs, format!("h{i}"));
        }
        let mut v = Vocabulary::new();
        let sits = v.add_simple_rel("sits", vec![ps, hs], Domain::Party(PartyId(0)));
        (u, v, sits)
    }

    fn php_formulas(
        v: &mut Vocabulary,
        sits: muppet_logic::RelId,
    ) -> Vec<Formula> {
        let ps = muppet_logic::SortId(0);
        let hs = muppet_logic::SortId(1);
        let p = v.fresh_var();
        let p2 = v.fresh_var();
        let h = v.fresh_var();
        vec![
            Formula::forall(
                p,
                ps,
                Formula::exists(h, hs, Formula::pred(sits, [Term::Var(p), Term::Var(h)])),
            ),
            Formula::forall(
                h,
                hs,
                Formula::forall(
                    p,
                    ps,
                    Formula::forall(
                        p2,
                        ps,
                        Formula::implies(
                            Formula::and([
                                Formula::pred(sits, [Term::Var(p), Term::Var(h)]),
                                Formula::pred(sits, [Term::Var(p2), Term::Var(h)]),
                            ]),
                            Formula::Eq(Term::Var(p), Term::Var(p2)),
                        ),
                    ),
                ),
            ),
        ]
    }

    #[test]
    fn symmetry_breaking_slashes_pigeonhole_conflicts() {
        let (u, mut v, sits) = php_query(7, 6);
        let formulas = php_formulas(&mut v, sits);
        let run = |sb: bool| {
            let mut q = Query::new(&v, &u);
            q.free_rel(sits)
                .set_symmetry_breaking(sb)
                .add_group(FormulaGroup::new("php", formulas.clone()))
                .set_minimize_cores(false);
            match q.solve().unwrap() {
                Outcome::Unsat { stats, .. } => stats.conflicts,
                other => panic!("PHP(7,6) must be unsat, got {other:?}"),
            }
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without,
            "SB should prune the symmetric search: {with} vs {without} conflicts"
        );
    }

    #[test]
    fn symmetry_breaking_keeps_satisfiable_php_satisfiable() {
        let (u, mut v, sits) = php_query(5, 5);
        let formulas = php_formulas(&mut v, sits);
        let mut q = Query::new(&v, &u);
        q.free_rel(sits)
            .set_symmetry_breaking(true)
            .add_group(FormulaGroup::new("php", formulas.clone()));
        let Outcome::Sat { solution, .. } = q.solve().unwrap() else {
            panic!("PHP(5,5) is satisfiable");
        };
        // The model is a genuine perfect matching.
        for f in &formulas {
            assert!(muppet_logic::evaluate_closed(f, &solution, &u).unwrap());
        }
    }

    #[test]
    fn open_formula_reports_ground_error() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .add_group(FormulaGroup::new("open", vec![Formula::pred(
                f.allow,
                [Term::Var(x), Term::Var(x)],
            )]));
        assert!(matches!(q.solve(), Err(QueryError::Ground(_))));
    }
}
