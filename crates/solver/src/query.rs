//! The query API: SAT questions about configurations.
//!
//! A [`Query`] packages what all of Muppet's algorithms share: a universe
//! and vocabulary, a set of *free* relations with bounds (the holes and
//! soft settings of `C??`), a *fixed* instance (structure plus any
//! already-committed configuration), and named groups of goal formulas.
//! `solve` answers Algs. 1–2's satisfiability questions, `solve_target`
//! answers Pardinus-style "closest model" questions (Fig. 8 minimal
//! edits), and `enumerate` lists models for exhaustive checks.
//!
//! `Query` is a thin **one-shot facade** over the incremental engine
//! ([`crate::IncrementalQuery`], DESIGN.md §13): each call compiles the
//! groups into a fresh engine and delegates. Long-lived callers
//! (sessions, the daemon, negotiation loops) hold a warm engine instead
//! and pay the ground/encode cost once.

use std::fmt;

use muppet_logic::{Formula, Instance, PartialInstance, RelId, Universe, Vocabulary};
use muppet_portfolio::{PortfolioConfig, PortfolioSummary};
use muppet_sat::Budget;

use crate::ground::GroundError;
use crate::incremental::{GroupId, IncrementalQuery, PrepareError, TargetStrategy};

/// A named group of formulas. Groups are the unit of *blame*: an UNSAT
/// answer names the minimal set of groups that conflict. Typical groups
/// are one per goal row ("istio goal 2"), one per envelope predicate, or
/// one per structural axiom.
#[derive(Clone, Debug)]
pub struct FormulaGroup {
    /// Display name used in cores and feedback.
    pub name: String,
    /// The group's formulas (conjoined).
    pub formulas: Vec<Formula>,
    /// Identity tag folded into [`FormulaGroup::content_key`] alongside
    /// the display name. Callers that derive group names from mutable
    /// labels (party display names) set this to the stable id (the
    /// `PartyId`) so renaming a party cannot alias another party's
    /// cached encodings. Zero for groups whose name is the identity.
    pub tag: u64,
}

impl FormulaGroup {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, formulas: Vec<Formula>) -> FormulaGroup {
        FormulaGroup {
            name: name.into(),
            formulas,
            tag: 0,
        }
    }

    /// Attach an identity tag (builder style).
    pub fn with_tag(mut self, tag: u64) -> FormulaGroup {
        self.tag = tag;
        self
    }

    /// Content fingerprint of the group (tag + name + formulas) via the
    /// stable cross-process hasher. This is the incremental engine's
    /// dedup key: two groups with identical content share one encoding,
    /// so diffing these keys across two group sets predicts exactly
    /// which groups a warm engine will re-encode (the stream session's
    /// dirty-group report, DESIGN.md §16).
    pub fn content_key(&self) -> u128 {
        let mut fp = muppet_logic::fingerprint::Fingerprinter::new();
        fp.add_u64(self.tag);
        fp.add_str(&self.name);
        fp.add_u64(self.formulas.len() as u64);
        fp.add_hash(&self.formulas);
        fp.digest()
    }
}

/// Counters from one query run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Free (undetermined) tuple variables.
    pub free_tuple_vars: usize,
    /// SAT conflicts during the run.
    pub conflicts: u64,
    /// SAT decisions during the run.
    pub decisions: u64,
    /// SAT propagations during the run.
    pub propagations: u64,
    /// SAT restarts during the run.
    pub restarts: u64,
    /// Kernel inprocessing passes (subsumption/vivification sweeps at
    /// restart boundaries) during the run.
    pub inprocessings: u64,
    /// UNSAT cores consumed by core-guided (OLL) target optimization
    /// during the run; zero for plain solves and linear-search targets.
    pub oll_cores: u64,
    /// Portfolio aggregates when the search phase fanned out across
    /// diversified workers (`None` for a sequential solve).
    pub portfolio: Option<PortfolioSummary>,
}

impl fmt::Display for QueryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "free_vars={} conflicts={} decisions={} propagations={} restarts={}",
            self.free_tuple_vars, self.conflicts, self.decisions, self.propagations, self.restarts
        )?;
        if self.inprocessings > 0 {
            write!(f, " inprocessings={}", self.inprocessings)?;
        }
        if self.oll_cores > 0 {
            write!(f, " oll_cores={}", self.oll_cores)?;
        }
        if let Some(p) = &self.portfolio {
            write!(
                f,
                " workers={} winner={} shared_out={} shared_in={}",
                p.workers,
                p.winner.map_or_else(|| "-".to_string(), |w| w.to_string()),
                p.exported,
                p.imported
            )?;
        }
        Ok(())
    }
}

/// The pipeline phase a query was in when its budget fired — the "where
/// the time went" part of an exhaustion report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Grounding first-order goals to propositional structure.
    Ground,
    /// Tseitin-encoding ground formulas to CNF.
    Encode,
    /// CDCL model search.
    Search,
    /// Deletion-based core minimization (MUS extraction).
    Minimize,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Ground => write!(f, "ground"),
            Phase::Encode => write!(f, "encode"),
            Phase::Search => write!(f, "search"),
            Phase::Minimize => write!(f, "minimize"),
        }
    }
}

/// Best-effort artifact salvaged from a query whose budget fired.
#[derive(Clone, Debug)]
pub enum PartialResult {
    /// A sound but *unminimized* blame core: the budget fired during MUS
    /// extraction, after unsatisfiability was already established.
    Core(Vec<String>),
    /// A satisfying model whose edit distance to the target was not yet
    /// proven minimal (target-oriented search's best model so far).
    Model {
        /// The satisfying (but possibly non-closest) instance.
        solution: Instance,
        /// Its edit distance from the target.
        distance: usize,
    },
}

/// Result of [`Query::solve`].
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Satisfiable. `solution` is the fixed instance unioned with the
    /// solver's choices for the free relations — a complete configuration.
    Sat {
        /// The complete satisfying instance.
        solution: Instance,
        /// Work counters.
        stats: QueryStats,
    },
    /// Unsatisfiable. `core` is a *minimal* set of group names that are
    /// jointly contradictory (blame information, Sec. 4.3).
    Unsat {
        /// Minimal conflicting group names.
        core: Vec<String>,
        /// Work counters.
        stats: QueryStats,
    },
    /// A resource budget (deadline, conflict/propagation cap, or
    /// cancellation) fired before the query could answer. Carries where
    /// the work went and any best-effort artifact, so callers can report
    /// and degrade instead of losing everything.
    Unknown {
        /// The pipeline phase that was running when the budget fired.
        phase: Phase,
        /// Work counters accumulated before exhaustion.
        stats: QueryStats,
        /// Best-effort artifact, when one was established in time.
        partial: Option<PartialResult>,
    },
}

impl Outcome {
    /// `true` if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat { .. })
    }

    /// `true` if the budget fired before an answer.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Outcome::Unknown { .. })
    }

    /// The solution instance, if satisfiable.
    pub fn solution(&self) -> Option<&Instance> {
        match self {
            Outcome::Sat { solution, .. } => Some(solution),
            _ => None,
        }
    }

    /// The blame core, if unsatisfiable.
    pub fn core(&self) -> Option<&[String]> {
        match self {
            Outcome::Unsat { core, .. } => Some(core),
            _ => None,
        }
    }

    /// Work counters, whatever the verdict.
    pub fn stats(&self) -> &QueryStats {
        match self {
            Outcome::Sat { stats, .. }
            | Outcome::Unsat { stats, .. }
            | Outcome::Unknown { stats, .. } => stats,
        }
    }
}

/// Errors from query execution. Every variant that represents abandoned
/// solver work carries the [`QueryStats`] accumulated up to that point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A goal formula had a free variable.
    Ground(GroundError),
    /// A resource budget fired in an API (like enumeration) that has no
    /// way to express a partial answer. `solve`/`solve_target` report
    /// exhaustion as [`Outcome::Unknown`] instead.
    Exhausted {
        /// The pipeline phase that was running when the budget fired.
        phase: Phase,
        /// Work counters accumulated before exhaustion.
        stats: QueryStats,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Ground(e) => write!(f, "grounding failed: {e}"),
            QueryError::Exhausted { phase, stats } => {
                write!(f, "solver budget exhausted at phase {phase} ({stats})")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<GroundError> for QueryError {
    fn from(e: GroundError) -> QueryError {
        QueryError::Ground(e)
    }
}

/// How compiling the facade's groups into an engine can fail.
enum BuildError {
    Ground(GroundError),
    Exhausted(Phase),
}

/// A configurable model-finding query. See the module docs.
pub struct Query<'a> {
    vocab: &'a Vocabulary,
    universe: &'a Universe,
    free_rels: Vec<RelId>,
    bounds: PartialInstance,
    fixed: Instance,
    groups: Vec<FormulaGroup>,
    minimize_cores: bool,
    symmetry_breaking: bool,
    budget: Budget,
    portfolio: Option<PortfolioConfig>,
    target_strategy: TargetStrategy,
}

impl<'a> Query<'a> {
    /// A query with no free relations, empty fixed instance and no goals.
    pub fn new(vocab: &'a Vocabulary, universe: &'a Universe) -> Query<'a> {
        Query {
            vocab,
            universe,
            free_rels: Vec::new(),
            bounds: PartialInstance::new(),
            fixed: Instance::new(),
            groups: Vec::new(),
            minimize_cores: true,
            symmetry_breaking: false,
            budget: Budget::unlimited(),
            portfolio: None,
            target_strategy: TargetStrategy::default(),
        }
    }

    /// Install a resource [`Budget`] governing this query: the deadline,
    /// caps and cancellation token apply across grounding, encoding, the
    /// SAT search, and core minimization. The default is unlimited.
    pub fn set_budget(&mut self, budget: Budget) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Enable lex-leader symmetry breaking over interchangeable atoms
    /// (see [`crate::symmetry`]). Applies to [`Query::solve`] only:
    /// `solve_target` must see the whole model space to find the true
    /// nearest model, and `enumerate` must not skip symmetric models, so
    /// both ignore this flag.
    pub fn set_symmetry_breaking(&mut self, enable: bool) -> &mut Self {
        self.symmetry_breaking = enable;
        self
    }

    /// Whether UNSAT cores are shrunk to minimal ones (default: yes).
    /// Turning this off returns the solver's first core — faster but
    /// potentially blaming more groups than necessary (ablation A2).
    pub fn set_minimize_cores(&mut self, minimize: bool) -> &mut Self {
        self.minimize_cores = minimize;
        self
    }

    /// Fan the search phase out across a portfolio of diversified
    /// workers. `None` (the default) or a config with `threads <= 1`
    /// keeps the search sequential. Applies to [`Query::solve`] only:
    /// target-oriented solving and enumeration add permanent clauses
    /// mid-search and stay sequential.
    pub fn set_portfolio(&mut self, portfolio: Option<PortfolioConfig>) -> &mut Self {
        self.portfolio = portfolio;
        self
    }

    /// How [`Query::solve_target`] proves the minimal edit distance
    /// (default: core-guided OLL ascent). [`TargetStrategy::Linear`] is
    /// the pre-OLL baseline; both return byte-identical outcomes and
    /// distances, so this knob trades search trajectory for speed only.
    pub fn set_target_strategy(&mut self, strategy: TargetStrategy) -> &mut Self {
        self.target_strategy = strategy;
        self
    }

    /// Declare `rel` as free (solver-decided).
    pub fn free_rel(&mut self, rel: RelId) -> &mut Self {
        if !self.free_rels.contains(&rel) {
            self.free_rels.push(rel);
        }
        self
    }

    /// Declare several relations free.
    pub fn free_rels(&mut self, rels: impl IntoIterator<Item = RelId>) -> &mut Self {
        for r in rels {
            self.free_rel(r);
        }
        self
    }

    /// Set partial-instance bounds for the free relations.
    pub fn set_bounds(&mut self, bounds: PartialInstance) -> &mut Self {
        self.bounds = bounds;
        self
    }

    /// Set the fixed instance (structure + committed configurations).
    pub fn set_fixed(&mut self, fixed: Instance) -> &mut Self {
        self.fixed = fixed;
        self
    }

    /// Add a named formula group.
    pub fn add_group(&mut self, group: FormulaGroup) -> &mut Self {
        self.groups.push(group);
        self
    }

    /// The declared free relations.
    pub fn free_relations(&self) -> &[RelId] {
        &self.free_rels
    }

    /// Compile the facade's configuration into a fresh incremental
    /// engine with every group grounded + encoded, in declaration
    /// order.
    fn build(&self) -> Result<(IncrementalQuery, Vec<GroupId>), BuildError> {
        let mut engine = IncrementalQuery::new(
            self.vocab,
            self.universe,
            &self.free_rels,
            &self.bounds,
            self.fixed.clone(),
        );
        engine.set_minimize_cores(self.minimize_cores);
        engine.set_portfolio(self.portfolio);
        engine.set_target_strategy(self.target_strategy);
        let mut active = Vec::with_capacity(self.groups.len());
        for g in &self.groups {
            match engine.ensure_group(g, &self.budget) {
                Ok(id) => active.push(id),
                Err(PrepareError::Ground(e)) => return Err(BuildError::Ground(e)),
                Err(PrepareError::Exhausted(phase)) => return Err(BuildError::Exhausted(phase)),
            }
        }
        Ok((engine, active))
    }

    /// Convert a pre-solver build abort into the structured outcome.
    fn exhausted_outcome(&self, phase: Phase) -> Outcome {
        Outcome::Unknown {
            phase,
            stats: QueryStats::default(),
            partial: None,
        }
    }

    /// Is the conjunction of all groups satisfiable over the bounds?
    ///
    /// Under a [`Budget`] this never hangs: on exhaustion it returns
    /// [`Outcome::Unknown`] naming the phase that was running, the work
    /// counters, and (when UNSAT was already established but the core
    /// was still being minimized) the unminimized core as a partial
    /// artifact.
    pub fn solve(&self) -> Result<Outcome, QueryError> {
        let (mut engine, active) = match self.build() {
            Ok(built) => built,
            Err(BuildError::Ground(e)) => return Err(QueryError::Ground(e)),
            Err(BuildError::Exhausted(phase)) => return Ok(self.exhausted_outcome(phase)),
        };
        if self.symmetry_breaking {
            // Sound only because this engine is one-shot: the lex
            // clauses are permanent and goal-set dependent.
            engine.add_symmetry_breaking(&self.groups);
        }
        Ok(engine.solve(&active, self.budget.clone()))
    }

    /// Find the satisfying instance *closest to `target`* (fewest tuple
    /// flips over the free relations). Returns the outcome and, when SAT,
    /// the achieved distance.
    ///
    /// This reproduces Pardinus's target-oriented model finding: the
    /// target is the administrator's rejected or preferred configuration,
    /// and the answer is the minimal edit of it that satisfies the goals.
    /// On budget exhaustion the returned [`Outcome::Unknown`] carries the
    /// best model found so far (feasible but not proven closest) as a
    /// [`PartialResult::Model`], so a counter-offer can still be made.
    pub fn solve_target(&self, target: &Instance) -> Result<(Outcome, usize), QueryError> {
        let (mut engine, active) = match self.build() {
            Ok(built) => built,
            Err(BuildError::Ground(e)) => return Err(QueryError::Ground(e)),
            Err(BuildError::Exhausted(phase)) => return Ok((self.exhausted_outcome(phase), 0)),
        };
        Ok(engine.solve_target(&active, target, self.budget.clone()))
    }

    /// Enumerate up to `limit` distinct solutions (distinct over the free
    /// relations). Intended for exhaustive verification on small
    /// universes.
    pub fn enumerate(&self, limit: usize) -> Result<Vec<Instance>, QueryError> {
        let (mut engine, active) = match self.build() {
            Ok(built) => built,
            Err(BuildError::Ground(e)) => return Err(QueryError::Ground(e)),
            Err(BuildError::Exhausted(phase)) => {
                return Err(QueryError::Exhausted {
                    phase,
                    stats: QueryStats::default(),
                })
            }
        };
        engine.enumerate(&active, limit, self.budget.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_logic::{evaluate_closed, Domain, PartyId, Term};

    struct Fix {
        u: Universe,
        v: Vocabulary,
        s: muppet_logic::SortId,
        allow: RelId,
        listens: RelId,
        atoms: Vec<muppet_logic::AtomId>,
    }

    fn fix() -> Fix {
        let mut u = Universe::new();
        let s = u.add_sort("Service");
        let atoms = vec![u.add_atom(s, "fe"), u.add_atom(s, "be"), u.add_atom(s, "db")];
        let mut v = Vocabulary::new();
        let allow = v.add_simple_rel("allow", vec![s, s], Domain::Party(PartyId(0)));
        let listens = v.add_simple_rel("listens", vec![s], Domain::Structure);
        Fix { u, v, s, allow, listens, atoms }
    }

    #[test]
    fn synthesis_fills_free_relation() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let mut fixed = Instance::new();
        fixed.insert(f.listens, vec![f.atoms[1]]);
        // Goal: every listening service is allowed-from fe.
        let goal = Formula::forall(
            x,
            f.s,
            Formula::implies(
                Formula::pred(f.listens, [Term::Var(x)]),
                Formula::pred(f.allow, [Term::Const(f.atoms[0]), Term::Var(x)]),
            ),
        );
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .set_fixed(fixed.clone())
            .add_group(FormulaGroup::new("goal", vec![goal.clone()]));
        match q.solve().unwrap() {
            Outcome::Sat { solution, stats } => {
                assert!(solution.holds(f.allow, &[f.atoms[0], f.atoms[1]]));
                assert!(evaluate_closed(&goal, &solution, &f.u).unwrap());
                assert_eq!(stats.free_tuple_vars, 9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsat_core_names_minimal_groups() {
        let f = fix();
        let t = [f.atoms[0], f.atoms[1]];
        let pos = Formula::pred(f.allow, t.iter().map(|&a| Term::Const(a)));
        let neg = Formula::not(pos.clone());
        let other = Formula::pred(
            f.allow,
            [Term::Const(f.atoms[2]), Term::Const(f.atoms[2])],
        );
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .add_group(FormulaGroup::new("require", vec![pos]))
            .add_group(FormulaGroup::new("forbid", vec![neg]))
            .add_group(FormulaGroup::new("irrelevant", vec![other]));
        match q.solve().unwrap() {
            Outcome::Unsat { core, .. } => {
                let mut core = core;
                core.sort();
                assert_eq!(core, vec!["forbid".to_string(), "require".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bounds_pin_choices() {
        let f = fix();
        let t_req = vec![f.atoms[0], f.atoms[0]];
        let t_opt = vec![f.atoms[0], f.atoms[1]];
        let mut bounds = PartialInstance::new();
        bounds.require(f.allow, t_req.clone());
        bounds.permit(f.allow, t_opt.clone());
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow).set_bounds(bounds);
        match q.solve().unwrap() {
            Outcome::Sat { solution, .. } => {
                assert!(solution.holds(f.allow, &t_req));
                // Upper bound excludes everything else except t_opt.
                for a in &f.atoms {
                    for b in &f.atoms {
                        let t = vec![*a, *b];
                        if t != t_req && t != t_opt {
                            assert!(!solution.holds(f.allow, &t));
                        }
                    }
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn target_solving_returns_closest_model() {
        let f = fix();
        // Goal: allow(fe,be) must hold. Target: empty config. Minimal
        // edit = 1 (add just that tuple).
        let goal = Formula::pred(
            f.allow,
            [Term::Const(f.atoms[0]), Term::Const(f.atoms[1])],
        );
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .add_group(FormulaGroup::new("g", vec![goal]));
        let target = Instance::new();
        let (outcome, dist) = q.solve_target(&target).unwrap();
        match outcome {
            Outcome::Sat { solution, .. } => {
                assert_eq!(dist, 1);
                assert_eq!(solution.distance(&target), 1);
                assert!(solution.holds(f.allow, &[f.atoms[0], f.atoms[1]]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn target_solving_prefers_keeping_existing_tuples() {
        let f = fix();
        // Target has allow(db,db); goals don't mention it; the closest
        // model must keep it.
        let goal = Formula::pred(
            f.allow,
            [Term::Const(f.atoms[0]), Term::Const(f.atoms[1])],
        );
        let mut target = Instance::new();
        target.insert(f.allow, vec![f.atoms[2], f.atoms[2]]);
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .add_group(FormulaGroup::new("g", vec![goal]));
        let (outcome, dist) = q.solve_target(&target).unwrap();
        let solution = outcome.solution().unwrap().clone();
        assert_eq!(dist, 1);
        assert!(solution.holds(f.allow, &[f.atoms[2], f.atoms[2]]));
        assert!(solution.holds(f.allow, &[f.atoms[0], f.atoms[1]]));
    }

    #[test]
    fn target_base_distance_counts_pinned_disagreements() {
        let f = fix();
        let t = vec![f.atoms[0], f.atoms[0]];
        let mut bounds = PartialInstance::new();
        bounds.require(f.allow, t.clone()); // pinned true
        // Target disagrees: does not contain t. Everything else outside
        // the upper bound is pinned false and agrees with empty target.
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow).set_bounds(bounds);
        let (outcome, dist) = q.solve_target(&Instance::new()).unwrap();
        assert!(outcome.is_sat());
        assert_eq!(dist, 1);
    }

    #[test]
    fn enumerate_counts_models() {
        let f = fix();
        // allow(fe,fe) ∨ allow(fe,be), all other tuples excluded by upper
        // bound ⇒ exactly 3 models (TT, TF, FT).
        let t1 = vec![f.atoms[0], f.atoms[0]];
        let t2 = vec![f.atoms[0], f.atoms[1]];
        let mut bounds = PartialInstance::new();
        bounds.permit(f.allow, t1.clone());
        bounds.permit(f.allow, t2.clone());
        let goal = Formula::or([
            Formula::pred(f.allow, t1.iter().map(|&a| Term::Const(a))),
            Formula::pred(f.allow, t2.iter().map(|&a| Term::Const(a))),
        ]);
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .set_bounds(bounds)
            .add_group(FormulaGroup::new("g", vec![goal]));
        let models = q.enumerate(10).unwrap();
        assert_eq!(models.len(), 3);
        // All distinct and all satisfying.
        for (i, m) in models.iter().enumerate() {
            assert!(m.holds(f.allow, &t1) || m.holds(f.allow, &t2));
            for m2 in &models[i + 1..] {
                assert_ne!(m, m2);
            }
        }
    }

    #[test]
    fn enumerate_respects_limit() {
        let f = fix();
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow);
        let models = q.enumerate(5).unwrap();
        assert_eq!(models.len(), 5);
    }

    #[test]
    fn no_groups_means_any_instance_works() {
        let f = fix();
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow);
        assert!(q.solve().unwrap().is_sat());
    }

    #[test]
    fn symmetry_breaking_preserves_verdicts() {
        // ∃-style goal over interchangeable atoms: SAT with and without
        // SB; an UNSAT variant stays UNSAT.
        let f = fix();
        let mut q = Query::new(&f.v, &f.u);
        let t1 = Formula::pred(f.allow, [Term::Const(f.atoms[0]), Term::Const(f.atoms[0])]);
        // fe/be/db all appear as constants? atoms[0] does; atoms 1,2 are
        // interchangeable.
        q.free_rel(f.allow)
            .set_symmetry_breaking(true)
            .add_group(FormulaGroup::new("g", vec![t1.clone()]));
        assert!(q.solve().unwrap().is_sat());
        let mut q2 = Query::new(&f.v, &f.u);
        q2.free_rel(f.allow)
            .set_symmetry_breaking(true)
            .add_group(FormulaGroup::new("g", vec![t1.clone()]))
            .add_group(FormulaGroup::new("ng", vec![Formula::not(t1)]));
        match q2.solve().unwrap() {
            Outcome::Unsat { core, .. } => assert_eq!(core.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn symmetry_breaking_skipped_for_target_and_enumerate() {
        // enumerate must still see ALL models even with the flag set.
        let f = fix();
        let mut q = Query::new(&f.v, &f.u);
        let mut bounds = PartialInstance::new();
        // Two interchangeable-atom tuples only.
        bounds.permit(f.listens, vec![f.atoms[1]]);
        bounds.permit(f.listens, vec![f.atoms[2]]);
        q.free_rel(f.listens)
            .set_bounds(bounds)
            .set_symmetry_breaking(true);
        let models = q.enumerate(10).unwrap();
        assert_eq!(models.len(), 4, "all 2^2 models, symmetric ones included");
        // Target solving also ignores the flag: nearest model to
        // {listens(atom2)} is itself, not a canonical rotation.
        let mut target = Instance::new();
        target.insert(f.listens, vec![f.atoms[2]]);
        let (out, dist) = q.solve_target(&target).unwrap();
        assert!(out.is_sat());
        assert_eq!(dist, 0);
    }

    /// Relational pigeonhole: `sits ⊆ P×H`, every pigeon sits somewhere,
    /// no hole holds two pigeons. Pure quantifiers — every atom is
    /// interchangeable — so symmetry breaking should slash the conflict
    /// count on the UNSAT instance.
    fn php_query(
        pigeons: usize,
        holes: usize,
    ) -> (Universe, Vocabulary, muppet_logic::RelId) {
        let mut u = Universe::new();
        let ps = u.add_sort("P");
        let hs = u.add_sort("H");
        for i in 0..pigeons {
            u.add_atom(ps, format!("p{i}"));
        }
        for i in 0..holes {
            u.add_atom(hs, format!("h{i}"));
        }
        let mut v = Vocabulary::new();
        let sits = v.add_simple_rel("sits", vec![ps, hs], Domain::Party(PartyId(0)));
        (u, v, sits)
    }

    fn php_formulas(
        v: &mut Vocabulary,
        sits: muppet_logic::RelId,
    ) -> Vec<Formula> {
        let ps = muppet_logic::SortId(0);
        let hs = muppet_logic::SortId(1);
        let p = v.fresh_var();
        let p2 = v.fresh_var();
        let h = v.fresh_var();
        vec![
            Formula::forall(
                p,
                ps,
                Formula::exists(h, hs, Formula::pred(sits, [Term::Var(p), Term::Var(h)])),
            ),
            Formula::forall(
                h,
                hs,
                Formula::forall(
                    p,
                    ps,
                    Formula::forall(
                        p2,
                        ps,
                        Formula::implies(
                            Formula::and([
                                Formula::pred(sits, [Term::Var(p), Term::Var(h)]),
                                Formula::pred(sits, [Term::Var(p2), Term::Var(h)]),
                            ]),
                            Formula::Eq(Term::Var(p), Term::Var(p2)),
                        ),
                    ),
                ),
            ),
        ]
    }

    #[test]
    fn symmetry_breaking_slashes_pigeonhole_conflicts() {
        let (u, mut v, sits) = php_query(7, 6);
        let formulas = php_formulas(&mut v, sits);
        let run = |sb: bool| {
            let mut q = Query::new(&v, &u);
            q.free_rel(sits)
                .set_symmetry_breaking(sb)
                .add_group(FormulaGroup::new("php", formulas.clone()))
                .set_minimize_cores(false);
            match q.solve().unwrap() {
                Outcome::Unsat { stats, .. } => stats.conflicts,
                other => panic!("PHP(7,6) must be unsat, got {other:?}"),
            }
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without,
            "SB should prune the symmetric search: {with} vs {without} conflicts"
        );
    }

    #[test]
    fn symmetry_breaking_keeps_satisfiable_php_satisfiable() {
        let (u, mut v, sits) = php_query(5, 5);
        let formulas = php_formulas(&mut v, sits);
        let mut q = Query::new(&v, &u);
        q.free_rel(sits)
            .set_symmetry_breaking(true)
            .add_group(FormulaGroup::new("php", formulas.clone()));
        let Outcome::Sat { solution, .. } = q.solve().unwrap() else {
            panic!("PHP(5,5) is satisfiable");
        };
        // The model is a genuine perfect matching.
        for f in &formulas {
            assert!(muppet_logic::evaluate_closed(f, &solution, &u).unwrap());
        }
    }

    #[test]
    fn open_formula_reports_ground_error() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .add_group(FormulaGroup::new("open", vec![Formula::pred(
                f.allow,
                [Term::Var(x), Term::Var(x)],
            )]));
        assert!(matches!(q.solve(), Err(QueryError::Ground(_))));
    }
}
