//! The query API: SAT questions about configurations.
//!
//! A [`Query`] packages what all of Muppet's algorithms share: a universe
//! and vocabulary, a set of *free* relations with bounds (the holes and
//! soft settings of `C??`), a *fixed* instance (structure plus any
//! already-committed configuration), and named groups of goal formulas.
//! `solve` answers Algs. 1–2's satisfiability questions, `solve_target`
//! answers Pardinus-style "closest model" questions (Fig. 8 minimal
//! edits), and `enumerate` lists models for exhaustive checks.

use std::fmt;

use muppet_logic::{Formula, Instance, PartialInstance, RelId, Universe, Vocabulary};
use muppet_sat::{mus, Lit, SolveResult, Solver};

use crate::ground::{ground, GExpr, GroundError};
use crate::totalizer::Totalizer;
use crate::tseitin::encode;
use crate::varmap::VarMap;

/// A named group of formulas. Groups are the unit of *blame*: an UNSAT
/// answer names the minimal set of groups that conflict. Typical groups
/// are one per goal row ("istio goal 2"), one per envelope predicate, or
/// one per structural axiom.
#[derive(Clone, Debug)]
pub struct FormulaGroup {
    /// Display name used in cores and feedback.
    pub name: String,
    /// The group's formulas (conjoined).
    pub formulas: Vec<Formula>,
}

impl FormulaGroup {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, formulas: Vec<Formula>) -> FormulaGroup {
        FormulaGroup {
            name: name.into(),
            formulas,
        }
    }
}

/// Counters from one query run.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// Free (undetermined) tuple variables.
    pub free_tuple_vars: usize,
    /// SAT conflicts during the run.
    pub conflicts: u64,
    /// SAT decisions during the run.
    pub decisions: u64,
    /// SAT propagations during the run.
    pub propagations: u64,
}

/// Result of [`Query::solve`].
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Satisfiable. `solution` is the fixed instance unioned with the
    /// solver's choices for the free relations — a complete configuration.
    Sat {
        /// The complete satisfying instance.
        solution: Instance,
        /// Work counters.
        stats: QueryStats,
    },
    /// Unsatisfiable. `core` is a *minimal* set of group names that are
    /// jointly contradictory (blame information, Sec. 4.3).
    Unsat {
        /// Minimal conflicting group names.
        core: Vec<String>,
        /// Work counters.
        stats: QueryStats,
    },
}

impl Outcome {
    /// `true` if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat { .. })
    }

    /// The solution instance, if satisfiable.
    pub fn solution(&self) -> Option<&Instance> {
        match self {
            Outcome::Sat { solution, .. } => Some(solution),
            Outcome::Unsat { .. } => None,
        }
    }

    /// The blame core, if unsatisfiable.
    pub fn core(&self) -> Option<&[String]> {
        match self {
            Outcome::Unsat { core, .. } => Some(core),
            Outcome::Sat { .. } => None,
        }
    }
}

/// Errors from query execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A goal formula had a free variable.
    Ground(GroundError),
    /// The SAT solver gave up (only with an explicit conflict budget).
    Unknown,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Ground(e) => write!(f, "grounding failed: {e}"),
            QueryError::Unknown => write!(f, "solver budget exhausted"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<GroundError> for QueryError {
    fn from(e: GroundError) -> QueryError {
        QueryError::Ground(e)
    }
}

/// A configurable model-finding query. See the module docs.
pub struct Query<'a> {
    vocab: &'a Vocabulary,
    universe: &'a Universe,
    free_rels: Vec<RelId>,
    bounds: PartialInstance,
    fixed: Instance,
    groups: Vec<FormulaGroup>,
    minimize_cores: bool,
    symmetry_breaking: bool,
}

impl<'a> Query<'a> {
    /// A query with no free relations, empty fixed instance and no goals.
    pub fn new(vocab: &'a Vocabulary, universe: &'a Universe) -> Query<'a> {
        Query {
            vocab,
            universe,
            free_rels: Vec::new(),
            bounds: PartialInstance::new(),
            fixed: Instance::new(),
            groups: Vec::new(),
            minimize_cores: true,
            symmetry_breaking: false,
        }
    }

    /// Enable lex-leader symmetry breaking over interchangeable atoms
    /// (see [`crate::symmetry`]). Applies to [`Query::solve`] only:
    /// `solve_target` must see the whole model space to find the true
    /// nearest model, and `enumerate` must not skip symmetric models, so
    /// both ignore this flag.
    pub fn set_symmetry_breaking(&mut self, enable: bool) -> &mut Self {
        self.symmetry_breaking = enable;
        self
    }

    /// Whether UNSAT cores are shrunk to minimal ones (default: yes).
    /// Turning this off returns the solver's first core — faster but
    /// potentially blaming more groups than necessary (ablation A2).
    pub fn set_minimize_cores(&mut self, minimize: bool) -> &mut Self {
        self.minimize_cores = minimize;
        self
    }

    /// Declare `rel` as free (solver-decided).
    pub fn free_rel(&mut self, rel: RelId) -> &mut Self {
        if !self.free_rels.contains(&rel) {
            self.free_rels.push(rel);
        }
        self
    }

    /// Declare several relations free.
    pub fn free_rels(&mut self, rels: impl IntoIterator<Item = RelId>) -> &mut Self {
        for r in rels {
            self.free_rel(r);
        }
        self
    }

    /// Set partial-instance bounds for the free relations.
    pub fn set_bounds(&mut self, bounds: PartialInstance) -> &mut Self {
        self.bounds = bounds;
        self
    }

    /// Set the fixed instance (structure + committed configurations).
    pub fn set_fixed(&mut self, fixed: Instance) -> &mut Self {
        self.fixed = fixed;
        self
    }

    /// Add a named formula group.
    pub fn add_group(&mut self, group: FormulaGroup) -> &mut Self {
        self.groups.push(group);
        self
    }

    /// The declared free relations.
    pub fn free_relations(&self) -> &[RelId] {
        &self.free_rels
    }

    #[allow(clippy::type_complexity)]
    fn build(&self) -> Result<(Solver, VarMap, Vec<(String, Lit)>), QueryError> {
        let mut solver = Solver::new();
        let varmap = VarMap::build(
            self.vocab,
            self.universe,
            &self.free_rels,
            &self.bounds,
            &mut solver,
        );
        let mut selectors = Vec::with_capacity(self.groups.len());
        for g in &self.groups {
            let parts = g
                .formulas
                .iter()
                .map(|f| ground(f, &varmap, &self.fixed, self.universe))
                .collect::<Result<Vec<_>, _>>()?;
            let expr = if parts.len() == 1 {
                parts.into_iter().next().expect("len checked")
            } else {
                GExpr::And(parts)
            };
            let lit = encode(&expr, &mut solver);
            let sel = Lit::pos(solver.new_var());
            solver.add_clause([!sel, lit]);
            selectors.push((g.name.clone(), sel));
        }
        Ok((solver, varmap, selectors))
    }

    fn stats_of(varmap: &VarMap, solver: &Solver) -> QueryStats {
        QueryStats {
            free_tuple_vars: varmap.num_free_vars(),
            conflicts: solver.stats.conflicts,
            decisions: solver.stats.decisions,
            propagations: solver.stats.propagations,
        }
    }

    /// Is the conjunction of all groups satisfiable over the bounds?
    pub fn solve(&self) -> Result<Outcome, QueryError> {
        let (mut solver, varmap, selectors) = self.build()?;
        if self.symmetry_breaking {
            let formulas: Vec<&Formula> = self
                .groups
                .iter()
                .flat_map(|g| g.formulas.iter())
                .collect();
            let classes = crate::symmetry::interchangeable_classes(
                self.vocab,
                self.universe,
                &formulas,
                &self.fixed,
                &self.bounds,
            );
            crate::symmetry::add_symmetry_breaking(
                &classes,
                &self.free_rels,
                self.vocab,
                self.universe,
                &varmap,
                &mut solver,
                crate::symmetry::DEFAULT_MAX_PAIRS,
            );
        }
        let assumptions: Vec<Lit> = selectors.iter().map(|(_, l)| *l).collect();
        match solver.solve_with_assumptions(&assumptions) {
            SolveResult::Sat(model) => {
                let solution = self.fixed.union(&varmap.decode(&model));
                let stats = Self::stats_of(&varmap, &solver);
                Ok(Outcome::Sat { solution, stats })
            }
            SolveResult::Unsat(first_core) => {
                let core_lits = if self.minimize_cores {
                    mus::shrink_core(&mut solver, &assumptions).ok_or(QueryError::Unknown)?
                } else {
                    first_core
                };
                let core = selectors
                    .iter()
                    .filter(|(_, l)| core_lits.contains(l))
                    .map(|(n, _)| n.clone())
                    .collect();
                let stats = Self::stats_of(&varmap, &solver);
                Ok(Outcome::Unsat { core, stats })
            }
            SolveResult::Unknown => Err(QueryError::Unknown),
        }
    }

    /// Find the satisfying instance *closest to `target`* (fewest tuple
    /// flips over the free relations). Returns the outcome and, when SAT,
    /// the achieved distance.
    ///
    /// This reproduces Pardinus's target-oriented model finding: the
    /// target is the administrator's rejected or preferred configuration,
    /// and the answer is the minimal edit of it that satisfies the goals.
    pub fn solve_target(&self, target: &Instance) -> Result<(Outcome, usize), QueryError> {
        let (mut solver, varmap, selectors) = self.build()?;
        let assumptions: Vec<Lit> = selectors.iter().map(|(_, l)| *l).collect();

        // Difference indicators: literal true iff the tuple's value in the
        // model differs from its value in the target.
        let mut diff_inputs = Vec::new();
        for (var, rel, tuple) in varmap.free_tuples() {
            let in_target = target.holds(rel, tuple);
            diff_inputs.push(Lit::new(var, !in_target));
        }
        // Pinned tuples that disagree with the target contribute a fixed
        // base distance no model can avoid.
        let mut base = 0usize;
        for &rel in &self.free_rels {
            let decl = self.vocab.rel(rel);
            for tuple in crate::varmap::tuple_product(self.universe, &decl.arg_sorts) {
                match varmap.state(rel, &tuple) {
                    Some(crate::varmap::TupleState::True)
                        if !target.holds(rel, &tuple) => {
                            base += 1;
                        }
                    Some(crate::varmap::TupleState::False)
                        if target.holds(rel, &tuple) => {
                            base += 1;
                        }
                    _ => {}
                }
            }
        }

        let tot = Totalizer::build(&diff_inputs, &mut solver);
        // Linear search upward from distance 0: minimal edits are small in
        // practice, so this touches few bounds.
        for k in 0..=diff_inputs.len() {
            let mut assms = assumptions.clone();
            assms.extend(tot.at_most(k));
            match solver.solve_with_assumptions(&assms) {
                SolveResult::Sat(model) => {
                    let solution = self.fixed.union(&varmap.decode(&model));
                    let stats = Self::stats_of(&varmap, &solver);
                    return Ok((Outcome::Sat { solution, stats }, base + k));
                }
                SolveResult::Unsat(_) => continue,
                SolveResult::Unknown => return Err(QueryError::Unknown),
            }
        }
        // Even unconstrained distance is unsat: produce a core.
        let core_lits =
            mus::shrink_core(&mut solver, &assumptions).ok_or(QueryError::Unknown)?;
        let core = selectors
            .iter()
            .filter(|(_, l)| core_lits.contains(l))
            .map(|(n, _)| n.clone())
            .collect();
        let stats = Self::stats_of(&varmap, &solver);
        Ok((Outcome::Unsat { core, stats }, 0))
    }

    /// Enumerate up to `limit` distinct solutions (distinct over the free
    /// relations). Intended for exhaustive verification on small
    /// universes.
    pub fn enumerate(&self, limit: usize) -> Result<Vec<Instance>, QueryError> {
        let (mut solver, varmap, selectors) = self.build()?;
        let assumptions: Vec<Lit> = selectors.iter().map(|(_, l)| *l).collect();
        let mut out = Vec::new();
        while out.len() < limit {
            match solver.solve_with_assumptions(&assumptions) {
                SolveResult::Sat(model) => {
                    out.push(self.fixed.union(&varmap.decode(&model)));
                    // Block this assignment of the free tuple vars.
                    let blocking: Vec<Lit> = varmap
                        .free_tuples()
                        .map(|(v, _, _)| Lit::new(v, !model.value(v)))
                        .collect();
                    if blocking.is_empty() {
                        break; // unique model
                    }
                    solver.add_clause(blocking);
                }
                SolveResult::Unsat(_) => break,
                SolveResult::Unknown => return Err(QueryError::Unknown),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_logic::{evaluate_closed, Domain, PartyId, Term};

    struct Fix {
        u: Universe,
        v: Vocabulary,
        s: muppet_logic::SortId,
        allow: RelId,
        listens: RelId,
        atoms: Vec<muppet_logic::AtomId>,
    }

    fn fix() -> Fix {
        let mut u = Universe::new();
        let s = u.add_sort("Service");
        let atoms = vec![u.add_atom(s, "fe"), u.add_atom(s, "be"), u.add_atom(s, "db")];
        let mut v = Vocabulary::new();
        let allow = v.add_simple_rel("allow", vec![s, s], Domain::Party(PartyId(0)));
        let listens = v.add_simple_rel("listens", vec![s], Domain::Structure);
        Fix { u, v, s, allow, listens, atoms }
    }

    #[test]
    fn synthesis_fills_free_relation() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let mut fixed = Instance::new();
        fixed.insert(f.listens, vec![f.atoms[1]]);
        // Goal: every listening service is allowed-from fe.
        let goal = Formula::forall(
            x,
            f.s,
            Formula::implies(
                Formula::pred(f.listens, [Term::Var(x)]),
                Formula::pred(f.allow, [Term::Const(f.atoms[0]), Term::Var(x)]),
            ),
        );
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .set_fixed(fixed.clone())
            .add_group(FormulaGroup::new("goal", vec![goal.clone()]));
        match q.solve().unwrap() {
            Outcome::Sat { solution, stats } => {
                assert!(solution.holds(f.allow, &[f.atoms[0], f.atoms[1]]));
                assert!(evaluate_closed(&goal, &solution, &f.u).unwrap());
                assert_eq!(stats.free_tuple_vars, 9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsat_core_names_minimal_groups() {
        let f = fix();
        let t = [f.atoms[0], f.atoms[1]];
        let pos = Formula::pred(f.allow, t.iter().map(|&a| Term::Const(a)));
        let neg = Formula::not(pos.clone());
        let other = Formula::pred(
            f.allow,
            [Term::Const(f.atoms[2]), Term::Const(f.atoms[2])],
        );
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .add_group(FormulaGroup::new("require", vec![pos]))
            .add_group(FormulaGroup::new("forbid", vec![neg]))
            .add_group(FormulaGroup::new("irrelevant", vec![other]));
        match q.solve().unwrap() {
            Outcome::Unsat { core, .. } => {
                let mut core = core;
                core.sort();
                assert_eq!(core, vec!["forbid".to_string(), "require".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bounds_pin_choices() {
        let f = fix();
        let t_req = vec![f.atoms[0], f.atoms[0]];
        let t_opt = vec![f.atoms[0], f.atoms[1]];
        let mut bounds = PartialInstance::new();
        bounds.require(f.allow, t_req.clone());
        bounds.permit(f.allow, t_opt.clone());
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow).set_bounds(bounds);
        match q.solve().unwrap() {
            Outcome::Sat { solution, .. } => {
                assert!(solution.holds(f.allow, &t_req));
                // Upper bound excludes everything else except t_opt.
                for a in &f.atoms {
                    for b in &f.atoms {
                        let t = vec![*a, *b];
                        if t != t_req && t != t_opt {
                            assert!(!solution.holds(f.allow, &t));
                        }
                    }
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn target_solving_returns_closest_model() {
        let f = fix();
        // Goal: allow(fe,be) must hold. Target: empty config. Minimal
        // edit = 1 (add just that tuple).
        let goal = Formula::pred(
            f.allow,
            [Term::Const(f.atoms[0]), Term::Const(f.atoms[1])],
        );
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .add_group(FormulaGroup::new("g", vec![goal]));
        let target = Instance::new();
        let (outcome, dist) = q.solve_target(&target).unwrap();
        match outcome {
            Outcome::Sat { solution, .. } => {
                assert_eq!(dist, 1);
                assert_eq!(solution.distance(&target), 1);
                assert!(solution.holds(f.allow, &[f.atoms[0], f.atoms[1]]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn target_solving_prefers_keeping_existing_tuples() {
        let f = fix();
        // Target has allow(db,db); goals don't mention it; the closest
        // model must keep it.
        let goal = Formula::pred(
            f.allow,
            [Term::Const(f.atoms[0]), Term::Const(f.atoms[1])],
        );
        let mut target = Instance::new();
        target.insert(f.allow, vec![f.atoms[2], f.atoms[2]]);
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .add_group(FormulaGroup::new("g", vec![goal]));
        let (outcome, dist) = q.solve_target(&target).unwrap();
        let solution = outcome.solution().unwrap().clone();
        assert_eq!(dist, 1);
        assert!(solution.holds(f.allow, &[f.atoms[2], f.atoms[2]]));
        assert!(solution.holds(f.allow, &[f.atoms[0], f.atoms[1]]));
    }

    #[test]
    fn target_base_distance_counts_pinned_disagreements() {
        let f = fix();
        let t = vec![f.atoms[0], f.atoms[0]];
        let mut bounds = PartialInstance::new();
        bounds.require(f.allow, t.clone()); // pinned true
        // Target disagrees: does not contain t. Everything else outside
        // the upper bound is pinned false and agrees with empty target.
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow).set_bounds(bounds);
        let (outcome, dist) = q.solve_target(&Instance::new()).unwrap();
        assert!(outcome.is_sat());
        assert_eq!(dist, 1);
    }

    #[test]
    fn enumerate_counts_models() {
        let f = fix();
        // allow(fe,fe) ∨ allow(fe,be), all other tuples excluded by upper
        // bound ⇒ exactly 3 models (TT, TF, FT).
        let t1 = vec![f.atoms[0], f.atoms[0]];
        let t2 = vec![f.atoms[0], f.atoms[1]];
        let mut bounds = PartialInstance::new();
        bounds.permit(f.allow, t1.clone());
        bounds.permit(f.allow, t2.clone());
        let goal = Formula::or([
            Formula::pred(f.allow, t1.iter().map(|&a| Term::Const(a))),
            Formula::pred(f.allow, t2.iter().map(|&a| Term::Const(a))),
        ]);
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .set_bounds(bounds)
            .add_group(FormulaGroup::new("g", vec![goal]));
        let models = q.enumerate(10).unwrap();
        assert_eq!(models.len(), 3);
        // All distinct and all satisfying.
        for (i, m) in models.iter().enumerate() {
            assert!(m.holds(f.allow, &t1) || m.holds(f.allow, &t2));
            for m2 in &models[i + 1..] {
                assert_ne!(m, m2);
            }
        }
    }

    #[test]
    fn enumerate_respects_limit() {
        let f = fix();
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow);
        let models = q.enumerate(5).unwrap();
        assert_eq!(models.len(), 5);
    }

    #[test]
    fn no_groups_means_any_instance_works() {
        let f = fix();
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow);
        assert!(q.solve().unwrap().is_sat());
    }

    #[test]
    fn symmetry_breaking_preserves_verdicts() {
        // ∃-style goal over interchangeable atoms: SAT with and without
        // SB; an UNSAT variant stays UNSAT.
        let f = fix();
        let mut q = Query::new(&f.v, &f.u);
        let t1 = Formula::pred(f.allow, [Term::Const(f.atoms[0]), Term::Const(f.atoms[0])]);
        // fe/be/db all appear as constants? atoms[0] does; atoms 1,2 are
        // interchangeable.
        q.free_rel(f.allow)
            .set_symmetry_breaking(true)
            .add_group(FormulaGroup::new("g", vec![t1.clone()]));
        assert!(q.solve().unwrap().is_sat());
        let mut q2 = Query::new(&f.v, &f.u);
        q2.free_rel(f.allow)
            .set_symmetry_breaking(true)
            .add_group(FormulaGroup::new("g", vec![t1.clone()]))
            .add_group(FormulaGroup::new("ng", vec![Formula::not(t1)]));
        match q2.solve().unwrap() {
            Outcome::Unsat { core, .. } => assert_eq!(core.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn symmetry_breaking_skipped_for_target_and_enumerate() {
        // enumerate must still see ALL models even with the flag set.
        let f = fix();
        let mut q = Query::new(&f.v, &f.u);
        let mut bounds = PartialInstance::new();
        // Two interchangeable-atom tuples only.
        bounds.permit(f.listens, vec![f.atoms[1]]);
        bounds.permit(f.listens, vec![f.atoms[2]]);
        q.free_rel(f.listens)
            .set_bounds(bounds)
            .set_symmetry_breaking(true);
        let models = q.enumerate(10).unwrap();
        assert_eq!(models.len(), 4, "all 2^2 models, symmetric ones included");
        // Target solving also ignores the flag: nearest model to
        // {listens(atom2)} is itself, not a canonical rotation.
        let mut target = Instance::new();
        target.insert(f.listens, vec![f.atoms[2]]);
        let (out, dist) = q.solve_target(&target).unwrap();
        assert!(out.is_sat());
        assert_eq!(dist, 0);
    }

    /// Relational pigeonhole: `sits ⊆ P×H`, every pigeon sits somewhere,
    /// no hole holds two pigeons. Pure quantifiers — every atom is
    /// interchangeable — so symmetry breaking should slash the conflict
    /// count on the UNSAT instance.
    fn php_query(
        pigeons: usize,
        holes: usize,
    ) -> (Universe, Vocabulary, muppet_logic::RelId) {
        let mut u = Universe::new();
        let ps = u.add_sort("P");
        let hs = u.add_sort("H");
        for i in 0..pigeons {
            u.add_atom(ps, format!("p{i}"));
        }
        for i in 0..holes {
            u.add_atom(hs, format!("h{i}"));
        }
        let mut v = Vocabulary::new();
        let sits = v.add_simple_rel("sits", vec![ps, hs], Domain::Party(PartyId(0)));
        (u, v, sits)
    }

    fn php_formulas(
        v: &mut Vocabulary,
        sits: muppet_logic::RelId,
    ) -> Vec<Formula> {
        let ps = muppet_logic::SortId(0);
        let hs = muppet_logic::SortId(1);
        let p = v.fresh_var();
        let p2 = v.fresh_var();
        let h = v.fresh_var();
        vec![
            Formula::forall(
                p,
                ps,
                Formula::exists(h, hs, Formula::pred(sits, [Term::Var(p), Term::Var(h)])),
            ),
            Formula::forall(
                h,
                hs,
                Formula::forall(
                    p,
                    ps,
                    Formula::forall(
                        p2,
                        ps,
                        Formula::implies(
                            Formula::and([
                                Formula::pred(sits, [Term::Var(p), Term::Var(h)]),
                                Formula::pred(sits, [Term::Var(p2), Term::Var(h)]),
                            ]),
                            Formula::Eq(Term::Var(p), Term::Var(p2)),
                        ),
                    ),
                ),
            ),
        ]
    }

    #[test]
    fn symmetry_breaking_slashes_pigeonhole_conflicts() {
        let (u, mut v, sits) = php_query(7, 6);
        let formulas = php_formulas(&mut v, sits);
        let run = |sb: bool| {
            let mut q = Query::new(&v, &u);
            q.free_rel(sits)
                .set_symmetry_breaking(sb)
                .add_group(FormulaGroup::new("php", formulas.clone()))
                .set_minimize_cores(false);
            match q.solve().unwrap() {
                Outcome::Unsat { stats, .. } => stats.conflicts,
                Outcome::Sat { .. } => panic!("PHP(7,6) must be unsat"),
            }
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without,
            "SB should prune the symmetric search: {with} vs {without} conflicts"
        );
    }

    #[test]
    fn symmetry_breaking_keeps_satisfiable_php_satisfiable() {
        let (u, mut v, sits) = php_query(5, 5);
        let formulas = php_formulas(&mut v, sits);
        let mut q = Query::new(&v, &u);
        q.free_rel(sits)
            .set_symmetry_breaking(true)
            .add_group(FormulaGroup::new("php", formulas.clone()));
        let Outcome::Sat { solution, .. } = q.solve().unwrap() else {
            panic!("PHP(5,5) is satisfiable");
        };
        // The model is a genuine perfect matching.
        for f in &formulas {
            assert!(muppet_logic::evaluate_closed(f, &solution, &u).unwrap());
        }
    }

    #[test]
    fn open_formula_reports_ground_error() {
        let mut f = fix();
        let x = f.v.fresh_var();
        let mut q = Query::new(&f.v, &f.u);
        q.free_rel(f.allow)
            .add_group(FormulaGroup::new("open", vec![Formula::pred(
                f.allow,
                [Term::Var(x), Term::Var(x)],
            )]));
        assert!(matches!(q.solve(), Err(QueryError::Ground(_))));
    }
}
