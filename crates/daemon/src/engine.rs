//! The daemon engine: session registry, result cache, dispatch.
//!
//! [`Engine`] is `muppetd` with the sockets removed — tests, the bench
//! harness and the server all drive the same [`Engine::handle`] entry
//! point. It owns two layers of reuse:
//!
//! 1. **Warm sessions.** Specs are loaded once per content fingerprint
//!    and kept in a bounded registry. A warm session keeps its
//!    [`muppet_solver::PreparedStore`] (grounded formulas + CNF) alive,
//!    so repeat solves re-encode only groups a delta actually touched.
//! 2. **Content-addressed results.** Every solve answer is cached under
//!    a fingerprint of *exactly the inputs that feed it*, per
//!    operation. A consistency check hashes only that party's goal
//!    table; an envelope toward the tenant hashes only the provider's
//!    side (manifests, sender goals, the derived port universe, mTLS).
//!    That is what makes invalidation delta-aware: a tenant goal edit
//!    that leaves the port universe intact cannot evict the provider's
//!    envelope, while any hashed-input change lands on a fresh key.
//!
//! Soundness rule: only *definite* results enter the cache. An answer
//! produced under a fired budget (`exhausted` set, or the operation
//! aborted) is returned to its requester but never stored, so a cached
//! verdict always equals what a cold, unlimited solve would say.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use muppet::conformance::run_conformance_with_store;
use muppet::negotiate::{DropBlamedSoftGoals, Negotiator, Stubborn};
use muppet::{
    Budget, CancelToken, ConsistencyReport, Envelope, ExhaustionReport, MuppetError,
    QueryStats, Reconciliation, ReconcileMode, RetryPolicy, Session,
};
use muppet::default_threads;
use muppet_logic::{Instance, PartyId, Universe, Vocabulary};
use muppet_scenario::ConfigDelta;
use muppet_stream::{StreamSession, StreamSpec, StreamStats};

use muppet_obs::{registry, Counter, Gauge, Histogram};

use crate::cache::ResultCache;
use crate::json::Json;
use crate::proto::{Op, Request, Response};
use crate::spec::{SessionSpec, WarmSession};

use muppet::fingerprint::{hex as fingerprint_hex, parse_hex, Fingerprinter};

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Result-cache capacity (entries).
    pub cache_cap: usize,
    /// Maximum number of warm sessions kept resident.
    pub max_sessions: usize,
    /// Portfolio workers for the search phase of each solve (1 =
    /// sequential). A request's `threads` field overrides this; either
    /// way the queue accounting charges one slot per request, however
    /// many solver workers it fans out to.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cache_cap: 1024,
            max_sessions: 64,
            threads: default_threads(),
        }
    }
}

/// Admission-control and drain knobs. The **server** layer enforces
/// them (the engine itself never sheds — in-process callers like the
/// harness bypass admission by construction); the engine stores a copy
/// so the `stats` op can report the active limits next to the shed
/// counters they produce.
#[derive(Clone, Copy, Debug)]
pub struct OverloadConfig {
    /// Maximum accepted-but-not-yet-running requests in the shared job
    /// queue; pushes beyond it are shed with `overloaded`. 0 = unbounded
    /// (the pre-admission-control behavior).
    pub max_queue_depth: usize,
    /// Maximum in-flight (queued + running) requests per client
    /// connection; excess pipelined requests are shed. 0 = unlimited.
    pub max_inflight_per_conn: usize,
    /// The `retry_after_ms` hint attached to shed responses.
    pub retry_after_ms: u64,
    /// After a shutdown begins, how long in-flight work may keep
    /// running before its cancel tokens fire (milliseconds).
    pub drain_deadline_ms: u64,
    /// How long a connection may stall mid-line before the server
    /// drops it (milliseconds); idle connections *between* requests are
    /// unaffected. 0 disables the timeout.
    pub read_timeout_ms: u64,
}

impl Default for OverloadConfig {
    fn default() -> OverloadConfig {
        OverloadConfig {
            max_queue_depth: 256,
            max_inflight_per_conn: 32,
            retry_after_ms: 50,
            drain_deadline_ms: 5_000,
            read_timeout_ms: 30_000,
        }
    }
}

/// Why the server shed a request (for counters and shed messages).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The shared job queue was at `max_queue_depth`.
    QueueFull,
    /// The connection was at `max_inflight_per_conn`.
    ConnCap,
    /// The server is draining after a shutdown request.
    Draining,
}

impl ShedReason {
    /// The human-readable `error` string on the shed response.
    pub fn message(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "overloaded: job queue full",
            ShedReason::ConnCap => "overloaded: connection in-flight cap reached",
            ShedReason::Draining => "overloaded: server is draining",
        }
    }
}

/// Warm-session registry: fingerprint → session, FIFO-bounded.
struct Registry {
    map: HashMap<u128, Arc<Mutex<WarmSession>>>,
    order: Vec<u128>,
}

/// Streaming-watch registry: watch id → live multi-shot session,
/// FIFO-bounded at the same cap as warm sessions. Unlike warm sessions
/// (content-addressed, shareable), every `watch` call mints a fresh id:
/// a watch is *mutable* state owned by whoever holds the id.
struct WatchRegistry {
    map: HashMap<String, Arc<Mutex<StreamSession>>>,
    order: Vec<String>,
    next_id: u64,
}

/// Per-operation latency accumulator.
#[derive(Default)]
struct OpLatency {
    count: u64,
    total_us: u64,
}

/// The daemon engine. Thread-safe: share it behind an [`Arc`] and call
/// [`Engine::handle`] from any number of worker threads.
pub struct Engine {
    config: EngineConfig,
    sessions: Mutex<Registry>,
    watches: Mutex<WatchRegistry>,
    cache: Mutex<ResultCache>,
    requests: AtomicU64,
    errors: AtomicU64,
    in_flight: AtomicU64,
    /// Updated by the server's queue; a plain gauge for `stats`.
    queue_depth: AtomicU64,
    /// Highest queue depth ever observed (admission-control telemetry).
    queue_highwater: AtomicU64,
    /// Requests shed at admission, by reason.
    shed_queue_full: AtomicU64,
    shed_conn_cap: AtomicU64,
    shed_draining: AtomicU64,
    /// Graceful drains: how many, the last one's duration, and how many
    /// stragglers had to be cancelled at the deadline, cumulatively.
    drains: AtomicU64,
    drain_last_us: AtomicU64,
    drain_cancelled: AtomicU64,
    /// The server's admission limits, when it registered them.
    overload_limits: Mutex<Option<OverloadConfig>>,
    latencies: Mutex<HashMap<&'static str, OpLatency>>,
    /// Portfolio aggregates across all solves (for `stats`).
    pf_solves: AtomicU64,
    pf_exported: AtomicU64,
    pf_imported: AtomicU64,
    pf_restarts: AtomicU64,
    /// Global-registry handles, fetched once so the per-request path
    /// ticks atomics without touching the registry's maps.
    obs_requests: Counter,
    obs_errors: Counter,
    obs_shed: Counter,
    obs_queue_highwater: Gauge,
    obs_drain_duration: Arc<Histogram>,
    obs_latency: HashMap<&'static str, Arc<Histogram>>,
}

/// RAII guard for the in-flight gauge.
struct InFlight<'a>(&'a AtomicU64);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Ignore mutex poisoning: engine state is counters and caches, all of
/// which stay internally consistent even if a panicking thread held the
/// lock mid-update (worst case a cache entry or counter tick is lost).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Engine {
    /// Every operation the engine answers (for pre-created latency
    /// histograms).
    const ALL_OPS: [Op; 13] = [
        Op::OpenSession,
        Op::CheckConsistency,
        Op::Reconcile,
        Op::ExtractEnvelope,
        Op::CheckConformance,
        Op::NegotiateRound,
        Op::Stats,
        Op::Trace,
        Op::Watch,
        Op::PushDelta,
        Op::Subscribe,
        Op::Unwatch,
        Op::Shutdown,
    ];

    /// A fresh engine. Turns span collection on process-wide so the
    /// `trace` op always has recent trees to serve.
    pub fn new(config: EngineConfig) -> Engine {
        muppet_obs::set_enabled(true);
        Engine {
            config,
            sessions: Mutex::new(Registry {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            watches: Mutex::new(WatchRegistry {
                map: HashMap::new(),
                order: Vec::new(),
                next_id: 0,
            }),
            cache: Mutex::new(ResultCache::new(config.cache_cap)),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_highwater: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_conn_cap: AtomicU64::new(0),
            shed_draining: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            drain_last_us: AtomicU64::new(0),
            drain_cancelled: AtomicU64::new(0),
            overload_limits: Mutex::new(None),
            latencies: Mutex::new(HashMap::new()),
            pf_solves: AtomicU64::new(0),
            pf_exported: AtomicU64::new(0),
            pf_imported: AtomicU64::new(0),
            pf_restarts: AtomicU64::new(0),
            obs_requests: registry().counter("daemon.requests"),
            obs_errors: registry().counter("daemon.errors"),
            obs_shed: registry().counter("daemon.shed"),
            obs_queue_highwater: registry().gauge("daemon.queue.highwater"),
            obs_drain_duration: registry().histogram("daemon.drain.duration_us"),
            obs_latency: Engine::ALL_OPS
                .iter()
                .map(|op| {
                    let name = op.name();
                    (name, registry().histogram(&format!("daemon.op.{name}.latency_us")))
                })
                .collect(),
        }
    }

    /// Record that a request was queued (server side). Also tracks the
    /// queue-depth high-watermark, the number admission control would
    /// have needed to contain.
    pub fn note_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        let high = self.queue_highwater.fetch_max(depth, Ordering::Relaxed).max(depth);
        self.obs_queue_highwater.set(high);
    }

    /// Record that a queued request was picked up (server side).
    pub fn note_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Record a shed request (server side admission control).
    pub fn note_shed(&self, reason: ShedReason) {
        match reason {
            ShedReason::QueueFull => &self.shed_queue_full,
            ShedReason::ConnCap => &self.shed_conn_cap,
            ShedReason::Draining => &self.shed_draining,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.obs_shed.inc();
    }

    /// Record a completed graceful drain: how long from stop to the
    /// last in-flight request finishing, and how many stragglers had to
    /// be cancelled at the deadline.
    pub fn note_drain(&self, duration: Duration, cancelled: u64) {
        self.drains.fetch_add(1, Ordering::Relaxed);
        let us = duration.as_micros().min(u128::from(u64::MAX)) as u64;
        self.drain_last_us.store(us, Ordering::Relaxed);
        self.drain_cancelled.fetch_add(cancelled, Ordering::Relaxed);
        self.obs_drain_duration.observe_us(us);
    }

    /// Register the server's admission limits so `stats` can report
    /// them alongside the shed counters.
    pub fn set_overload_limits(&self, limits: OverloadConfig) {
        *relock(&self.overload_limits) = Some(limits);
    }

    /// Handle one request. `cancel` (when given) is polled by the
    /// solver between propagations — cancelling it aborts the request's
    /// solve work at the next budget check.
    pub fn handle(&self, req: &Request, cancel: Option<&CancelToken>) -> Response {
        let start = Instant::now();
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.obs_requests.inc();
        // `stats` is excluded from the in-flight gauge so the number it
        // reports is exactly the *other* work in progress — tracking it
        // and fudging the report with a `- 1` would undercount whenever
        // two stats requests overlap.
        let track = req.op != Op::Stats;
        let _guard = track.then(|| {
            self.in_flight.fetch_add(1, Ordering::Relaxed);
            InFlight(&self.in_flight)
        });
        let mut span = muppet_obs::span("request");
        span.attr("op", req.op.name());
        let mut resp = match self.dispatch(req, cancel, &mut span) {
            Ok(resp) => resp,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.obs_errors.inc();
                Response::failure(req.id.clone(), e)
            }
        };
        resp.id = req.id.clone();
        resp.elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        span.attr("ok", if resp.ok { "true" } else { "false" });
        drop(span);
        if let Some(h) = self.obs_latency.get(req.op.name()) {
            h.observe_us(resp.elapsed_us);
        }
        let mut lat = relock(&self.latencies);
        let slot = lat.entry(req.op.name()).or_default();
        slot.count += 1;
        slot.total_us += resp.elapsed_us;
        resp
    }

    fn dispatch(
        &self,
        req: &Request,
        cancel: Option<&CancelToken>,
        span: &mut muppet_obs::SpanGuard,
    ) -> Result<Response, String> {
        match req.op {
            Op::Stats => return Ok(Response::success(None, self.stats_json())),
            Op::Trace => return Ok(Response::success(None, trace_json(req.n))),
            // The server intercepts shutdown to stop its threads; the
            // engine just acknowledges so in-process drivers get a
            // well-formed response too. The ack names the drain
            // contract: already-accepted work finishes (or is cancelled
            // at `drain_deadline_ms`), new work is shed as overloaded.
            Op::Shutdown => {
                let mut pairs = vec![
                    ("stopping".to_string(), Json::Bool(true)),
                    ("draining".to_string(), Json::Bool(true)),
                ];
                if let Some(l) = *relock(&self.overload_limits) {
                    pairs.push(("drain_deadline_ms".to_string(), Json::num(l.drain_deadline_ms)));
                }
                return Ok(Response::success(None, Json::Obj(pairs)));
            }
            // Streaming ops live in their own registry of *mutable*
            // watch sessions: never content-cached, never fingerprint
            // keyed — a watch is identified by the id `watch` minted.
            Op::Watch => return self.op_watch(req, span),
            Op::PushDelta => return self.op_push_delta(req, span),
            Op::Subscribe => return self.op_subscribe(req),
            Op::Unwatch => return self.op_unwatch(req),
            _ => {}
        }
        let (handle, hex_fp) = self.resolve_session(req)?;
        span.attr("session", hex_fp.clone());
        if req.op == Op::OpenSession {
            let ws = relock(&handle);
            let model = &ws.core.model;
            let mut pairs = vec![
                ("session".to_string(), Json::str(&hex_fp)),
                ("domain".to_string(), Json::str(model.domain)),
                ("services".to_string(), Json::num(model.services as u64)),
                (
                    "ports".to_string(),
                    Json::Arr(model.ports.iter().map(|&p| Json::num(u64::from(p))).collect()),
                ),
            ];
            // One goal-count key per party, named by role — for the
            // mesh domain these are the historical `k8s_goals` /
            // `istio_goals` keys.
            for p in &model.parties {
                pairs.push((format!("{}_goals", p.role), Json::num(p.goals.len() as u64)));
            }
            let mut resp = Response::success(None, Json::Obj(pairs));
            resp.session = Some(hex_fp);
            return Ok(resp);
        }

        // Layer 2: the content-addressed result cache. The span carries
        // the same fingerprint the cache keys on, so traces join
        // against cache entries.
        let key = {
            let ws = relock(&handle);
            self.result_key(req, &ws)?
        };
        span.attr("result_key", fingerprint_hex(key));
        if let Some((result, _)) = relock(&self.cache).get(key) {
            span.attr("cached", "true");
            let mut resp = Response::success(None, result);
            resp.cached = true;
            resp.session = Some(hex_fp);
            return Ok(resp);
        }
        span.attr("cached", "false");

        // Miss: run the operation against the warm session. The session
        // mutex serializes work *per session*; distinct sessions solve
        // concurrently across worker threads.
        let mut ws = relock(&handle);
        ws.requests += 1;
        let (result, definite) = self.run_op(req, &mut ws, cancel)?;
        drop(ws);
        if definite {
            relock(&self.cache).put(key, result.clone(), hex_fp.clone());
        }
        let mut resp = Response::success(None, result);
        resp.session = Some(hex_fp);
        Ok(resp)
    }

    /// Find or build the warm session a request addresses.
    fn resolve_session(&self, req: &Request) -> Result<(Arc<Mutex<WarmSession>>, String), String> {
        let fp = match (&req.spec, &req.session) {
            (Some(spec), _) => spec.fingerprint(),
            (None, Some(handle)) => parse_hex(handle)
                .ok_or_else(|| format!("malformed session handle {handle:?}"))?,
            (None, None) => {
                return Err("request needs either \"spec\" (inline content) or \"session\" (handle)"
                    .to_string())
            }
        };
        if let Some(h) = relock(&self.sessions).map.get(&fp) {
            return Ok((Arc::clone(h), fingerprint_hex(fp)));
        }
        let spec = req
            .spec
            .clone()
            .ok_or_else(|| "unknown session (expired or never opened); resend with \"spec\"".to_string())?;
        // Build outside the registry lock — loading grounds axioms and
        // must not stall unrelated sessions.
        let built = Arc::new(Mutex::new(spec.load()?));
        let mut reg = relock(&self.sessions);
        if let Some(h) = reg.map.get(&fp) {
            // Someone else built it concurrently; keep theirs.
            return Ok((Arc::clone(h), fingerprint_hex(fp)));
        }
        if reg.map.len() >= self.config.max_sessions && !reg.order.is_empty() {
            let evicted = reg.order.remove(0);
            reg.map.remove(&evicted);
            // No cached result may outlive the session that produced it.
            relock(&self.cache).invalidate_session(&fingerprint_hex(evicted));
        }
        reg.map.insert(fp, Arc::clone(&built));
        reg.order.push(fp);
        Ok((built, fingerprint_hex(fp)))
    }

    /// The per-operation cache key: `h(op ‖ exactly-the-inputs-used)`.
    fn result_key(&self, req: &Request, ws: &WarmSession) -> Result<u128, String> {
        let core = &ws.core;
        let spec = &core.spec;
        let mut fp = Fingerprinter::new();
        fp.add_str("result-v1").add_str(req.op.name());
        // Every operation sees the domain's interpretation of the
        // universe, which derives from the manifests, the *combined*
        // goal-table port set, extras and mTLS — so all keys hash those.
        fp.add_str(core.model.domain);
        fp.add_str(&spec.manifests).add_bool(spec.mtls);
        fp.add_u64(core.model.ports.len() as u64);
        for &p in &core.model.ports {
            fp.add_u64(u64::from(p));
        }
        // Parties are hashed by stable role name, goal tables in slot
        // order — never by display strings, so renaming a party's
        // presentation cannot alias another party's results.
        match req.op {
            Op::CheckConsistency => {
                // Depends on one party's goals only.
                let party = self.party_from(req.party.as_deref(), "party", core)?;
                fp.add_str(core.model.role(party));
                fp.add_str(core.goals_text(party));
            }
            Op::ExtractEnvelope => {
                // Depends on the *senders'* goals and deployed configs
                // only — the delta-aware case: recipient goal edits
                // that keep the port universe intact hit the same key.
                let to = self.party_or_slot(req.to.as_deref(), 1, core)?;
                fp.add_str(core.model.role(to));
                for s in core.model.others(to) {
                    fp.add_str(core.goals_text(s));
                }
            }
            Op::Reconcile => {
                for p in &core.model.parties {
                    fp.add_str(&p.goals_text);
                }
                fp.add_str(req.mode.as_deref().unwrap_or("hard"));
            }
            Op::CheckConformance => {
                let provider = self.party_or_slot(req.provider.as_deref(), 0, core)?;
                let tenant = self.tenant_for(req.to.as_deref(), provider, core)?;
                for p in &core.model.parties {
                    fp.add_str(&p.goals_text);
                }
                fp.add_str(core.model.role(provider));
                fp.add_str(core.model.role(tenant));
            }
            Op::NegotiateRound => {
                for p in &core.model.parties {
                    fp.add_str(&p.goals_text);
                }
                fp.add_u64(req.max_rounds.unwrap_or(4));
            }
            Op::OpenSession | Op::Stats | Op::Trace | Op::Shutdown | Op::Watch
            | Op::PushDelta | Op::Subscribe | Op::Unwatch => {
                unreachable!("handled earlier")
            }
        }
        Ok(fp.digest())
    }

    /// Run a solve operation. Returns `(result, definite)`; only
    /// definite results may be cached.
    fn run_op(
        &self,
        req: &Request,
        ws: &mut WarmSession,
        cancel: Option<&CancelToken>,
    ) -> Result<(Json, bool), String> {
        // Split borrows: the rebuilt `Session` borrows `core` while the
        // warm solver state lives in the sibling `prepared` store.
        let WarmSession { core, prepared, .. } = ws;
        let mut session = core.session();
        let mut budget = Budget::unlimited();
        if let Some(ms) = req.timeout_ms {
            budget = budget.with_timeout(Duration::from_millis(ms));
        }
        if let Some(tok) = cancel {
            budget = budget.with_cancel(tok.clone());
        }
        session.set_budget(budget);
        let threads = req
            .threads
            .map(|t| t.min(64) as usize)
            .unwrap_or(self.config.threads);
        session.set_threads(threads);
        if req.conflict_budget.is_some() || req.retries.is_some() {
            session.set_retry_policy(RetryPolicy::new(
                req.conflict_budget.unwrap_or(u64::MAX),
                req.retries.unwrap_or(1),
            ));
        }
        match req.op {
            Op::CheckConsistency => {
                let party = self.party_from(req.party.as_deref(), "party", core)?;
                let report = session
                    .local_consistency_warm(party, prepared)
                    .map_err(describe_err)?;
                let definite = report.exhausted.is_none();
                self.note_portfolio(&report.stats);
                Ok((consistency_json(&session, party, &report), definite))
            }
            Op::Reconcile => {
                let mode = match req.mode.as_deref().unwrap_or("hard") {
                    "hard" => ReconcileMode::HardBounds,
                    "blameable" => ReconcileMode::Blameable,
                    other => return Err(format!("unknown reconcile mode {other:?}")),
                };
                let rec = session.reconcile_warm(mode, prepared).map_err(describe_err)?;
                let definite = rec.exhausted.is_none();
                self.note_portfolio(&rec.stats);
                Ok((reconciliation_json(&session, &rec), definite))
            }
            Op::ExtractEnvelope => {
                // `E_{S→to}`: every *other* party is a sender with its
                // deployed configuration fixed. For two-party domains
                // this is exactly the paper's `E_{from→to}`.
                let to = self.party_or_slot(req.to.as_deref(), 1, core)?;
                let mut senders = Vec::new();
                for from in core.model.others(to) {
                    senders.push((from, core.deployed(from)?));
                }
                let env = session
                    .compute_multi_envelope(&senders, to)
                    .map_err(describe_err)?;
                Ok((envelope_json(&session, &env), true))
            }
            Op::CheckConformance => {
                let provider = self.party_or_slot(req.provider.as_deref(), 0, core)?;
                let tenant = self.tenant_for(req.to.as_deref(), provider, core)?;
                let preferred = core.deployed(tenant)?;
                let report =
                    run_conformance_with_store(&session, provider, tenant, Some(&preferred), prepared)
                        .map_err(describe_err)?;
                Ok((conformance_json(&session, &report), true))
            }
            Op::NegotiateRound => {
                let rounds = req.max_rounds.unwrap_or(4).min(64) as usize;
                // Paper roles (Fig. 9), generalized round-robin: the
                // slot-0 admin holds firm; every other party's goals
                // are negotiable — soften them so blamed rows can be
                // dropped round by round.
                let ids: Vec<PartyId> = core.model.parties.iter().map(|p| p.id).collect();
                for &id in &ids[1..] {
                    if let Ok(p) = session.party_mut(id) {
                        for g in &mut p.goals {
                            g.hard = false;
                        }
                    }
                }
                let mut negotiators: std::collections::BTreeMap<PartyId, Box<dyn Negotiator>> =
                    std::collections::BTreeMap::new();
                for (slot, &id) in ids.iter().enumerate() {
                    if slot == 0 {
                        negotiators.insert(id, Box::new(Stubborn));
                    } else {
                        negotiators.insert(id, Box::new(DropBlamedSoftGoals));
                    }
                }
                let report = muppet::negotiate::run_negotiation_with_store(
                    &mut session,
                    &mut negotiators,
                    rounds,
                    prepared,
                )
                .map_err(describe_err)?;
                let configs = Json::Obj(
                    report
                        .configs
                        .iter()
                        .map(|(id, c)| {
                            (core.model.role(*id).to_string(), instance_json(&session, c))
                        })
                        .collect(),
                );
                Ok((
                    Json::obj([
                        ("success", Json::Bool(report.success)),
                        ("rounds", Json::num(report.rounds as u64)),
                        ("configs", configs),
                        ("trace", Json::strs(&report.trace)),
                    ]),
                    true,
                ))
            }
            Op::OpenSession | Op::Stats | Op::Trace | Op::Shutdown | Op::Watch
            | Op::PushDelta | Op::Subscribe | Op::Unwatch => {
                unreachable!("handled earlier")
            }
        }
    }

    /// Fold one solve's portfolio summary (when the search actually
    /// fanned out) into the daemon-wide aggregates.
    fn note_portfolio(&self, stats: &QueryStats) {
        if let Some(p) = stats.portfolio {
            self.pf_solves.fetch_add(1, Ordering::Relaxed);
            self.pf_exported.fetch_add(p.exported, Ordering::Relaxed);
            self.pf_imported.fetch_add(p.imported, Ordering::Relaxed);
            self.pf_restarts.fetch_add(p.restarts, Ordering::Relaxed);
        }
    }

    fn party_from(
        &self,
        name: Option<&str>,
        field: &str,
        core: &crate::spec::WarmCore,
    ) -> Result<PartyId, String> {
        let name = name.ok_or_else(|| {
            let roles: Vec<&str> = core.model.parties.iter().map(|p| p.role.as_str()).collect();
            format!("missing \"{field}\" (use one of {})", roles.join(", "))
        })?;
        core.party_id(name)
    }

    /// Resolve an optional party name, defaulting to the domain's
    /// party at `slot` (the conventional provider/recipient slots).
    fn party_or_slot(
        &self,
        name: Option<&str>,
        slot: usize,
        core: &crate::spec::WarmCore,
    ) -> Result<PartyId, String> {
        match name {
            Some(n) => core.party_id(n),
            None => core
                .model
                .parties
                .get(slot)
                .map(|p| p.id)
                .ok_or_else(|| format!("domain has no party in slot {slot}")),
        }
    }

    /// The conformance tenant: `to` when named, else the first party
    /// that is not the provider.
    fn tenant_for(
        &self,
        name: Option<&str>,
        provider: PartyId,
        core: &crate::spec::WarmCore,
    ) -> Result<PartyId, String> {
        match name {
            Some(n) => {
                let id = core.party_id(n)?;
                if id == provider {
                    return Err("conformance tenant must differ from the provider".to_string());
                }
                Ok(id)
            }
            None => core
                .model
                .others(provider)
                .into_iter()
                .next()
                .ok_or_else(|| "conformance needs at least two parties".to_string()),
        }
    }

    /// `watch`: open a streaming session over an inline spec. Solves the
    /// initial state (so the first response already carries a verdict)
    /// and returns the minted watch id for follow-up `push_delta`s.
    fn op_watch(
        &self,
        req: &Request,
        span: &mut muppet_obs::SpanGuard,
    ) -> Result<Response, String> {
        let spec = req
            .spec
            .as_ref()
            .ok_or_else(|| "watch needs an inline \"spec\"".to_string())?;
        // The streaming engine is mesh-only for now: it edits the
        // K8s/Istio goal tables row by row.
        if spec.domain_name() != muppet_domain::DEFAULT_DOMAIN {
            return Err(format!(
                "watch supports only the {:?} domain (got {:?})",
                muppet_domain::DEFAULT_DOMAIN,
                spec.domain_name()
            ));
        }
        if spec.mtls {
            return Err("watch does not support mtls specs".to_string());
        }
        let texts = spec.goal_texts();
        let stream_spec =
            StreamSpec::from_wire(&spec.manifests, &texts[0], &texts[1], &spec.extra_ports)?;
        let threads = req
            .threads
            .map(|t| t.clamp(1, 64) as usize)
            .unwrap_or(self.config.threads);
        // Build outside the registry lock — the initial solve grounds
        // and encodes the full formula set.
        let (session, initial) =
            StreamSession::with_threads(stream_spec, threads).map_err(|e| e.to_string())?;
        let mut reg = relock(&self.watches);
        let id = format!("w-{}", reg.next_id);
        reg.next_id += 1;
        if reg.map.len() >= self.config.max_sessions && !reg.order.is_empty() {
            let evicted = reg.order.remove(0);
            reg.map.remove(&evicted);
        }
        reg.map.insert(id.clone(), Arc::new(Mutex::new(session)));
        reg.order.push(id.clone());
        drop(reg);
        span.attr("watch", id.clone());
        Ok(Response::success(
            None,
            Json::obj([
                ("watch", Json::str(&id)),
                ("initial", stream_stats_json(&initial)),
            ]),
        ))
    }

    /// `push_delta`: parse one delta line, apply it to the watch and
    /// re-solve warm. An invalid delta leaves the watch untouched; a
    /// translation/solve failure after a *valid* apply is reported and
    /// leaves the watch at the post-apply state (per `muppet-stream`'s
    /// error contract).
    fn op_push_delta(
        &self,
        req: &Request,
        span: &mut muppet_obs::SpanGuard,
    ) -> Result<Response, String> {
        let (id, handle) = self.resolve_watch(req)?;
        span.attr("watch", id.clone());
        let line = req
            .delta
            .as_deref()
            .ok_or_else(|| "push_delta needs a \"delta\" line".to_string())?;
        let delta = ConfigDelta::parse(line).map_err(|e| format!("delta rejected: {e}"))?;
        let mut session = relock(&handle);
        let stats = session.push(&delta).map_err(|e| e.to_string())?;
        drop(session);
        let mut pairs = vec![("watch".to_string(), Json::str(&id))];
        if let Json::Obj(fields) = stream_stats_json(&stats) {
            pairs.extend(fields);
        }
        Ok(Response::success(None, Json::Obj(pairs)))
    }

    /// `subscribe`: validate the watch id and report its current state.
    /// The **server** layer intercepts the op after this succeeds and
    /// registers the connection's writer for verdict-flip pushes; the
    /// engine only vouches that the watch exists.
    fn op_subscribe(&self, req: &Request) -> Result<Response, String> {
        let (id, handle) = self.resolve_watch(req)?;
        let session = relock(&handle);
        Ok(Response::success(
            None,
            Json::obj([
                ("watch", Json::str(&id)),
                ("subscribed", Json::Bool(true)),
                ("verdict", Json::str(session.verdict())),
                ("solves", Json::num(session.solves())),
            ]),
        ))
    }

    /// `unwatch`: drop the watch and its warm solver state. Idempotent
    /// in effect — a second unwatch of the same id errors harmlessly.
    fn op_unwatch(&self, req: &Request) -> Result<Response, String> {
        let id = req
            .watch
            .clone()
            .ok_or_else(|| "unwatch needs a \"watch\" id".to_string())?;
        let mut reg = relock(&self.watches);
        let removed = reg.map.remove(&id).is_some();
        reg.order.retain(|w| w != &id);
        drop(reg);
        if !removed {
            return Err(format!("unknown watch {id:?} (expired or never opened)"));
        }
        Ok(Response::success(
            None,
            Json::obj([("watch", Json::str(&id)), ("removed", Json::Bool(true))]),
        ))
    }

    /// Look up a watch by the request's `watch` field.
    fn resolve_watch(&self, req: &Request) -> Result<(String, Arc<Mutex<StreamSession>>), String> {
        let id = req
            .watch
            .clone()
            .ok_or_else(|| "request needs a \"watch\" id (from a watch op)".to_string())?;
        let reg = relock(&self.watches);
        let handle = reg
            .map
            .get(&id)
            .cloned()
            .ok_or_else(|| format!("unknown watch {id:?} (expired or never opened)"))?;
        Ok((id, handle))
    }

    /// The `stats` result object.
    pub fn stats_json(&self) -> Json {
        let (hits, misses, evictions) = relock(&self.cache).counters();
        let cache_len = relock(&self.cache).len() as u64;
        let reg = relock(&self.sessions);
        let session_count = reg.map.len() as u64;
        let (mut builds, mut reuses) = (0u64, 0u64);
        let (mut ground_hits, mut ground_misses) = (0u64, 0u64);
        for h in reg.map.values() {
            let ws = relock(h);
            let (b, r) = ws.prepared.group_counters();
            builds += b;
            reuses += r;
            let (gh, gm) = ws.prepared.ground_cache_counters();
            ground_hits += gh;
            ground_misses += gm;
        }
        drop(reg);
        // Streaming watches carry their own warm stores; their reuse is
        // part of the same story the counters tell.
        let wreg = relock(&self.watches);
        let watch_count = wreg.map.len() as u64;
        for h in wreg.map.values() {
            let ss = relock(h);
            let (b, r) = ss.group_counters();
            builds += b;
            reuses += r;
            let (gh, gm) = ss.ground_cache_counters();
            ground_hits += gh;
            ground_misses += gm;
        }
        drop(wreg);
        let lat = relock(&self.latencies);
        let mut per_op: Vec<(String, Json)> = lat
            .iter()
            .map(|(op, l)| {
                (
                    op.to_string(),
                    Json::obj([
                        ("count", Json::num(l.count)),
                        ("total_us", Json::num(l.total_us)),
                        (
                            "mean_us",
                            Json::num(l.total_us.checked_div(l.count).unwrap_or(0)),
                        ),
                    ]),
                )
            })
            .collect();
        per_op.sort_by(|a, b| a.0.cmp(&b.0));
        let lookups = hits + misses;
        Json::obj([
            ("requests", Json::num(self.requests.load(Ordering::Relaxed))),
            ("errors", Json::num(self.errors.load(Ordering::Relaxed))),
            // Exact: `stats` requests never enter the gauge (see
            // `handle`), so no self-correction fudge is needed here.
            ("in_flight", Json::num(self.in_flight.load(Ordering::Relaxed))),
            ("queue_depth", Json::num(self.queue_depth.load(Ordering::Relaxed))),
            ("overload", self.overload_json()),
            ("sessions", Json::num(session_count)),
            ("watches", Json::num(watch_count)),
            (
                "cache",
                Json::obj([
                    ("entries", Json::num(cache_len)),
                    ("hits", Json::num(hits)),
                    ("misses", Json::num(misses)),
                    ("evictions", Json::num(evictions)),
                    (
                        "hit_rate",
                        if lookups == 0 {
                            Json::Null
                        } else {
                            Json::Num(hits as f64 / lookups as f64)
                        },
                    ),
                ]),
            ),
            (
                "warm_groups",
                Json::obj([("encoded", Json::num(builds)), ("reused", Json::num(reuses))]),
            ),
            (
                "ground_cache",
                Json::obj([
                    ("hits", Json::num(ground_hits)),
                    ("misses", Json::num(ground_misses)),
                    (
                        "hit_rate",
                        if ground_hits + ground_misses == 0 {
                            Json::Null
                        } else {
                            Json::Num(ground_hits as f64 / (ground_hits + ground_misses) as f64)
                        },
                    ),
                ]),
            ),
            ("obs", obs_json()),
            ("kernel", kernel_json()),
            (
                "portfolio",
                Json::obj([
                    ("threads", Json::num(self.config.threads as u64)),
                    ("solves", Json::num(self.pf_solves.load(Ordering::Relaxed))),
                    ("shared_exported", Json::num(self.pf_exported.load(Ordering::Relaxed))),
                    ("shared_imported", Json::num(self.pf_imported.load(Ordering::Relaxed))),
                    ("restarts", Json::num(self.pf_restarts.load(Ordering::Relaxed))),
                ]),
            ),
            ("latency", Json::Obj(per_op)),
        ])
    }

    /// The `overload` section of `stats`: active limits (when the
    /// server registered any), shed counters by reason, the queue-depth
    /// high-watermark, and drain telemetry.
    fn overload_json(&self) -> Json {
        let limits = match *relock(&self.overload_limits) {
            Some(l) => Json::obj([
                ("max_queue_depth", Json::num(l.max_queue_depth as u64)),
                ("max_inflight_per_conn", Json::num(l.max_inflight_per_conn as u64)),
                ("retry_after_ms", Json::num(l.retry_after_ms)),
                ("drain_deadline_ms", Json::num(l.drain_deadline_ms)),
                ("read_timeout_ms", Json::num(l.read_timeout_ms)),
            ]),
            None => Json::Null,
        };
        let (qf, cc, dr) = (
            self.shed_queue_full.load(Ordering::Relaxed),
            self.shed_conn_cap.load(Ordering::Relaxed),
            self.shed_draining.load(Ordering::Relaxed),
        );
        Json::obj([
            ("limits", limits),
            (
                "shed",
                Json::obj([
                    ("queue_full", Json::num(qf)),
                    ("conn_cap", Json::num(cc)),
                    ("draining", Json::num(dr)),
                    ("total", Json::num(qf + cc + dr)),
                ]),
            ),
            ("queue_highwater", Json::num(self.queue_highwater.load(Ordering::Relaxed))),
            (
                "drain",
                Json::obj([
                    ("count", Json::num(self.drains.load(Ordering::Relaxed))),
                    ("last_us", Json::num(self.drain_last_us.load(Ordering::Relaxed))),
                    ("cancelled", Json::num(self.drain_cancelled.load(Ordering::Relaxed))),
                ]),
            ),
        ])
    }

    /// Convenience for tests/harness: handle a [`SessionSpec`]-bearing
    /// request built from parts.
    pub fn handle_op(&self, op: Op, spec: &SessionSpec) -> Response {
        self.handle(&Request::new(op).with_spec(spec.clone()), None)
    }
}

/// One per-delta [`StreamStats`] as a wire object.
fn stream_stats_json(s: &StreamStats) -> Json {
    Json::obj([
        ("seq", Json::num(s.seq)),
        ("kind", Json::str(s.kind)),
        ("verdict", Json::str(&s.verdict)),
        ("flipped", Json::Bool(s.flipped)),
        ("dirtied", Json::strs(&s.dirtied)),
        ("groups_encoded", Json::num(s.groups_encoded)),
        ("groups_reused", Json::num(s.groups_reused)),
        ("ground_cache_hits", Json::num(s.ground_cache_hits)),
        ("ground_cache_misses", Json::num(s.ground_cache_misses)),
        ("vocab_rebuilt", Json::Bool(s.vocab_rebuilt)),
        ("delta_us", Json::num(s.elapsed_us)),
    ])
}

/// The aggregated global metrics registry, for `stats`.
fn obs_json() -> Json {
    let snap = registry().snapshot();
    let counters = Json::Obj(
        snap.counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::num(*v)))
            .collect(),
    );
    let gauges = Json::Obj(
        snap.gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::num(*v)))
            .collect(),
    );
    let histograms = Json::Obj(
        snap.histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::obj([
                        ("count", Json::num(h.count)),
                        ("sum_us", Json::num(h.sum_us)),
                        ("mean_us", Json::num(h.mean_us())),
                        ("p50_us", Json::num(h.quantile_us(0.5))),
                        ("p99_us", Json::num(h.quantile_us(0.99))),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj([
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

/// The `kernel` section of `stats`: the SAT kernel's inprocessing
/// counters and tiered clause-DB gauges, pulled out of the obs registry
/// (engines publish them after every solve) so operators don't have to
/// fish prefixed names out of the raw `obs` dump.
fn kernel_json() -> Json {
    let snap = registry().snapshot();
    let ctr = |name: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k.as_str() == name)
            .map_or(0, |(_, v)| *v)
    };
    let gauge = |name: &str| {
        snap.gauges
            .iter()
            .find(|(k, _)| k.as_str() == name)
            .map_or(0, |(_, v)| *v)
    };
    Json::obj([
        ("inprocessings", Json::num(ctr("kernel.inprocessings"))),
        ("subsumed_clauses", Json::num(ctr("kernel.subsumed_clauses"))),
        (
            "strengthened_clauses",
            Json::num(ctr("kernel.strengthened_clauses")),
        ),
        ("vivified_clauses", Json::num(ctr("kernel.vivified_clauses"))),
        ("oll_cores", Json::num(ctr("kernel.oll_cores"))),
        (
            "tiers",
            Json::obj([
                ("core", Json::num(gauge("kernel.tier.core"))),
                ("mid", Json::num(gauge("kernel.tier.mid"))),
                ("local", Json::num(gauge("kernel.tier.local"))),
            ]),
        ),
    ])
}

/// The `trace` result object: the last `n` completed span trees
/// (default 8), newest first, re-parsed into wire JSON.
fn trace_json(n: Option<u64>) -> Json {
    let want = n.unwrap_or(8).min(muppet_obs::ring_capacity() as u64) as usize;
    let traces = muppet_obs::recent_traces(want)
        .iter()
        // SpanNode serializes itself; round-trip through the hardened
        // parser so the wire sees uniform Json values.
        .filter_map(|t| crate::json::parse(&t.to_json()).ok())
        .collect();
    Json::obj([
        ("enabled", Json::Bool(muppet_obs::tracing_enabled())),
        ("capacity", Json::num(muppet_obs::ring_capacity() as u64)),
        ("traces", Json::Arr(traces)),
    ])
}

fn describe_err(e: MuppetError) -> String {
    match e {
        MuppetError::Exhausted { phase, stats } => format!(
            "budget exhausted during {phase} ({} conflicts, {} propagations)",
            stats.conflicts, stats.propagations
        ),
        other => other.to_string(),
    }
}

/// Render a configuration instance as sorted `rel(atom, …)` strings.
fn instance_json(session: &Session<'_>, inst: &Instance) -> Json {
    tuples_json(session.vocab(), session.universe(), inst)
}

fn tuples_json(vocab: &Vocabulary, universe: &Universe, inst: &Instance) -> Json {
    let mut entries = inst.all_tuples();
    entries.sort();
    Json::Arr(
        entries
            .iter()
            .map(|(rel, args)| {
                let atoms: Vec<String> = args
                    .iter()
                    .map(|a| universe.atom_name(*a).to_string())
                    .collect();
                Json::str(format!("{}({})", vocab.rel(*rel).name, atoms.join(", ")))
            })
            .collect(),
    )
}

fn stats_obj(stats: &QueryStats) -> Json {
    let mut fields = vec![
        ("free_tuple_vars", Json::num(stats.free_tuple_vars as u64)),
        ("conflicts", Json::num(stats.conflicts)),
        ("decisions", Json::num(stats.decisions)),
        ("propagations", Json::num(stats.propagations)),
        ("restarts", Json::num(stats.restarts)),
    ];
    if let Some(p) = stats.portfolio {
        fields.push((
            "portfolio",
            Json::obj([
                ("workers", Json::num(u64::from(p.workers))),
                (
                    "winner",
                    match p.winner {
                        Some(w) => Json::num(u64::from(w)),
                        None => Json::Null,
                    },
                ),
                ("shared_exported", Json::num(p.exported)),
                ("shared_imported", Json::num(p.imported)),
                ("restarts", Json::num(p.restarts)),
                ("conflicts", Json::num(p.conflicts)),
            ]),
        ));
    }
    Json::obj(fields)
}

fn exhaustion_json(ex: &Option<ExhaustionReport>) -> Json {
    match ex {
        None => Json::Null,
        Some(e) => Json::obj([
            ("phase", Json::str(e.phase.to_string())),
            ("stats", stats_obj(&e.stats)),
            ("attempts", Json::num(u64::from(e.attempts))),
        ]),
    }
}

fn consistency_json(session: &Session<'_>, party: PartyId, report: &ConsistencyReport) -> Json {
    Json::obj([
        (
            "party",
            Json::str(session.party(party).map(|p| p.name.as_str()).unwrap_or("?")),
        ),
        ("ok", Json::Bool(report.ok)),
        (
            "witness",
            match &report.witness {
                Some(w) => instance_json(session, w),
                None => Json::Null,
            },
        ),
        ("core", Json::strs(&report.core)),
        ("stats", stats_obj(&report.stats)),
        ("exhausted", exhaustion_json(&report.exhausted)),
    ])
}

fn reconciliation_json(session: &Session<'_>, rec: &Reconciliation) -> Json {
    let names = session.party_names();
    let configs = Json::Obj(
        rec.configs
            .iter()
            .map(|(id, c)| {
                (
                    names.get(id).cloned().unwrap_or_else(|| format!("{id:?}")),
                    instance_json(session, c),
                )
            })
            .collect(),
    );
    Json::obj([
        ("success", Json::Bool(rec.success)),
        ("configs", configs),
        ("core", Json::strs(&rec.core)),
        ("stats", stats_obj(&rec.stats)),
        ("exhausted", exhaustion_json(&rec.exhausted)),
    ])
}

fn envelope_json(session: &Session<'_>, env: &Envelope) -> Json {
    let leak = env.leakage(session.universe());
    Json::obj([
        ("trivial", Json::Bool(env.is_trivial())),
        ("predicates", Json::num(env.predicates.len() as u64)),
        (
            "alloy",
            Json::str(env.render_alloy(session.vocab(), session.universe())),
        ),
        (
            "english",
            Json::str(env.render_english(session.vocab(), session.universe())),
        ),
        ("impossible", Json::strs(&env.impossible)),
        ("residual_violations", Json::strs(&env.residual_violations)),
        ("self_satisfied", Json::strs(&env.self_satisfied)),
        (
            "leakage",
            Json::obj([
                ("revealed_atoms", Json::strs(&leak.revealed_atoms)),
                ("formula_size", Json::num(leak.formula_size as u64)),
                ("predicates", Json::num(leak.predicates as u64)),
            ]),
        ),
    ])
}

fn conformance_json(session: &Session<'_>, report: &muppet::conformance::ConformanceReport) -> Json {
    Json::obj([
        ("provider_consistent", Json::Bool(report.provider_consistent)),
        ("success", Json::Bool(report.success)),
        (
            "envelope_trivial",
            match &report.envelope {
                Some(e) => Json::Bool(e.is_trivial()),
                None => Json::Null,
            },
        ),
        (
            "tenant_config",
            match &report.tenant_config {
                Some(c) => instance_json(session, c),
                None => Json::Null,
            },
        ),
        ("blame", Json::strs(&report.blame)),
        (
            "counter_offer_distance",
            match report.counter_offer_distance {
                Some(d) => Json::num(d as u64),
                None => Json::Null,
            },
        ),
        ("log", Json::strs(&report.log)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default())
    }

    #[test]
    fn in_flight_gauge_is_exact_under_concurrent_stats() {
        let eng = engine();
        // A lone stats request reports zero: stats itself never enters
        // the gauge.
        let r = eng.handle(&Request::new(Op::Stats), None);
        assert!(r.ok);
        assert_eq!(r.result.get("in_flight").and_then(Json::as_u64), Some(0));
        // ...and stays exactly zero no matter how many stats requests
        // overlap. (The old `saturating_sub(1)` fudge under-counted by
        // one per concurrently-running stats request.)
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    barrier.wait();
                    for _ in 0..50 {
                        let r = eng.handle(&Request::new(Op::Stats), None);
                        assert_eq!(
                            r.result.get("in_flight").and_then(Json::as_u64),
                            Some(0),
                            "overlapping stats requests must not be counted"
                        );
                    }
                });
            }
        });
        // Non-stats work in progress is reported exactly: park two
        // simulated requests mid-handle and read the gauge through the
        // stats op.
        eng.in_flight.fetch_add(2, Ordering::Relaxed);
        let r = eng.handle(&Request::new(Op::Stats), None);
        assert_eq!(r.result.get("in_flight").and_then(Json::as_u64), Some(2));
        eng.in_flight.fetch_sub(2, Ordering::Relaxed);
        // Real requests leave the gauge balanced once they return.
        let done = eng.handle_op(Op::Reconcile, &SessionSpec::paper_strict());
        assert!(done.ok, "{:?}", done.error);
        assert_eq!(eng.in_flight.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn reconcile_matches_oracle_and_caches() {
        let eng = engine();
        // Strict goals: UNSAT in the paper; relaxed: SAT.
        let strict = eng.handle_op(Op::Reconcile, &SessionSpec::paper_strict());
        assert!(strict.ok, "{:?}", strict.error);
        assert!(!strict.cached);
        assert_eq!(strict.result.get("success").and_then(Json::as_bool), Some(false));
        let again = eng.handle_op(Op::Reconcile, &SessionSpec::paper_strict());
        assert!(again.cached, "identical request must be served from cache");
        assert_eq!(again.result.to_line(), strict.result.to_line());
        let relaxed = eng.handle_op(Op::Reconcile, &SessionSpec::paper_relaxed());
        assert!(relaxed.ok);
        assert!(!relaxed.cached, "different spec must not alias");
        assert_eq!(relaxed.result.get("success").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn tenant_goal_edit_keeps_provider_envelope_hot() {
        let eng = engine();
        let base = SessionSpec::paper_strict();
        let mut req = Request::new(Op::ExtractEnvelope).with_spec(base.clone());
        req.to = Some("istio".into());
        let cold = eng.handle(&req, None);
        assert!(cold.ok, "{:?}", cold.error);
        assert!(!cold.cached);
        // Edit the *tenant's* (istio) goals without touching the port
        // universe: reorder two rows. The provider-side envelope key
        // hashes only provider inputs + the derived port set, so this
        // delta must NOT invalidate the envelope.
        let mut edited = base.clone();
        edited.istio_goals = "srcService,dstService,srcPort,dstPort\n\
                              test-backend,test-frontend,26,23\n\
                              test-frontend,test-backend,24,25\n\
                              test-backend,test-db,14000,16000\n\
                              test-db,test-backend,10000,12000\n"
            .to_string();
        assert_ne!(base.fingerprint(), edited.fingerprint());
        let mut req2 = Request::new(Op::ExtractEnvelope).with_spec(edited.clone());
        req2.to = Some("istio".into());
        let warm = eng.handle(&req2, None);
        assert!(warm.ok, "{:?}", warm.error);
        assert!(warm.cached, "tenant-side delta must keep the provider envelope cached");
        assert_eq!(warm.result.to_line(), cold.result.to_line());
        // But a *provider* goal edit (which changes the hashed inputs)
        // must land on a fresh key.
        let mut pedit = base.clone();
        pedit.k8s_goals = "port,perm,selector\n24,DENY,*\n".to_string();
        let mut req3 = Request::new(Op::ExtractEnvelope).with_spec(pedit);
        req3.to = Some("istio".into());
        let fresh = eng.handle(&req3, None);
        assert!(fresh.ok, "{:?}", fresh.error);
        assert!(!fresh.cached, "provider-side delta must invalidate");
    }

    #[test]
    fn consistency_and_conformance_roundtrip() {
        let eng = engine();
        let mut req = Request::new(Op::CheckConsistency).with_spec(SessionSpec::paper_strict());
        req.party = Some("istio".into());
        let r = eng.handle(&req, None);
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.result.get("ok").and_then(Json::as_bool), Some(true));
        let c = eng.handle_op(Op::CheckConformance, &SessionSpec::paper_relaxed());
        assert!(c.ok, "{:?}", c.error);
        assert!(c.result.get("success").and_then(Json::as_bool).is_some());
        let n = eng.handle_op(Op::NegotiateRound, &SessionSpec::paper_strict());
        assert!(n.ok, "{:?}", n.error);
        assert_eq!(n.result.get("success").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn cached_hit_is_much_faster_than_cold() {
        let eng = engine();
        let spec = SessionSpec::paper_relaxed();
        let t0 = Instant::now();
        let cold = eng.handle_op(Op::CheckConformance, &spec);
        let cold_us = t0.elapsed().as_micros().max(1);
        assert!(cold.ok && !cold.cached);
        // Median of several hits to dodge scheduler noise.
        let mut hits = Vec::new();
        for _ in 0..5 {
            let t = Instant::now();
            let hit = eng.handle_op(Op::CheckConformance, &spec);
            hits.push(t.elapsed().as_micros().max(1));
            assert!(hit.cached);
        }
        hits.sort_unstable();
        let hit_us = hits[hits.len() / 2];
        assert!(
            cold_us >= 10 * hit_us,
            "cache hit must be ≥10× faster: cold {cold_us}µs vs hit {hit_us}µs"
        );
    }

    #[test]
    fn exhausted_results_are_not_cached() {
        let eng = engine();
        let mut req = Request::new(Op::Reconcile).with_spec(SessionSpec::paper_strict());
        req.timeout_ms = Some(0); // fires immediately
        let r = eng.handle(&req, None);
        // Whether it surfaces as a degraded report or an error, the
        // follow-up full-budget request must be a cache miss that then
        // computes the real verdict.
        assert!(!r.cached);
        let full = eng.handle_op(Op::Reconcile, &SessionSpec::paper_strict());
        assert!(full.ok, "{:?}", full.error);
        assert!(!full.cached, "degraded result must not have been cached");
        assert_eq!(full.result.get("success").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn cancellation_aborts_a_request() {
        let eng = engine();
        let tok = CancelToken::new();
        tok.cancel();
        let req = Request::new(Op::Reconcile).with_spec(SessionSpec::paper_strict());
        let r = eng.handle(&req, Some(&tok));
        // A pre-cancelled token degrades the solve; either channel is
        // acceptable but the result must not be cached as definite.
        assert!(!r.cached);
        let follow = eng.handle_op(Op::Reconcile, &SessionSpec::paper_strict());
        assert!(!follow.cached);
        assert!(follow.ok);
    }

    #[test]
    fn malformed_requests_error_cleanly() {
        let eng = engine();
        let r = eng.handle(&Request::new(Op::Reconcile), None);
        assert!(!r.ok);
        assert!(r.error.unwrap().contains("spec"));
        let mut req = Request::new(Op::CheckConsistency).with_spec(SessionSpec::paper_strict());
        req.party = Some("marionette".into());
        let r = eng.handle(&req, None);
        assert!(!r.ok);
        let mut req = Request::new(Op::Reconcile);
        req.session = Some("zz".into());
        let r = eng.handle(&req, None);
        assert!(!r.ok, "malformed handle must fail");
    }

    #[test]
    fn open_session_then_handle_reuse() {
        let eng = engine();
        let opened = eng.handle_op(Op::OpenSession, &SessionSpec::paper_strict());
        assert!(opened.ok);
        let handle = opened.session.clone().unwrap();
        let mut req = Request::new(Op::Reconcile);
        req.session = Some(handle);
        let r = eng.handle(&req, None);
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.result.get("success").and_then(Json::as_bool), Some(false));
        let stats = eng.handle(&Request::new(Op::Stats), None);
        assert!(stats.ok);
        assert_eq!(stats.result.get("sessions").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn watch_lifecycle_streams_deltas() {
        let eng = engine();
        let req = Request::new(Op::Watch).with_spec(SessionSpec::paper_relaxed());
        let opened = eng.handle(&req, None);
        assert!(opened.ok, "{:?}", opened.error);
        let id = opened
            .result
            .get("watch")
            .and_then(Json::as_str)
            .expect("watch id")
            .to_string();
        let initial = opened.result.get("initial").expect("initial stats");
        let verdict = initial.get("verdict").and_then(Json::as_str).unwrap();
        assert!(verdict.starts_with("sat"), "relaxed spec must open sat: {verdict}");

        // Banning a port a concrete goal row needs flips the verdict…
        let mut push = Request::new(Op::PushDelta);
        push.watch = Some(id.clone());
        push.delta = Some("upsert-ban 16000 *".into());
        let r = eng.handle(&push, None);
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.result.get("flipped").and_then(Json::as_bool), Some(true));
        assert!(r
            .result
            .get("verdict")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("unsat"));

        // …and dropping it flips back, reusing the warm groups.
        push.delta = Some("drop-ban 16000".into());
        let r2 = eng.handle(&push, None);
        assert!(r2.ok, "{:?}", r2.error);
        assert_eq!(r2.result.get("flipped").and_then(Json::as_bool), Some(true));
        assert!(r2.result.get("groups_reused").and_then(Json::as_u64).unwrap() > 0);

        // A malformed delta is rejected without touching the watch.
        push.delta = Some("remove-service no-such-svc".into());
        let bad = eng.handle(&push, None);
        assert!(!bad.ok);
        let mut sub = Request::new(Op::Subscribe);
        sub.watch = Some(id.clone());
        let s = eng.handle(&sub, None);
        assert!(s.ok, "{:?}", s.error);
        assert_eq!(s.result.get("subscribed").and_then(Json::as_bool), Some(true));
        assert!(s
            .result
            .get("verdict")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("sat"));

        // stats counts the live watch; unwatch tears it down.
        let stats = eng.handle(&Request::new(Op::Stats), None);
        assert_eq!(stats.result.get("watches").and_then(Json::as_u64), Some(1));
        let mut un = Request::new(Op::Unwatch);
        un.watch = Some(id.clone());
        assert!(eng.handle(&un, None).ok);
        assert!(!eng.handle(&un, None).ok, "second unwatch must error");
        assert!(!eng.handle(&sub, None).ok, "subscribe after unwatch must error");
    }

    #[test]
    fn session_eviction_invalidates_its_results() {
        let eng = Engine::new(EngineConfig {
            cache_cap: 64,
            max_sessions: 1,
            ..EngineConfig::default()
        });
        let strict = SessionSpec::paper_strict();
        let r = eng.handle_op(Op::Reconcile, &strict);
        assert!(r.ok);
        // Loading a second session evicts the first (max_sessions = 1)
        // and must drop its cached results with it.
        let r2 = eng.handle_op(Op::Reconcile, &SessionSpec::paper_relaxed());
        assert!(r2.ok);
        let back = eng.handle_op(Op::Reconcile, &strict);
        assert!(back.ok);
        assert!(!back.cached, "evicted session's results must not survive");
        assert_eq!(back.result.get("success").and_then(Json::as_bool), Some(false));
    }
}
