//! A minimal, dependency-free JSON value with a hardened parser.
//!
//! The daemon's wire format is JSON Lines; the container has no
//! registry access, so this module supplies the ~300 lines of JSON the
//! protocol needs instead of `serde`. Design constraints, in order:
//! never panic on hostile input, bound recursion (depth-limited, like
//! the YAML parser hardened in PR 1), and serialize deterministically
//! (object keys keep insertion order).

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Deeper input is rejected
/// with an error instead of overflowing the stack.
pub const MAX_DEPTH: usize = 64;

/// A JSON value. Numbers are `f64` (adequate for counters < 2^53).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Wrap a string.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Wrap an integer counter.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Wrap an array of strings.
    pub fn strs<I: IntoIterator<Item = S>, S: Into<String>>(items: I) -> Json {
        Json::Arr(items.into_iter().map(Json::str).collect())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialize to a compact single-line string.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    // Infinities/NaN are not JSON; degrade to null.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document. Trailing whitespace is allowed; trailing
/// content is an error. Never panics; errors carry a byte position.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte {:?} at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("bad low surrogate".to_string());
                                    }
                                    let cp = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| "bad surrogate pair".to_string())?
                                } else {
                                    return Err("lone high surrogate".to_string());
                                }
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| "bad \\u escape".to_string())?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u16::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_values() {
        let v = Json::obj([
            ("id", Json::str("r-1")),
            ("n", Json::num(42)),
            ("pi", Json::Num(1.5)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::strs(["a", "b\"c", "d\\e", "nl\n"])),
            ("nested", Json::obj([("k", Json::num(0))])),
        ]);
        let line = v.to_line();
        assert!(!line.contains('\n'), "JSON Lines must stay one line");
        assert_eq!(parse(&line).unwrap(), v);
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse(r#""aé😀b""#).unwrap();
        assert_eq!(v.as_str(), Some("aé😀b"));
        assert!(parse(r#""\ud800x""#).is_err(), "lone surrogate");
        assert!(parse(r#""\uzzzz""#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "01x",
            "\"unterminated",
            "{\"a\":1} trailing",
            "{1:2}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a":1,"b":"x","c":[true,null],"d":-2.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(-2.5));
        assert_eq!(v.get("d").and_then(Json::as_u64), None);
        assert!(v.get("c").unwrap().as_arr().unwrap()[1].is_null());
        assert!(v.get("missing").is_none());
    }
}
