//! The content-addressed result cache.
//!
//! Entries are keyed by a 128-bit fingerprint of everything the answer
//! depends on — the operation kind plus exactly the spec content that
//! feeds it. Keys are *per-operation*, which is what makes invalidation
//! delta-aware: an envelope extraction toward the tenant hashes only
//! the provider-relevant inputs (manifests, the sender's goals, the
//! derived port set, mTLS), so a tenant goal edit that leaves the port
//! universe intact maps to the same key and keeps the provider's
//! envelope hot, while any change to the hashed inputs lands on a new
//! key and can never alias a stale answer.
//!
//! Eviction is LRU by a logical tick (no wall clock involved), bounded
//! by `cap`. The cache stores only definite results — the engine never
//! inserts an outcome produced under a fired budget.

use std::collections::HashMap;

use muppet_obs::{registry, Counter};

use crate::json::Json;

/// One cached result.
#[derive(Clone, Debug)]
struct Entry {
    /// The operation's result object, exactly as first computed.
    result: Json,
    /// Fingerprint (hex) of the session the result came from.
    session: String,
    /// Logical time of last access, for LRU eviction.
    last_used: u64,
}

/// Handles into the process-global metrics registry, mirroring the
/// cache's local counters (`daemon.cache.*`). Cumulative across every
/// cache instance in the process, which keeps the published invariants
/// (`hits + misses == lookups`, `evictions <= insertions`) intact no
/// matter how many engines share the registry.
#[derive(Debug)]
struct CacheMetrics {
    lookups: Counter,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
}

impl CacheMetrics {
    fn new() -> CacheMetrics {
        CacheMetrics {
            lookups: registry().counter("daemon.cache.lookups"),
            hits: registry().counter("daemon.cache.hits"),
            misses: registry().counter("daemon.cache.misses"),
            insertions: registry().counter("daemon.cache.insertions"),
            evictions: registry().counter("daemon.cache.evictions"),
        }
    }
}

/// A bounded LRU map from result fingerprints to result objects.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<u128, Entry>,
    cap: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    metrics: CacheMetrics,
}

impl ResultCache {
    /// A cache holding at most `cap` entries (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> ResultCache {
        ResultCache {
            map: HashMap::new(),
            cap: cap.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            metrics: CacheMetrics::new(),
        }
    }

    /// Look up `key`, refreshing its LRU position on a hit. Returns the
    /// cached result object and the session fingerprint it belongs to.
    pub fn get(&mut self, key: u128) -> Option<(Json, String)> {
        self.tick += 1;
        self.metrics.lookups.inc();
        match self.map.get_mut(&key) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                self.metrics.hits.inc();
                Some((e.result.clone(), e.session.clone()))
            }
            None => {
                self.misses += 1;
                self.metrics.misses.inc();
                None
            }
        }
    }

    /// Insert a definite result, evicting the least-recently-used entry
    /// if the cache is full.
    pub fn put(&mut self, key: u128, result: Json, session: String) {
        self.tick += 1;
        self.metrics.insertions.inc();
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
                self.evictions += 1;
                self.metrics.evictions.inc();
            }
        }
        let tick = self.tick;
        self.map.insert(
            key,
            Entry {
                result,
                session,
                last_used: tick,
            },
        );
    }

    /// Drop every entry computed from session `session` (hex
    /// fingerprint). Used when a warm session is evicted, so no result
    /// can outlive the state that produced it.
    pub fn invalidate_session(&mut self, session: &str) {
        self.map.retain(|_, e| e.session != session);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses, evictions)` counters since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_counters() {
        let mut c = ResultCache::new(4);
        assert!(c.get(1).is_none());
        c.put(1, Json::num(42), "s1".into());
        let (v, s) = c.get(1).unwrap();
        assert_eq!(v.as_u64(), Some(42));
        assert_eq!(s, "s1");
        assert_eq!(c.counters(), (1, 1, 0));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = ResultCache::new(2);
        c.put(1, Json::num(1), "s".into());
        c.put(2, Json::num(2), "s".into());
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        c.put(3, Json::num(3), "s".into());
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn session_invalidation_is_scoped() {
        let mut c = ResultCache::new(8);
        c.put(1, Json::num(1), "a".into());
        c.put(2, Json::num(2), "b".into());
        c.invalidate_session("a");
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_cap_is_clamped() {
        let mut c = ResultCache::new(0);
        c.put(1, Json::Null, "s".into());
        assert!(c.get(1).is_some());
        assert!(!c.is_empty());
    }
}
