//! Session specifications and warm sessions.
//!
//! A [`SessionSpec`] is the wire-level description of a configuration
//! session: which registered [`ConfigDomain`] interprets it, manifest
//! YAML (services + deployed policies), one CSV goal table per party,
//! and feature flags — exactly the inputs `muppet-cli` takes from
//! files, but carried inline so the daemon needs no filesystem access
//! to serve a client.
//!
//! Loading a spec produces a [`WarmSession`]: the domain-built
//! [`DomainModel`] ([`WarmCore`]) plus a [`PreparedStore`] of
//! grounded/encoded solver state. The core is immutable after load; a
//! `muppet::Session` (which borrows the universe) is rebuilt cheaply
//! per request from it, while the prepared store persists and keeps CNF
//! warm across requests.

use muppet::fingerprint::Fingerprinter;
use muppet::{PreparedStore, Session};
use muppet_domain::{ConfigDomain, DomainInput, DomainModel, DEFAULT_DOMAIN};
use muppet_logic::{Instance, PartyId};

use crate::json::Json;

/// Everything that defines a session, as content (no file paths).
#[derive(Clone, Debug, PartialEq, Eq)]
#[derive(Default)]
pub struct SessionSpec {
    /// The registered domain interpreting this spec. Empty means the
    /// default (`"mesh"`, the paper's K8s/Istio pair), so pre-plugin
    /// wire clients keep working unchanged.
    pub domain: String,
    /// Concatenated YAML manifests: structure documents plus any
    /// deployed policy documents the domain understands.
    pub manifests: String,
    /// Mesh-domain alias for the slot-0 goal table
    /// (`port,perm,selector`); used when [`SessionSpec::goals`] is
    /// empty. Kept as a first-class field for wire compatibility.
    pub k8s_goals: String,
    /// Mesh-domain alias for the slot-1 goal table
    /// (`srcService,dstService,srcPort,dstPort`); used when
    /// [`SessionSpec::goals`] is empty.
    pub istio_goals: String,
    /// Per-party goal tables in the domain's slot order. When non-empty
    /// this wins over the two legacy alias fields.
    pub goals: Vec<String>,
    /// Enable the mTLS extension where the domain supports it.
    pub mtls: bool,
    /// Spare ports widening the universe for ∃-port goals.
    pub extra_ports: Vec<u16>,
}


impl SessionSpec {
    /// The effective domain name (empty field ⇒ the default domain).
    pub fn domain_name(&self) -> &str {
        if self.domain.is_empty() {
            DEFAULT_DOMAIN
        } else {
            &self.domain
        }
    }

    /// The effective per-slot goal tables: [`SessionSpec::goals`] when
    /// set, else the two legacy mesh alias fields.
    pub fn goal_texts(&self) -> Vec<String> {
        if self.goals.is_empty() {
            vec![self.k8s_goals.clone(), self.istio_goals.clone()]
        } else {
            self.goals.clone()
        }
    }

    /// Content fingerprint of the full spec. Identical specs — whatever
    /// client they come from, legacy alias fields or the generic
    /// `goals` list — share one warm session.
    pub fn fingerprint(&self) -> u128 {
        let mut fp = Fingerprinter::new();
        fp.add_str("session-spec-v1")
            .add_str(self.domain_name())
            .add_str(&self.manifests);
        let texts = self.goal_texts();
        fp.add_u64(texts.len() as u64);
        for t in &texts {
            fp.add_str(t);
        }
        fp.add_bool(self.mtls);
        let mut ports = self.extra_ports.clone();
        ports.sort_unstable();
        ports.dedup();
        fp.add_u64(ports.len() as u64);
        for p in ports {
            fp.add_u64(u64::from(p));
        }
        fp.digest()
    }

    /// Serialize for the wire. The legacy mesh alias fields are always
    /// present (empty strings when a generic `goals` list is used);
    /// `domain`/`goals` are emitted only when set, so mesh specs stay
    /// byte-compatible with pre-plugin clients.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("manifests".to_string(), Json::str(&self.manifests)),
            ("k8s_goals".to_string(), Json::str(&self.k8s_goals)),
            ("istio_goals".to_string(), Json::str(&self.istio_goals)),
            ("mtls".to_string(), Json::Bool(self.mtls)),
            (
                "extra_ports".to_string(),
                Json::Arr(self.extra_ports.iter().map(|&p| Json::num(u64::from(p))).collect()),
            ),
        ];
        if !self.domain.is_empty() {
            pairs.insert(0, ("domain".to_string(), Json::str(&self.domain)));
        }
        if !self.goals.is_empty() {
            pairs.push((
                "goals".to_string(),
                Json::Arr(self.goals.iter().map(Json::str).collect()),
            ));
        }
        Json::Obj(pairs)
    }

    /// Deserialize from the wire. Missing string fields default to
    /// empty; a malformed `extra_ports` or `goals` entry is an error.
    pub fn from_json(v: &Json) -> Result<SessionSpec, String> {
        let s = |key: &str| -> Result<String, String> {
            match v.get(key) {
                None => Ok(String::new()),
                Some(Json::Str(s)) => Ok(s.clone()),
                Some(_) => Err(format!("spec.{key} must be a string")),
            }
        };
        let mut extra_ports = Vec::new();
        if let Some(arr) = v.get("extra_ports") {
            let items = arr
                .as_arr()
                .ok_or_else(|| "spec.extra_ports must be an array".to_string())?;
            for item in items {
                let n = item
                    .as_u64()
                    .filter(|&n| n <= u64::from(u16::MAX))
                    .ok_or_else(|| "spec.extra_ports entries must be ports".to_string())?;
                extra_ports.push(n as u16);
            }
        }
        let mut goals = Vec::new();
        if let Some(arr) = v.get("goals") {
            let items = arr
                .as_arr()
                .ok_or_else(|| "spec.goals must be an array".to_string())?;
            for item in items {
                let t = item
                    .as_str()
                    .ok_or_else(|| "spec.goals entries must be strings".to_string())?;
                goals.push(t.to_string());
            }
        }
        Ok(SessionSpec {
            domain: s("domain")?,
            manifests: s("manifests")?,
            k8s_goals: s("k8s_goals")?,
            istio_goals: s("istio_goals")?,
            goals,
            mtls: v.get("mtls").and_then(Json::as_bool).unwrap_or(false),
            extra_ports,
        })
    }

    /// The paper's running example with the strict Fig. 3 Istio goals
    /// (jointly unsatisfiable with the Fig. 2 port-23 ban).
    pub fn paper_strict() -> SessionSpec {
        SessionSpec {
            manifests: muppet_domain::mesh::paper_example_manifests(),
            k8s_goals: "port,perm,selector\n23,DENY,*\n".to_string(),
            istio_goals: "srcService,dstService,srcPort,dstPort\n\
                          test-frontend,test-backend,24,25\n\
                          test-backend,test-frontend,26,23\n\
                          test-backend,test-db,14000,16000\n\
                          test-db,test-backend,10000,12000\n"
                .to_string(),
            ..SessionSpec::default()
        }
    }

    /// The paper's running example with the relaxed Fig. 4 Istio goals
    /// (∃-port rows; reconcilable by re-exposing spare ports).
    pub fn paper_relaxed() -> SessionSpec {
        SessionSpec {
            istio_goals: "srcService,dstService,srcPort,dstPort\n\
                          test-frontend,test-backend,?w,?x\n\
                          test-backend,test-frontend,?y,?z\n\
                          test-backend,test-db,14000,16000\n\
                          test-db,test-backend,10000,12000\n"
                .to_string(),
            ..SessionSpec::paper_strict()
        }
    }

    /// The committed Linkerd-domain example (ROADMAP item 3): a
    /// four-service shop mesh with one unmeshed legacy workload,
    /// platform mTLS + metrics-port goals against Linkerd reachability
    /// rows, two of which conflict.
    pub fn linkerd_example() -> SessionSpec {
        SessionSpec {
            domain: "linkerd".to_string(),
            manifests: muppet_domain::linkerd::example_manifests(),
            goals: vec![
                muppet_domain::linkerd::example_platform_goals(),
                muppet_domain::linkerd::example_linkerd_goals(),
            ],
            ..SessionSpec::default()
        }
    }

    /// Build the domain model for this spec: resolve the domain in the
    /// registry and hand it the domain-independent input.
    pub fn build_model(&self) -> Result<(&'static dyn ConfigDomain, DomainModel), String> {
        let domain = muppet_domain::lookup(self.domain_name()).ok_or_else(|| {
            let known: Vec<&str> =
                muppet_domain::registry().iter().map(|d| d.name()).collect();
            format!(
                "unknown domain {:?} (registered: {})",
                self.domain_name(),
                known.join(", ")
            )
        })?;
        let input = DomainInput {
            manifests: self.manifests.clone(),
            goals: self.goal_texts(),
            mtls: self.mtls,
            extra_ports: self.extra_ports.clone(),
        };
        let model = domain.build(&input)?;
        Ok((domain, model))
    }

    /// Parse, translate and compile the spec into a [`WarmSession`].
    /// Mirrors `muppet-cli`'s loading pipeline exactly (same domain
    /// build), so daemon verdicts match CLI verdicts.
    pub fn load(self) -> Result<WarmSession, String> {
        let (domain, model) = self.build_model()?;
        let fp = self.fingerprint();
        Ok(WarmSession {
            core: WarmCore {
                spec: self,
                domain,
                model,
                fp,
            },
            prepared: PreparedStore::new(),
            requests: 0,
        })
    }
}

/// The immutable, parsed artifacts of a loaded spec. A borrowing
/// `Session` is rebuilt from this per request ([`WarmCore::session`]);
/// the rebuild is cheap (clones of already-translated formulas), and
/// the expensive state lives in the sibling [`PreparedStore`].
pub struct WarmCore {
    /// The original spec (for cache-key derivation).
    pub spec: SessionSpec,
    /// The registered domain that built (and interprets) the model.
    pub domain: &'static dyn ConfigDomain,
    /// The domain-built model: universe, vocabulary, parties, payload.
    pub model: DomainModel,
    /// The spec fingerprint (the session's registry key).
    pub fp: u128,
}

/// A warm session: parsed core + persistent solver state.
pub struct WarmSession {
    /// Parsed, immutable artifacts.
    pub core: WarmCore,
    /// Warm grounded/encoded solver state, reused across requests.
    pub prepared: PreparedStore,
    /// Requests served by this session (for `stats`).
    pub requests: u64,
}

impl WarmCore {
    /// Build a fresh borrowing [`Session`] over this core. Parties are
    /// named exactly as `muppet-cli` names them (the domain's display
    /// names, in slot order).
    pub fn session(&self) -> Session<'_> {
        self.model.session()
    }

    /// Resolve a wire party name (a role like `"k8s"`, or a display
    /// name like `"k8s-admin"`) to its id.
    pub fn party_id(&self, name: &str) -> Result<PartyId, String> {
        self.model.party_id(name)
    }

    /// The party's deployed configuration, compiled by the domain from
    /// the manifest bundle's policy documents.
    pub fn deployed(&self, id: PartyId) -> Result<Instance, String> {
        self.domain.deployed(&self.model, id)
    }

    /// The goal-table text belonging to a party (for delta-aware cache
    /// keys: a consistency check depends only on *this* text).
    pub fn goals_text(&self, id: PartyId) -> &str {
        self.model.goals_text(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_roundtrip() {
        let spec = SessionSpec {
            manifests: "kind: Service\n".into(),
            k8s_goals: "port,perm,selector\n".into(),
            mtls: true,
            extra_ports: vec![24, 26],
            ..SessionSpec::default()
        };
        let back = SessionSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.fingerprint(), spec.fingerprint());
        // Domain-qualified specs with a generic goals list round-trip too.
        let linkerd = SessionSpec::linkerd_example();
        let back = SessionSpec::from_json(&linkerd.to_json()).unwrap();
        assert_eq!(back, linkerd);
        assert_eq!(back.fingerprint(), linkerd.fingerprint());
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let a = SessionSpec::paper_strict();
        let b = SessionSpec::paper_strict();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = SessionSpec::paper_relaxed();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = SessionSpec::paper_strict();
        d.mtls = true;
        assert_ne!(a.fingerprint(), d.fingerprint());
        // The legacy alias fields and an equivalent generic goals list
        // are the same content.
        let mut e = SessionSpec::paper_strict();
        e.goals = vec![e.k8s_goals.clone(), e.istio_goals.clone()];
        e.k8s_goals = String::new();
        e.istio_goals = String::new();
        assert_eq!(a.fingerprint(), e.fingerprint());
        // An explicit default domain is the same content as none.
        let mut f = SessionSpec::paper_strict();
        f.domain = "mesh".to_string();
        assert_eq!(a.fingerprint(), f.fingerprint());
        // A different domain is different content even with equal text.
        let mut g = SessionSpec::paper_strict();
        g.domain = "linkerd".to_string();
        assert_ne!(a.fingerprint(), g.fingerprint());
    }

    #[test]
    fn paper_specs_load_and_reconcile_as_in_the_paper() {
        let strict = SessionSpec::paper_strict().load().unwrap();
        let s = strict.core.session();
        let rec = s.reconcile(muppet::ReconcileMode::HardBounds).unwrap();
        assert!(!rec.success, "Fig. 3 goals conflict with the ban");
        let relaxed = SessionSpec::paper_relaxed().load().unwrap();
        let s = relaxed.core.session();
        let rec = s.reconcile(muppet::ReconcileMode::HardBounds).unwrap();
        assert!(rec.success, "Fig. 4 relaxation reconciles: {:?}", rec.core);
    }

    #[test]
    fn linkerd_example_loads_through_the_registry() {
        let warm = SessionSpec::linkerd_example().load().unwrap();
        assert_eq!(warm.core.model.domain, "linkerd");
        assert_eq!(warm.core.model.parties.len(), 2);
        assert!(warm.core.party_id("platform").is_ok());
        assert!(warm.core.party_id("linkerd-admin").is_ok());
        assert!(warm.core.party_id("k8s").is_err());
        let s = warm.core.session();
        let rec = s.reconcile(muppet::ReconcileMode::HardBounds).unwrap();
        assert!(!rec.success, "the committed example carries a conflict");
    }

    #[test]
    fn bad_specs_error_cleanly() {
        let mut spec = SessionSpec::paper_strict();
        spec.manifests = "kind: Nonsense\n".into();
        assert!(spec.load().is_err());
        let mut spec = SessionSpec::paper_strict();
        spec.k8s_goals = "not,a,valid\nheader,row,x\n".into();
        assert!(spec.load().is_err());
        let mut spec = SessionSpec::paper_strict();
        spec.domain = "nomad".into();
        let err = match spec.load() {
            Ok(_) => panic!("unknown domain must not load"),
            Err(e) => e,
        };
        assert!(err.contains("unknown domain"), "{err}");
        assert!(err.contains("mesh") && err.contains("linkerd"), "{err}");
    }
}
