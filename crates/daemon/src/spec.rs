//! Session specifications and warm sessions.
//!
//! A [`SessionSpec`] is the wire-level description of a two-party
//! configuration session: manifest YAML (services + deployed policies),
//! the two CSV goal tables, and feature flags — exactly the inputs
//! `muppet-cli` takes from files, but carried inline so the daemon
//! needs no filesystem access to serve a client.
//!
//! Loading a spec produces a [`WarmSession`]: the parsed artifacts
//! ([`WarmCore`]) plus a [`PreparedStore`] of grounded/encoded solver
//! state. The core is immutable after load; a `muppet::Session` (which
//! borrows the universe) is rebuilt cheaply per request from it, while
//! the prepared store persists and keeps CNF warm across requests.

use std::collections::BTreeSet;

use muppet::fingerprint::Fingerprinter;
use muppet::{NamedGoal, Party, PreparedStore, Session};
use muppet_goals::{translate_istio_goals, translate_k8s_goals, IstioGoal, K8sGoal};
use muppet_logic::{Formula, Instance, PartyId, Vocabulary};
use muppet_mesh::manifest::{parse_manifests, ManifestBundle};
use muppet_mesh::MeshVocab;

use crate::json::Json;

/// Everything that defines a session, as content (no file paths).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionSpec {
    /// Concatenated YAML manifests: Services plus any deployed
    /// NetworkPolicy / AuthorizationPolicy / PeerAuthentication docs.
    pub manifests: String,
    /// K8s goal table CSV (`port,perm,selector`); may be empty.
    pub k8s_goals: String,
    /// Istio goal table CSV
    /// (`srcService,dstService,srcPort,dstPort`); may be empty.
    pub istio_goals: String,
    /// Enable the PeerAuthentication (mTLS) extension.
    pub mtls: bool,
    /// Spare ports widening the universe for ∃-port goals.
    pub extra_ports: Vec<u16>,
}

impl SessionSpec {
    /// Content fingerprint of the full spec. Identical specs — whatever
    /// client they come from — share one warm session.
    pub fn fingerprint(&self) -> u128 {
        let mut fp = Fingerprinter::new();
        fp.add_str("session-spec-v1")
            .add_str(&self.manifests)
            .add_str(&self.k8s_goals)
            .add_str(&self.istio_goals)
            .add_bool(self.mtls);
        let mut ports = self.extra_ports.clone();
        ports.sort_unstable();
        ports.dedup();
        fp.add_u64(ports.len() as u64);
        for p in ports {
            fp.add_u64(u64::from(p));
        }
        fp.digest()
    }

    /// Serialize for the wire.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("manifests", Json::str(&self.manifests)),
            ("k8s_goals", Json::str(&self.k8s_goals)),
            ("istio_goals", Json::str(&self.istio_goals)),
            ("mtls", Json::Bool(self.mtls)),
            (
                "extra_ports",
                Json::Arr(self.extra_ports.iter().map(|&p| Json::num(u64::from(p))).collect()),
            ),
        ])
    }

    /// Deserialize from the wire. Missing string fields default to
    /// empty; a malformed `extra_ports` entry is an error.
    pub fn from_json(v: &Json) -> Result<SessionSpec, String> {
        let s = |key: &str| -> Result<String, String> {
            match v.get(key) {
                None => Ok(String::new()),
                Some(Json::Str(s)) => Ok(s.clone()),
                Some(_) => Err(format!("spec.{key} must be a string")),
            }
        };
        let mut extra_ports = Vec::new();
        if let Some(arr) = v.get("extra_ports") {
            let items = arr
                .as_arr()
                .ok_or_else(|| "spec.extra_ports must be an array".to_string())?;
            for item in items {
                let n = item
                    .as_u64()
                    .filter(|&n| n <= u64::from(u16::MAX))
                    .ok_or_else(|| "spec.extra_ports entries must be ports".to_string())?;
                extra_ports.push(n as u16);
            }
        }
        Ok(SessionSpec {
            manifests: s("manifests")?,
            k8s_goals: s("k8s_goals")?,
            istio_goals: s("istio_goals")?,
            mtls: v.get("mtls").and_then(Json::as_bool).unwrap_or(false),
            extra_ports,
        })
    }

    /// The paper's running example with the strict Fig. 3 Istio goals
    /// (jointly unsatisfiable with the Fig. 2 port-23 ban).
    pub fn paper_strict() -> SessionSpec {
        SessionSpec {
            manifests: muppet_mesh::manifest::paper_example_manifests(),
            k8s_goals: "port,perm,selector\n23,DENY,*\n".to_string(),
            istio_goals: "srcService,dstService,srcPort,dstPort\n\
                          test-frontend,test-backend,24,25\n\
                          test-backend,test-frontend,26,23\n\
                          test-backend,test-db,14000,16000\n\
                          test-db,test-backend,10000,12000\n"
                .to_string(),
            mtls: false,
            extra_ports: Vec::new(),
        }
    }

    /// The paper's running example with the relaxed Fig. 4 Istio goals
    /// (∃-port rows; reconcilable by re-exposing spare ports).
    pub fn paper_relaxed() -> SessionSpec {
        SessionSpec {
            istio_goals: "srcService,dstService,srcPort,dstPort\n\
                          test-frontend,test-backend,?w,?x\n\
                          test-backend,test-frontend,?y,?z\n\
                          test-backend,test-db,14000,16000\n\
                          test-db,test-backend,10000,12000\n"
                .to_string(),
            ..SessionSpec::paper_strict()
        }
    }

    /// Parse, translate and compile the spec into a [`WarmSession`].
    /// Mirrors `muppet-cli`'s loading pipeline exactly (same universe
    /// port derivation), so daemon verdicts match CLI verdicts.
    pub fn load(self) -> Result<WarmSession, String> {
        let bundle = parse_manifests(&self.manifests).map_err(|e| e.to_string())?;
        if bundle.mesh.services().is_empty() {
            return Err("no Service documents found in the manifests".into());
        }
        let k8s_rows = K8sGoal::parse_csv(&self.k8s_goals).map_err(|e| e.to_string())?;
        let istio_rows = IstioGoal::parse_csv(&self.istio_goals).map_err(|e| e.to_string())?;
        // The universe's port set derives from BOTH goal tables, the
        // deployed policies and the explicit extras — anything touching
        // it invalidates every per-op cache key (see Engine docs).
        let mut ports: BTreeSet<u16> = muppet_goals::collect_goal_ports(&k8s_rows, &istio_rows);
        ports.extend(&self.extra_ports);
        for p in &bundle.k8s_policies {
            for r in &p.rules {
                ports.extend(&r.ports);
            }
        }
        for p in &bundle.istio_policies {
            for r in &p.rules {
                ports.extend(&r.ports);
            }
        }
        let port_list: Vec<u16> = ports.iter().copied().collect();
        let mv = MeshVocab::new_with_features(
            &bundle.mesh,
            ports,
            PartyId(0),
            PartyId(1),
            self.mtls,
        );
        let mut vocab = mv.vocab.clone();
        let k8s_goals = translate_k8s_goals(&k8s_rows, &mv, &mut vocab)
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(NamedGoal::from)
            .collect();
        let istio_goals = translate_istio_goals(&istio_rows, &mv, &mut vocab)
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(NamedGoal::from)
            .collect();
        let axioms = mv.well_formedness_axioms(&mut vocab);
        let fp = self.fingerprint();
        Ok(WarmSession {
            core: WarmCore {
                spec: self,
                bundle,
                mv,
                vocab,
                axioms,
                k8s_goals,
                istio_goals,
                ports: port_list,
                fp,
            },
            prepared: PreparedStore::new(),
            requests: 0,
        })
    }
}

/// The immutable, parsed artifacts of a loaded spec. A borrowing
/// `Session` is rebuilt from this per request ([`WarmCore::session`]);
/// the rebuild is cheap (clones of already-translated formulas), and
/// the expensive state lives in the sibling [`PreparedStore`].
pub struct WarmCore {
    /// The original spec (for cache-key derivation).
    pub spec: SessionSpec,
    /// Parsed manifests.
    pub bundle: ManifestBundle,
    /// Universe + mesh relation handles.
    pub mv: MeshVocab,
    /// Vocabulary after goal translation (includes fresh ∃-variables).
    pub vocab: Vocabulary,
    /// Well-formedness axioms.
    pub axioms: Vec<Formula>,
    /// Translated K8s-party goals.
    pub k8s_goals: Vec<NamedGoal>,
    /// Translated Istio-party goals.
    pub istio_goals: Vec<NamedGoal>,
    /// The derived universe port set, sorted (part of cache keys).
    pub ports: Vec<u16>,
    /// The spec fingerprint (the session's registry key).
    pub fp: u128,
}

/// A warm session: parsed core + persistent solver state.
pub struct WarmSession {
    /// Parsed, immutable artifacts.
    pub core: WarmCore,
    /// Warm grounded/encoded solver state, reused across requests.
    pub prepared: PreparedStore,
    /// Requests served by this session (for `stats`).
    pub requests: u64,
}

impl WarmCore {
    /// Build a fresh borrowing [`Session`] over this core. Parties are
    /// named exactly as `muppet-cli` names them.
    pub fn session(&self) -> Session<'_> {
        let mut s = Session::new(&self.mv.universe, self.vocab.clone(), self.mv.sidecar_instance());
        s.add_axioms(self.axioms.iter().cloned());
        s.add_party(
            Party::new(self.mv.k8s_party, "k8s-admin")
                .with_goals(self.k8s_goals.iter().cloned()),
        );
        s.add_party(
            Party::new(self.mv.istio_party, "istio-admin")
                .with_goals(self.istio_goals.iter().cloned()),
        );
        s
    }

    /// Resolve a wire party name (`"k8s"` / `"istio"`, or the full
    /// display names) to its id.
    pub fn party_id(&self, name: &str) -> Result<PartyId, String> {
        match name {
            "k8s" | "k8s-admin" => Ok(self.mv.k8s_party),
            "istio" | "istio-admin" => Ok(self.mv.istio_party),
            other => Err(format!("unknown party {other:?} (use k8s or istio)")),
        }
    }

    /// The party's deployed configuration, compiled from the manifest
    /// bundle's policy documents.
    pub fn deployed(&self, id: PartyId) -> Result<Instance, String> {
        if id == self.mv.k8s_party {
            self.mv
                .compile_k8s(&self.bundle.k8s_policies)
                .map_err(|e| e.to_string())
        } else {
            let istio = self
                .mv
                .compile_istio(&self.bundle.istio_policies)
                .map_err(|e| e.to_string())?;
            let peer = self
                .mv
                .compile_peer_auth(&self.bundle.peer_auth)
                .map_err(|e| e.to_string())?;
            Ok(istio.union(&peer))
        }
    }

    /// The goal-table text belonging to a party (for delta-aware cache
    /// keys: a consistency check depends only on *this* text).
    pub fn goals_text(&self, id: PartyId) -> &str {
        if id == self.mv.k8s_party {
            &self.spec.k8s_goals
        } else {
            &self.spec.istio_goals
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_roundtrip() {
        let spec = SessionSpec {
            manifests: "kind: Service\n".into(),
            k8s_goals: "port,perm,selector\n".into(),
            istio_goals: String::new(),
            mtls: true,
            extra_ports: vec![24, 26],
        };
        let back = SessionSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let a = SessionSpec::paper_strict();
        let b = SessionSpec::paper_strict();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = SessionSpec::paper_relaxed();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = SessionSpec::paper_strict();
        d.mtls = true;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn paper_specs_load_and_reconcile_as_in_the_paper() {
        let strict = SessionSpec::paper_strict().load().unwrap();
        let s = strict.core.session();
        let rec = s.reconcile(muppet::ReconcileMode::HardBounds).unwrap();
        assert!(!rec.success, "Fig. 3 goals conflict with the ban");
        let relaxed = SessionSpec::paper_relaxed().load().unwrap();
        let s = relaxed.core.session();
        let rec = s.reconcile(muppet::ReconcileMode::HardBounds).unwrap();
        assert!(rec.success, "Fig. 4 relaxation reconciles: {:?}", rec.core);
    }

    #[test]
    fn bad_specs_error_cleanly() {
        let mut spec = SessionSpec::paper_strict();
        spec.manifests = "kind: Nonsense\n".into();
        assert!(spec.load().is_err());
        let mut spec = SessionSpec::paper_strict();
        spec.k8s_goals = "not,a,valid\nheader,row,x\n".into();
        assert!(spec.load().is_err());
    }
}
