//! `muppetd` — a persistent multi-party coordination daemon.
//!
//! The CLI pays the full pipeline cost (parse → ground → encode →
//! solve) on every invocation. This crate keeps that state alive: a
//! long-running service owns warm per-session solver state (grounded
//! formulas and CNF survive across requests behind
//! [`muppet_solver::PreparedStore`]) and a content-addressed result
//! cache, and answers consistency / reconciliation / envelope /
//! conformance / negotiation queries over a JSON-Lines protocol on a
//! Unix domain socket (optionally TCP).
//!
//! Layering, bottom up:
//!
//! - [`json`] — a small, hardened JSON reader/writer (no external
//!   dependencies; depth-limited, never panics on hostile input).
//! - [`proto`] — the versioned wire protocol: [`proto::Op`],
//!   [`proto::Request`], [`proto::Response`].
//! - [`spec`] — [`spec::SessionSpec`] (the content of a coordination
//!   session) and its loaded form [`spec::WarmSession`].
//! - [`cache`] — the LRU [`cache::ResultCache`] keyed by per-operation
//!   content fingerprints.
//! - [`engine`] — [`engine::Engine`]: session registry + cache +
//!   dispatch; the daemon with the I/O removed (tests and the harness
//!   drive it in-process).
//! - [`server`] / [`client`] — socket plumbing around the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod json;
pub mod proto;
pub mod server;
pub mod spec;

pub use client::{Client, Endpoint, RetryPolicy, RetryReport};
pub use engine::{Engine, EngineConfig, OverloadConfig, ShedReason};
pub use proto::{Op, Request, Response, PROTOCOL_VERSION};
pub use server::{serve, ServerConfig, ServerHandle};
pub use spec::{SessionSpec, WarmSession};
