//! The versioned JSON-Lines wire protocol.
//!
//! One request per line, one response per line. Every message carries
//! `"v": 1`; a server receiving a higher version answers with an error
//! instead of guessing. Requests name an operation (`op`) and address a
//! session either inline (`spec`, the full content) or by handle
//! (`session`, the spec fingerprint in hex returned by `open_session`).
//! Budgets ride on the wire: `timeout_ms` starts a per-request
//! deadline, `conflict_budget`/`retries` configure the escalation
//! schedule, and client disconnect cancels in-flight work through the
//! session's `CancelToken`.

use crate::json::{parse, Json};
use crate::spec::SessionSpec;

/// Protocol version this daemon speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// The operations `muppetd` answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Load (or look up) a warm session for a spec; returns its handle.
    OpenSession,
    /// Alg. 1 for one party.
    CheckConsistency,
    /// Alg. 2 across all parties.
    Reconcile,
    /// Alg. 3: extract an envelope toward `to`.
    ExtractEnvelope,
    /// The Fig. 7/8 conformance workflow.
    CheckConformance,
    /// A bounded Fig. 9 negotiation.
    NegotiateRound,
    /// Daemon counters: cache hit rate, queue depth, latencies.
    Stats,
    /// The last N completed span trees (observability), as JSON.
    Trace,
    /// Open a streaming-reconfiguration watch over a spec: the daemon
    /// keeps a warm multi-shot [`muppet_stream::StreamSession`] alive
    /// and returns a watch id for `push_delta`/`subscribe`/`unwatch`.
    Watch,
    /// Apply one config delta line to a watch and re-solve warm.
    PushDelta,
    /// Mark this connection as a subscriber of a watch: verdict-flip
    /// notifications are pushed to it as unsolicited JSON lines.
    Subscribe,
    /// Tear down a watch and drop its warm solver state.
    Unwatch,
    /// Stop accepting work and shut the daemon down.
    Shutdown,
}

impl Op {
    /// Parse a wire operation name.
    pub fn parse(name: &str) -> Option<Op> {
        Some(match name {
            "open_session" => Op::OpenSession,
            "check_consistency" => Op::CheckConsistency,
            "reconcile" => Op::Reconcile,
            "extract_envelope" => Op::ExtractEnvelope,
            "check_conformance" => Op::CheckConformance,
            "negotiate_round" => Op::NegotiateRound,
            "stats" => Op::Stats,
            "trace" => Op::Trace,
            "watch" => Op::Watch,
            "push_delta" => Op::PushDelta,
            "subscribe" => Op::Subscribe,
            "unwatch" => Op::Unwatch,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }

    /// True when a client may safely re-send this op after a transport
    /// failure where the outcome is unknown (connection dropped after
    /// the request was written). Every op except `shutdown` is either
    /// read-only (`stats`, `trace`) or fingerprint-keyed — its answer
    /// is a pure function of the request content — so running it twice
    /// cannot change any outcome. `shutdown` is excluded: re-sending it
    /// to a freshly restarted daemon would take that instance down too.
    ///
    /// Note this gate only applies to ambiguous transport failures.
    /// An `overloaded` shed response means the daemon never started
    /// the work, so retrying after one is safe for *every* op.
    ///
    /// The streaming ops break the pure-function property: `watch`
    /// mints a fresh watch id per call (a blind retry would leak a
    /// second warm session) and `push_delta` advances a watch's edit
    /// sequence (re-applying an `add-service` fails as a duplicate and
    /// a re-applied goal edit double-advances the stream), so both are
    /// excluded alongside `shutdown`. `subscribe`/`unwatch` are
    /// idempotent on their watch id and stay retry-safe.
    pub fn safe_to_retry(&self) -> bool {
        !matches!(self, Op::Shutdown | Op::Watch | Op::PushDelta)
    }

    /// The wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Op::OpenSession => "open_session",
            Op::CheckConsistency => "check_consistency",
            Op::Reconcile => "reconcile",
            Op::ExtractEnvelope => "extract_envelope",
            Op::CheckConformance => "check_conformance",
            Op::NegotiateRound => "negotiate_round",
            Op::Stats => "stats",
            Op::Trace => "trace",
            Op::Watch => "watch",
            Op::PushDelta => "push_delta",
            Op::Subscribe => "subscribe",
            Op::Unwatch => "unwatch",
            Op::Shutdown => "shutdown",
        }
    }
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<String>,
    /// The operation.
    pub op: Op,
    /// Inline session content (alternative to `session`).
    pub spec: Option<SessionSpec>,
    /// Session handle from a previous `open_session` (hex fingerprint).
    pub session: Option<String>,
    /// `check_consistency`: which party (`"k8s"` / `"istio"`).
    pub party: Option<String>,
    /// `reconcile`: `"hard"` (default) or `"blameable"`.
    pub mode: Option<String>,
    /// `extract_envelope`: recipient (`"istio"` default, or `"k8s"`).
    pub to: Option<String>,
    /// `check_conformance`: provider party (default `"k8s"`).
    pub provider: Option<String>,
    /// `negotiate_round`: max rounds (default 4).
    pub max_rounds: Option<u64>,
    /// Per-request wall-clock budget in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Solver conflict cap per attempt.
    pub conflict_budget: Option<u64>,
    /// Solve attempts (Luby-escalated conflict caps).
    pub retries: Option<u32>,
    /// Portfolio workers for this request's search phase (overrides the
    /// daemon's configured default; 1 = sequential).
    pub threads: Option<u64>,
    /// `trace`: how many recent span trees to return (default 8).
    pub n: Option<u64>,
    /// `push_delta`/`subscribe`/`unwatch`: the watch id from `watch`.
    pub watch: Option<String>,
    /// `push_delta`: one config delta line (the `muppet-scenario`
    /// [`ConfigDelta`](muppet_scenario::ConfigDelta) text codec).
    pub delta: Option<String>,
}

impl Request {
    /// A bare request for `op` (builder-style fields are public).
    pub fn new(op: Op) -> Request {
        Request {
            id: None,
            op,
            spec: None,
            session: None,
            party: None,
            mode: None,
            to: None,
            provider: None,
            max_rounds: None,
            timeout_ms: None,
            conflict_budget: None,
            retries: None,
            threads: None,
            n: None,
            watch: None,
            delta: None,
        }
    }

    /// Attach an inline spec.
    pub fn with_spec(mut self, spec: SessionSpec) -> Request {
        self.spec = Some(spec);
        self
    }

    /// Parse one request line. Errors are human-readable strings (they
    /// go straight into the error response).
    pub fn from_line(line: &str) -> Result<Request, String> {
        let v = parse(line)?;
        Request::from_json(&v)
    }

    /// Parse a request from an already-parsed JSON value.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        if !matches!(v, Json::Obj(_)) {
            return Err("request must be a JSON object".to_string());
        }
        match v.get("v").and_then(Json::as_u64) {
            Some(ver) if ver == PROTOCOL_VERSION => {}
            Some(ver) => return Err(format!("unsupported protocol version {ver}")),
            None => return Err("missing protocol version field \"v\"".to_string()),
        }
        let op_name = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing \"op\"".to_string())?;
        let op = Op::parse(op_name).ok_or_else(|| format!("unknown op {op_name:?}"))?;
        let spec = match v.get("spec") {
            None | Some(Json::Null) => None,
            Some(s) => Some(SessionSpec::from_json(s)?),
        };
        let str_field = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
        let num_field = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(n) => n
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("{key} must be a non-negative integer")),
            }
        };
        Ok(Request {
            id: str_field("id"),
            op,
            spec,
            session: str_field("session"),
            party: str_field("party"),
            mode: str_field("mode"),
            to: str_field("to"),
            provider: str_field("provider"),
            max_rounds: num_field("max_rounds")?,
            timeout_ms: num_field("timeout_ms")?,
            conflict_budget: num_field("conflict_budget")?,
            retries: num_field("retries")?.map(|n| n.min(u64::from(u32::MAX)) as u32),
            threads: num_field("threads")?,
            n: num_field("n")?,
            watch: str_field("watch"),
            delta: str_field("delta"),
        })
    }

    /// Serialize for the wire (used by the client side).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("v".into(), Json::num(PROTOCOL_VERSION)),
            ("op".into(), Json::str(self.op.name())),
        ];
        let mut put_str = |key: &str, val: &Option<String>| {
            if let Some(s) = val {
                pairs.push((key.to_string(), Json::str(s)));
            }
        };
        put_str("id", &self.id);
        put_str("session", &self.session);
        put_str("party", &self.party);
        put_str("mode", &self.mode);
        put_str("to", &self.to);
        put_str("provider", &self.provider);
        put_str("watch", &self.watch);
        put_str("delta", &self.delta);
        if let Some(spec) = &self.spec {
            pairs.push(("spec".into(), spec.to_json()));
        }
        for (key, val) in [
            ("max_rounds", self.max_rounds),
            ("timeout_ms", self.timeout_ms),
            ("conflict_budget", self.conflict_budget),
            ("threads", self.threads),
            ("n", self.n),
        ] {
            if let Some(n) = val {
                pairs.push((key.to_string(), Json::num(n)));
            }
        }
        if let Some(r) = self.retries {
            pairs.push(("retries".into(), Json::num(u64::from(r))));
        }
        Json::Obj(pairs)
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_line()
    }
}

/// A response line.
#[derive(Clone, Debug)]
pub struct Response {
    /// Echo of the request's correlation id.
    pub id: Option<String>,
    /// Did the operation run? (`false` ⇒ see `error`.)
    pub ok: bool,
    /// Operation-specific result object (null on error).
    pub result: Json,
    /// Error message when `ok` is false.
    pub error: Option<String>,
    /// Was the result served from the content-addressed cache?
    pub cached: bool,
    /// The session handle the request resolved to, when any.
    pub session: Option<String>,
    /// Server-side handling time in microseconds.
    pub elapsed_us: u64,
    /// True when the daemon shed this request under admission control
    /// or drain instead of running it (wire: `"status":"overloaded"`).
    /// The work never started, so re-sending is always safe.
    pub overloaded: bool,
    /// Backoff hint accompanying an overloaded response: how long the
    /// client should wait before retrying, in milliseconds.
    pub retry_after_ms: Option<u64>,
}

impl Response {
    /// A success response.
    pub fn success(id: Option<String>, result: Json) -> Response {
        Response {
            id,
            ok: true,
            result,
            error: None,
            cached: false,
            session: None,
            elapsed_us: 0,
            overloaded: false,
            retry_after_ms: None,
        }
    }

    /// An error response.
    pub fn failure(id: Option<String>, error: impl Into<String>) -> Response {
        Response {
            id,
            ok: false,
            result: Json::Null,
            error: Some(error.into()),
            cached: false,
            session: None,
            elapsed_us: 0,
            overloaded: false,
            retry_after_ms: None,
        }
    }

    /// A shed response: the daemon refused to queue the request
    /// (admission limit hit, or the server is draining) and hints when
    /// to retry. Never cached, never executed.
    pub fn overloaded(
        id: Option<String>,
        reason: impl Into<String>,
        retry_after_ms: u64,
    ) -> Response {
        Response {
            id,
            ok: false,
            result: Json::Null,
            error: Some(reason.into()),
            cached: false,
            session: None,
            elapsed_us: 0,
            overloaded: true,
            retry_after_ms: Some(retry_after_ms),
        }
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut pairs: Vec<(String, Json)> = vec![
            ("v".into(), Json::num(PROTOCOL_VERSION)),
            ("ok".into(), Json::Bool(self.ok)),
        ];
        if let Some(id) = &self.id {
            pairs.push(("id".into(), Json::str(id)));
        }
        if let Some(e) = &self.error {
            pairs.push(("error".into(), Json::str(e)));
        }
        if self.overloaded {
            pairs.push(("status".into(), Json::str("overloaded")));
        }
        if let Some(ms) = self.retry_after_ms {
            pairs.push(("retry_after_ms".into(), Json::num(ms)));
        }
        pairs.push(("cached".into(), Json::Bool(self.cached)));
        if let Some(s) = &self.session {
            pairs.push(("session".into(), Json::str(s)));
        }
        pairs.push(("elapsed_us".into(), Json::num(self.elapsed_us)));
        pairs.push(("result".into(), self.result.clone()));
        Json::Obj(pairs).to_line()
    }

    /// Parse a response line (client side).
    pub fn from_line(line: &str) -> Result<Response, String> {
        let v = parse(line)?;
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| "response missing \"ok\"".to_string())?;
        Ok(Response {
            id: v.get("id").and_then(Json::as_str).map(str::to_string),
            ok,
            result: v.get("result").cloned().unwrap_or(Json::Null),
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            session: v.get("session").and_then(Json::as_str).map(str::to_string),
            elapsed_us: v.get("elapsed_us").and_then(Json::as_u64).unwrap_or(0),
            // Lenient on the extended fields: an absent or ill-typed
            // `status`/`retry_after_ms` degrades to "not overloaded" /
            // "no hint" instead of failing the whole line, so old
            // servers and adversarial peers both parse cleanly.
            overloaded: v.get("status").and_then(Json::as_str) == Some("overloaded"),
            retry_after_ms: v.get("retry_after_ms").and_then(Json::as_u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut req = Request::new(Op::Reconcile).with_spec(SessionSpec::paper_strict());
        req.id = Some("r-7".into());
        req.mode = Some("blameable".into());
        req.timeout_ms = Some(500);
        req.retries = Some(3);
        req.threads = Some(4);
        let back = Request::from_line(&req.to_line()).unwrap();
        assert_eq!(back.op, Op::Reconcile);
        assert_eq!(back.id.as_deref(), Some("r-7"));
        assert_eq!(back.mode.as_deref(), Some("blameable"));
        assert_eq!(back.timeout_ms, Some(500));
        assert_eq!(back.retries, Some(3));
        assert_eq!(back.threads, Some(4));
        assert_eq!(back.spec.unwrap(), SessionSpec::paper_strict());
    }

    #[test]
    fn version_is_enforced() {
        assert!(Request::from_line(r#"{"op":"stats"}"#)
            .unwrap_err()
            .contains("version"));
        assert!(Request::from_line(r#"{"v":99,"op":"stats"}"#)
            .unwrap_err()
            .contains("version"));
        assert!(Request::from_line(r#"{"v":1,"op":"dance"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(Request::from_line("[1,2]").is_err());
    }

    #[test]
    fn response_roundtrip() {
        let mut r = Response::success(Some("x".into()), Json::obj([("n", Json::num(3))]));
        r.cached = true;
        r.session = Some("abc".into());
        r.elapsed_us = 1234;
        let back = Response::from_line(&r.to_line()).unwrap();
        assert!(back.ok && back.cached);
        assert_eq!(back.id.as_deref(), Some("x"));
        assert_eq!(back.session.as_deref(), Some("abc"));
        assert_eq!(back.elapsed_us, 1234);
        assert_eq!(back.result.get("n").and_then(Json::as_u64), Some(3));
        let e = Response::from_line(&Response::failure(None, "boom").to_line()).unwrap();
        assert!(!e.ok);
        assert_eq!(e.error.as_deref(), Some("boom"));
    }

    #[test]
    fn overloaded_roundtrip() {
        let r = Response::overloaded(Some("q-1".into()), "queue full", 75);
        let line = r.to_line();
        assert!(line.contains("\"status\":\"overloaded\""));
        assert!(line.contains("\"retry_after_ms\":75"));
        let back = Response::from_line(&line).unwrap();
        assert!(!back.ok && back.overloaded && !back.cached);
        assert_eq!(back.id.as_deref(), Some("q-1"));
        assert_eq!(back.retry_after_ms, Some(75));
        assert_eq!(back.error.as_deref(), Some("queue full"));
        // Ordinary responses carry neither field on the wire.
        let ok_line = Response::success(None, Json::Null).to_line();
        assert!(!ok_line.contains("status") && !ok_line.contains("retry_after_ms"));
        let ok = Response::from_line(&ok_line).unwrap();
        assert!(!ok.overloaded && ok.retry_after_ms.is_none());
    }

    #[test]
    fn malformed_overload_fields_degrade_gracefully() {
        // status with the wrong type, or an unknown value, is "not
        // overloaded" — never a parse failure, never a panic.
        for line in [
            r#"{"v":1,"ok":false,"status":7,"retry_after_ms":5,"result":null}"#,
            r#"{"v":1,"ok":false,"status":"draining-ish","result":null}"#,
            r#"{"v":1,"ok":false,"status":null,"result":null}"#,
        ] {
            let r = Response::from_line(line).unwrap();
            assert!(!r.overloaded, "{line}");
        }
        // retry_after_ms must be a non-negative integer to be honored;
        // strings, negatives and floats degrade to "no hint".
        for line in [
            r#"{"v":1,"ok":false,"status":"overloaded","retry_after_ms":"soon","result":null}"#,
            r#"{"v":1,"ok":false,"status":"overloaded","retry_after_ms":-3,"result":null}"#,
            r#"{"v":1,"ok":false,"status":"overloaded","retry_after_ms":1.5,"result":null}"#,
        ] {
            let r = Response::from_line(line).unwrap();
            assert!(r.overloaded && r.retry_after_ms.is_none(), "{line}");
        }
    }

    #[test]
    fn retry_safety_is_per_op() {
        for op in [
            Op::OpenSession,
            Op::CheckConsistency,
            Op::Reconcile,
            Op::ExtractEnvelope,
            Op::CheckConformance,
            Op::NegotiateRound,
            Op::Stats,
            Op::Trace,
            Op::Subscribe,
            Op::Unwatch,
        ] {
            assert!(op.safe_to_retry(), "{} must be retry-safe", op.name());
        }
        // Shutdown would take a restarted daemon down; watch would mint
        // a duplicate watch; push_delta would double-apply an edit.
        for op in [Op::Shutdown, Op::Watch, Op::PushDelta] {
            assert!(!op.safe_to_retry(), "{} must not be retry-safe", op.name());
        }
    }

    #[test]
    fn op_names_roundtrip() {
        for op in [
            Op::OpenSession,
            Op::CheckConsistency,
            Op::Reconcile,
            Op::ExtractEnvelope,
            Op::CheckConformance,
            Op::NegotiateRound,
            Op::Stats,
            Op::Trace,
            Op::Watch,
            Op::PushDelta,
            Op::Subscribe,
            Op::Unwatch,
            Op::Shutdown,
        ] {
            assert_eq!(Op::parse(op.name()), Some(op));
        }
        assert_eq!(Op::parse("nope"), None);
    }

    #[test]
    fn watch_fields_roundtrip() {
        let mut req = Request::new(Op::PushDelta);
        req.watch = Some("w-3".into());
        req.delta = Some("edit-label canary team=blue".into());
        let back = Request::from_line(&req.to_line()).unwrap();
        assert_eq!(back.op, Op::PushDelta);
        assert_eq!(back.watch.as_deref(), Some("w-3"));
        assert_eq!(back.delta.as_deref(), Some("edit-label canary team=blue"));
        // Absent fields stay absent on the wire.
        let bare = Request::new(Op::Stats).to_line();
        assert!(!bare.contains("watch") && !bare.contains("delta"));
    }
}
