//! Socket plumbing around the [`Engine`].
//!
//! `muppetd` listens on a Unix domain socket (and optionally TCP),
//! speaks one JSON request per line, and answers one JSON response per
//! line. Internally:
//!
//! - one **acceptor** thread per listener (non-blocking accept with a
//!   short stop-flag poll, so shutdown is prompt);
//! - one **reader** thread per connection, which parses request lines,
//!   registers a [`CancelToken`] per in-flight request and enqueues
//!   jobs — on client disconnect every still-running request of that
//!   connection is cancelled cooperatively;
//! - a fixed **worker pool** draining the shared queue; each job runs
//!   under `catch_unwind` so a panicking solve turns into an error
//!   response instead of a dead worker.
//!
//! Responses are written under a per-connection mutex, so concurrent
//! workers never interleave bytes of different lines.
//!
//! **Overload behavior** (DESIGN.md §14): the job queue is bounded by
//! [`OverloadConfig`] — a request that would exceed `max_queue_depth`
//! or its connection's `max_inflight_per_conn` is *shed* immediately
//! with an `overloaded` response carrying a `retry_after_ms` hint,
//! instead of queueing without bound. Readers enforce a mid-line read
//! timeout so a half-open client cannot pin its thread forever. On
//! shutdown the server *drains*: acceptors stop, new requests are shed
//! as `overloaded: draining`, accepted work keeps running until the
//! drain deadline, and any stragglers are then cancelled through their
//! `CancelToken`s — every accepted request still gets a terminal
//! response.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use muppet::CancelToken;

use crate::engine::{Engine, EngineConfig, OverloadConfig, ShedReason};
use crate::json::Json;
use crate::proto::{Op, Request, Response, PROTOCOL_VERSION};

/// How often blocked threads re-check the stop flag.
const STOP_POLL: Duration = Duration::from_millis(20);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Unix domain socket path (a stale file at the path is replaced).
    pub socket: Option<PathBuf>,
    /// Optional TCP listen address, e.g. `127.0.0.1:0`.
    pub tcp: Option<String>,
    /// Worker threads solving requests (clamped to ≥ 1).
    pub workers: usize,
    /// Engine knobs (cache and session capacities).
    pub engine: EngineConfig,
    /// Admission-control, read-timeout and drain knobs.
    pub overload: OverloadConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            socket: None,
            tcp: None,
            workers: 4,
            engine: EngineConfig::default(),
            overload: OverloadConfig::default(),
        }
    }
}

/// One queued request.
struct Job {
    req: Request,
    cancel: CancelToken,
    seq: u64,
    /// Server-wide id in the drain registry.
    gid: u64,
    inflight: Arc<Mutex<HashMap<u64, CancelToken>>>,
    drain: Arc<DrainState>,
    writer: SharedWriter,
}

/// A connection's shared write half. Response lines and subscription
/// pushes serialize through the same mutex, so an unsolicited event
/// line never interleaves bytes with a response line.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Watch-id → subscribed connection writers (streaming notifications).
///
/// Registered by a worker when a `subscribe` succeeds; a verdict flip
/// reported by a `push_delta` response is broadcast to every subscriber
/// of that watch as one unsolicited JSON line distinguished by an
/// `"event"` field (responses never carry one). Entries are pruned when
/// the watch is torn down, when a write fails, and when the owning
/// connection's reader exits.
struct WatchSubs {
    map: Mutex<HashMap<String, Vec<SharedWriter>>>,
}

impl WatchSubs {
    fn new() -> WatchSubs {
        WatchSubs {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Register a subscriber (idempotent per connection).
    fn add(&self, watch: &str, writer: &SharedWriter) {
        let mut map = relock(&self.map);
        let subs = map.entry(watch.to_string()).or_default();
        if !subs.iter().any(|w| Arc::ptr_eq(w, writer)) {
            subs.push(Arc::clone(writer));
        }
    }

    /// Drop every subscription of a torn-down watch.
    fn remove_watch(&self, watch: &str) {
        relock(&self.map).remove(watch);
    }

    /// Drop a disconnected connection's subscriptions.
    fn drop_writer(&self, writer: &SharedWriter) {
        let mut map = relock(&self.map);
        for subs in map.values_mut() {
            subs.retain(|w| !Arc::ptr_eq(w, writer));
        }
        map.retain(|_, subs| !subs.is_empty());
    }

    /// Push one event line to every subscriber of `watch`, pruning
    /// writers whose connection has vanished.
    fn notify(&self, watch: &str, line: &str) {
        let writers: Vec<SharedWriter> =
            relock(&self.map).get(watch).cloned().unwrap_or_default();
        let mut dead = Vec::new();
        for w in &writers {
            let failed = {
                let mut g = relock(w);
                writeln!(g, "{line}").and_then(|_| g.flush()).is_err()
            };
            if failed {
                dead.push(Arc::clone(w));
            }
        }
        if !dead.is_empty() {
            let mut map = relock(&self.map);
            if let Some(subs) = map.get_mut(watch) {
                subs.retain(|w| !dead.iter().any(|d| Arc::ptr_eq(d, w)));
            }
        }
    }
}

/// The shared job queue.
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

/// Server-wide registry of accepted-but-unfinished requests (queued or
/// running), keyed by a global id. The drain watchdog cancels every
/// remaining token here once the drain deadline passes.
struct DrainState {
    inflight: Mutex<HashMap<u64, CancelToken>>,
    next: AtomicU64,
}

/// Ignore mutex poisoning: queue and registry state stay internally
/// consistent even if a panicking thread held the lock (worst case one
/// job entry is stale, which the drain watchdog tolerates).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::stop`] (or send a `shutdown` request) first,
/// then [`ServerHandle::wait`].
pub struct ServerHandle {
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    queue: Arc<Queue>,
    threads: Vec<thread::JoinHandle<()>>,
    socket_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
}

impl ServerHandle {
    /// The engine, for in-process inspection (tests, the harness).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The bound TCP address, when a TCP listener was requested (useful
    /// with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Request shutdown: acceptors stop accepting, readers shed new
    /// requests as `overloaded: draining`, workers drain the queue and
    /// exit. In-flight work past the configured drain deadline is
    /// cancelled by the drain watchdog, so [`ServerHandle::wait`]
    /// returns within roughly the deadline plus one cancellation poll.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.ready.notify_all();
    }

    /// True once [`ServerHandle::stop`] was called (by us or by a
    /// client's `shutdown` request).
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Join acceptor, worker and drain-watchdog threads (reader threads
    /// exit on their own when clients disconnect) and remove the socket
    /// file. Call [`ServerHandle::stop`] first; after a stop this
    /// returns within roughly the drain deadline.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Start the daemon. At least one of `socket` / `tcp` must be set.
pub fn serve(config: ServerConfig) -> Result<ServerHandle, String> {
    if config.socket.is_none() && config.tcp.is_none() {
        return Err("serve: need a unix socket path or a tcp address".to_string());
    }
    let engine = Arc::new(Engine::new(config.engine));
    engine.set_overload_limits(config.overload);
    let stop = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(Queue {
        jobs: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
    });
    let drain = Arc::new(DrainState {
        inflight: Mutex::new(HashMap::new()),
        next: AtomicU64::new(0),
    });
    let subs = Arc::new(WatchSubs::new());
    let overload = config.overload;
    let mut threads = Vec::new();

    for _ in 0..config.workers.max(1) {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        let subs = Arc::clone(&subs);
        threads.push(thread::spawn(move || worker_loop(&engine, &stop, &queue, &subs)));
    }

    {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        let drain_state = Arc::clone(&drain);
        let deadline = Duration::from_millis(overload.drain_deadline_ms.max(1));
        threads.push(thread::spawn(move || {
            drain_watchdog(&engine, &stop, &queue, &drain_state, deadline)
        }));
    }

    let socket_path = config.socket.clone();
    if let Some(path) = &config.socket {
        // Replace a stale socket file from a previous run; refuse to
        // clobber anything that is not a socket.
        if path.exists() {
            let is_socket = std::fs::metadata(path)
                .map(|m| {
                    use std::os::unix::fs::FileTypeExt;
                    m.file_type().is_socket()
                })
                .unwrap_or(false);
            if !is_socket {
                return Err(format!("refusing to replace non-socket file {}", path.display()));
            }
            let _ = std::fs::remove_file(path);
        }
        let listener =
            UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        let drain = Arc::clone(&drain);
        let subs = Arc::clone(&subs);
        threads.push(thread::spawn(move || {
            accept_loop(
                &stop,
                || listener.accept().map(|(s, _)| s),
                |s| spawn_unix(s, &engine, &stop, &queue, &drain, &subs, overload),
            );
        }));
    }

    let mut tcp_addr = None;
    if let Some(addr) = &config.tcp {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        tcp_addr = listener.local_addr().ok();
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        let drain = Arc::clone(&drain);
        let subs = Arc::clone(&subs);
        threads.push(thread::spawn(move || {
            accept_loop(
                &stop,
                || listener.accept().map(|(s, _)| s),
                |s| spawn_tcp(s, &engine, &stop, &queue, &drain, &subs, overload),
            );
        }));
    }

    Ok(ServerHandle {
        engine,
        stop,
        queue,
        threads,
        socket_path,
        tcp_addr,
    })
}

/// Non-blocking accept loop with a stop-flag poll.
fn accept_loop<S>(
    stop: &AtomicBool,
    mut accept: impl FnMut() -> std::io::Result<S>,
    mut spawn: impl FnMut(S),
) {
    while !stop.load(Ordering::SeqCst) {
        match accept() {
            Ok(stream) => spawn(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(STOP_POLL),
            Err(_) => thread::sleep(STOP_POLL),
        }
    }
}

fn spawn_unix(
    stream: UnixStream,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
    queue: &Arc<Queue>,
    drain: &Arc<DrainState>,
    subs: &Arc<WatchSubs>,
    overload: OverloadConfig,
) {
    if overload.read_timeout_ms > 0 {
        // A failed setsockopt leaves the old (blocking) behavior; the
        // connection still works, it is just loris-prone.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(overload.read_timeout_ms)));
    }
    let write_half: Option<Box<dyn Write + Send>> = stream
        .try_clone()
        .ok()
        .map(|s| Box::new(s) as Box<dyn Write + Send>);
    spawn_reader(Box::new(stream), write_half, engine, stop, queue, drain, subs, overload);
}

fn spawn_tcp(
    stream: TcpStream,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
    queue: &Arc<Queue>,
    drain: &Arc<DrainState>,
    subs: &Arc<WatchSubs>,
    overload: OverloadConfig,
) {
    if overload.read_timeout_ms > 0 {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(overload.read_timeout_ms)));
    }
    let write_half: Option<Box<dyn Write + Send>> = stream
        .try_clone()
        .ok()
        .map(|s| Box::new(s) as Box<dyn Write + Send>);
    spawn_reader(Box::new(stream), write_half, engine, stop, queue, drain, subs, overload);
}

/// Start the per-connection reader thread.
///
/// The reader accumulates raw bytes and handles each complete line,
/// instead of `BufRead::read_line`, for two reasons: a socket read
/// timeout must be distinguishable from EOF (a *mid-line* stall is a
/// slow-loris and drops the connection; an idle gap between requests is
/// fine), and a timed-out `read_line` would lose the partial line it
/// had already consumed.
#[allow(clippy::too_many_arguments)] // plumbing shared by two call sites
fn spawn_reader(
    read_half: Box<dyn Read + Send>,
    write_half: Option<Box<dyn Write + Send>>,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
    queue: &Arc<Queue>,
    drain: &Arc<DrainState>,
    subs: &Arc<WatchSubs>,
    overload: OverloadConfig,
) {
    let Some(write_half) = write_half else {
        return; // try_clone failed; drop the connection.
    };
    let engine = Arc::clone(engine);
    let stop = Arc::clone(stop);
    let queue = Arc::clone(queue);
    let drain = Arc::clone(drain);
    let subs = Arc::clone(subs);
    thread::spawn(move || {
        let mut read_half = read_half;
        let writer: SharedWriter = Arc::new(Mutex::new(write_half));
        let inflight: Arc<Mutex<HashMap<u64, CancelToken>>> = Arc::new(Mutex::new(HashMap::new()));
        let seq = AtomicU64::new(0);
        let mut acc: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        'conn: loop {
            while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
                let line_bytes: Vec<u8> = acc.drain(..=pos).collect();
                let line = String::from_utf8_lossy(&line_bytes);
                if !line.trim().is_empty() {
                    handle_line(&line, &engine, &stop, &queue, &drain, overload, &writer, &inflight, &seq);
                }
            }
            match read_half.read(&mut chunk) {
                Ok(0) => break 'conn, // EOF
                Ok(n) => acc.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    // The socket's read timeout fired. Mid-line silence
                    // is a stalled (or malicious) client: answer and
                    // drop the connection so the thread is reclaimed.
                    // Between requests it is just an idle keep-alive.
                    if !acc.is_empty() {
                        write_response(
                            &writer,
                            &Response::failure(
                                None,
                                format!(
                                    "read timeout: request line stalled for {} ms",
                                    overload.read_timeout_ms
                                ),
                            ),
                        );
                        break 'conn;
                    }
                }
                Err(_) => break 'conn, // dead socket
            }
        }
        // Client gone: cancel whatever is still running for it and
        // unsubscribe its writer from every watch.
        if let Ok(inf) = inflight.lock() {
            for tok in inf.values() {
                tok.cancel();
            }
        };
        subs.drop_writer(&writer);
    });
}

/// Parse and dispatch one request line from a connection: admission
/// control, shed responses, shutdown interception, or enqueue.
#[allow(clippy::too_many_arguments)] // plumbing shared by one call site
fn handle_line(
    line: &str,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
    queue: &Arc<Queue>,
    drain: &Arc<DrainState>,
    overload: OverloadConfig,
    writer: &Arc<Mutex<Box<dyn Write + Send>>>,
    inflight: &Arc<Mutex<HashMap<u64, CancelToken>>>,
    seq: &AtomicU64,
) {
    let req = match Request::from_line(line) {
        Ok(req) => req,
        Err(e) => {
            write_response(writer, &Response::failure(None, e));
            return;
        }
    };
    if req.op == Op::Shutdown {
        write_response(writer, &engine.handle(&req, None));
        stop.store(true, Ordering::SeqCst);
        queue.ready.notify_all();
        return;
    }
    let shed = |reason: ShedReason, id: Option<String>| {
        engine.note_shed(reason);
        write_response(
            writer,
            &Response::overloaded(id, reason.message(), overload.retry_after_ms),
        );
    };
    // Draining: a stopped server accepts no new work, but still answers
    // every request with *something* terminal.
    if stop.load(Ordering::SeqCst) {
        shed(ShedReason::Draining, req.id);
        return;
    }
    // Per-connection in-flight cap. Only this reader inserts into the
    // map (workers only remove), so the check cannot race with another
    // admission on the same connection.
    if overload.max_inflight_per_conn > 0
        && relock(inflight).len() >= overload.max_inflight_per_conn
    {
        shed(ShedReason::ConnCap, req.id);
        return;
    }
    let cancel = CancelToken::new();
    let n = seq.fetch_add(1, Ordering::Relaxed);
    let gid = drain.next.fetch_add(1, Ordering::Relaxed);
    let req_id = req.id.clone();
    // The queue-depth check, token registration and depth gauge all
    // happen inside the queue lock: admission is atomic, a shed request
    // registers nothing, and a worker cannot observe (and decrement
    // for) the job before its increment landed. One request is one
    // slot, however many portfolio workers its solve later fans out to.
    let admitted = {
        let mut jobs = relock(&queue.jobs);
        if overload.max_queue_depth > 0 && jobs.len() >= overload.max_queue_depth {
            false
        } else {
            relock(inflight).insert(n, cancel.clone());
            relock(&drain.inflight).insert(gid, cancel.clone());
            jobs.push_back(Job {
                req,
                cancel,
                seq: n,
                gid,
                inflight: Arc::clone(inflight),
                drain: Arc::clone(drain),
                writer: Arc::clone(writer),
            });
            engine.note_enqueued();
            true
        }
    };
    if admitted {
        queue.ready.notify_one();
    } else {
        shed(ShedReason::QueueFull, req_id);
    }
}

/// The worker pool body: drain jobs until stopped *and* the queue is
/// empty (a shutdown request still gets its queued predecessors
/// answered).
fn worker_loop(engine: &Arc<Engine>, stop: &AtomicBool, queue: &Queue, subs: &WatchSubs) {
    loop {
        let job = {
            let mut jobs = match queue.jobs.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                if stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = match queue.ready.wait_timeout(jobs, STOP_POLL) {
                    Ok(r) => r,
                    Err(p) => p.into_inner(),
                };
                jobs = guard;
            }
        };
        let Some(job) = job else { return };
        engine.note_dequeued();
        let resp = catch_unwind(AssertUnwindSafe(|| engine.handle(&job.req, Some(&job.cancel))))
            .unwrap_or_else(|_| {
                Response::failure(job.req.id.clone(), "internal error: request handler panicked")
            });
        if let Ok(mut inf) = job.inflight.lock() {
            inf.remove(&job.seq);
        }
        if let Ok(mut g) = job.drain.inflight.lock() {
            g.remove(&job.gid);
        }
        // A subscription must be live before its ok line is written:
        // the moment the client reads the response it may trigger a
        // flip from another connection, and that event has to land.
        if resp.ok && job.req.op == Op::Subscribe {
            if let Some(w) = resp.result.get("watch").and_then(Json::as_str) {
                subs.add(w, &job.writer);
            }
        }
        write_response(&job.writer, &resp);
        stream_hooks(subs, &job.req, &resp);
    }
}

/// Streaming side effects of a completed job: tear down a watch's
/// subscriptions and broadcast verdict flips. Runs *after* the job's
/// own response line so the requester always sees its answer before
/// any event it triggered (subscriber registration instead runs before
/// the response — see `worker_loop`).
fn stream_hooks(subs: &WatchSubs, req: &Request, resp: &Response) {
    if !resp.ok {
        return;
    }
    let watch = resp.result.get("watch").and_then(Json::as_str);
    match req.op {
        Op::Unwatch => {
            if let Some(w) = watch {
                subs.remove_watch(w);
            }
        }
        Op::PushDelta => {
            if resp.result.get("flipped").and_then(Json::as_bool) != Some(true) {
                return;
            }
            if let Some(w) = watch {
                let grab = |key: &str| resp.result.get(key).cloned().unwrap_or(Json::Null);
                let event = Json::obj([
                    ("v", Json::num(PROTOCOL_VERSION)),
                    ("event", Json::str("verdict_flip")),
                    ("watch", Json::str(w)),
                    ("seq", grab("seq")),
                    ("kind", grab("kind")),
                    ("verdict", grab("verdict")),
                ]);
                subs.notify(w, &event.to_line());
            }
        }
        _ => {}
    }
}

/// The drain watchdog: sleeps until shutdown begins, then watches the
/// queue and the server-wide in-flight registry. Work finishing within
/// the drain deadline drains naturally; once the deadline passes, every
/// remaining token is cancelled (repeatedly, to catch a racing enqueue
/// that slipped in as the stop flag flipped) so stragglers answer as
/// budget-exhausted instead of running arbitrarily long. The measured
/// drain duration and straggler count land in the engine's stats.
fn drain_watchdog(
    engine: &Arc<Engine>,
    stop: &AtomicBool,
    queue: &Queue,
    drain: &DrainState,
    deadline: Duration,
) {
    while !stop.load(Ordering::SeqCst) {
        thread::sleep(STOP_POLL);
    }
    let start = Instant::now();
    let mut cancelled: HashSet<u64> = HashSet::new();
    loop {
        let queued = relock(&queue.jobs).len();
        let running = relock(&drain.inflight).len();
        if queued == 0 && running == 0 {
            break;
        }
        if start.elapsed() >= deadline {
            {
                let g = relock(&drain.inflight);
                for (gid, tok) in g.iter() {
                    if cancelled.insert(*gid) {
                        tok.cancel();
                    }
                }
            }
            // Reap jobs still sitting in the queue. Normally workers
            // drain these, but a request that raced past the stop flag
            // after the last worker exited would otherwise be stranded
            // (and hang this loop); answering it here keeps the
            // every-accepted-request-terminates guarantee.
            let stranded: Vec<Job> = relock(&queue.jobs).drain(..).collect();
            for job in stranded {
                engine.note_dequeued();
                cancelled.insert(job.gid);
                if let Ok(mut inf) = job.inflight.lock() {
                    inf.remove(&job.seq);
                }
                if let Ok(mut g) = job.drain.inflight.lock() {
                    g.remove(&job.gid);
                }
                write_response(
                    &job.writer,
                    &Response::failure(
                        job.req.id.clone(),
                        "cancelled: server drained before this request started",
                    ),
                );
            }
        }
        thread::sleep(STOP_POLL);
    }
    engine.note_drain(start.elapsed(), cancelled.len() as u64);
}

/// Write one response line under the connection's writer lock. Write
/// errors mean the client vanished; they are ignored.
fn write_response(writer: &Mutex<Box<dyn Write + Send>>, resp: &Response) {
    if let Ok(mut w) = writer.lock() {
        let _ = writeln!(w, "{}", resp.to_line());
        let _ = w.flush();
    }
}
