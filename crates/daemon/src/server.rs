//! Socket plumbing around the [`Engine`].
//!
//! `muppetd` listens on a Unix domain socket (and optionally TCP),
//! speaks one JSON request per line, and answers one JSON response per
//! line. Internally:
//!
//! - one **acceptor** thread per listener (non-blocking accept with a
//!   short stop-flag poll, so shutdown is prompt);
//! - one **reader** thread per connection, which parses request lines,
//!   registers a [`CancelToken`] per in-flight request and enqueues
//!   jobs — on client disconnect every still-running request of that
//!   connection is cancelled cooperatively;
//! - a fixed **worker pool** draining the shared queue; each job runs
//!   under `catch_unwind` so a panicking solve turns into an error
//!   response instead of a dead worker.
//!
//! Responses are written under a per-connection mutex, so concurrent
//! workers never interleave bytes of different lines.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use muppet::CancelToken;

use crate::engine::{Engine, EngineConfig};
use crate::proto::{Op, Request, Response};

/// How often blocked threads re-check the stop flag.
const STOP_POLL: Duration = Duration::from_millis(20);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Unix domain socket path (a stale file at the path is replaced).
    pub socket: Option<PathBuf>,
    /// Optional TCP listen address, e.g. `127.0.0.1:0`.
    pub tcp: Option<String>,
    /// Worker threads solving requests (clamped to ≥ 1).
    pub workers: usize,
    /// Engine knobs (cache and session capacities).
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            socket: None,
            tcp: None,
            workers: 4,
            engine: EngineConfig::default(),
        }
    }
}

/// One queued request.
struct Job {
    req: Request,
    cancel: CancelToken,
    seq: u64,
    inflight: Arc<Mutex<HashMap<u64, CancelToken>>>,
    writer: Arc<Mutex<Box<dyn Write + Send>>>,
}

/// The shared job queue.
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::stop`] (or send a `shutdown` request) first,
/// then [`ServerHandle::wait`].
pub struct ServerHandle {
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    queue: Arc<Queue>,
    threads: Vec<thread::JoinHandle<()>>,
    socket_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
}

impl ServerHandle {
    /// The engine, for in-process inspection (tests, the harness).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The bound TCP address, when a TCP listener was requested (useful
    /// with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Request shutdown: acceptors stop accepting, workers drain the
    /// queue and exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.ready.notify_all();
    }

    /// True once [`ServerHandle::stop`] was called (by us or by a
    /// client's `shutdown` request).
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Join acceptor and worker threads (reader threads exit on their
    /// own when clients disconnect) and remove the socket file.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Start the daemon. At least one of `socket` / `tcp` must be set.
pub fn serve(config: ServerConfig) -> Result<ServerHandle, String> {
    if config.socket.is_none() && config.tcp.is_none() {
        return Err("serve: need a unix socket path or a tcp address".to_string());
    }
    let engine = Arc::new(Engine::new(config.engine));
    let stop = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(Queue {
        jobs: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
    });
    let mut threads = Vec::new();

    for _ in 0..config.workers.max(1) {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        threads.push(thread::spawn(move || worker_loop(&engine, &stop, &queue)));
    }

    let socket_path = config.socket.clone();
    if let Some(path) = &config.socket {
        // Replace a stale socket file from a previous run; refuse to
        // clobber anything that is not a socket.
        if path.exists() {
            let is_socket = std::fs::metadata(path)
                .map(|m| {
                    use std::os::unix::fs::FileTypeExt;
                    m.file_type().is_socket()
                })
                .unwrap_or(false);
            if !is_socket {
                return Err(format!("refusing to replace non-socket file {}", path.display()));
            }
            let _ = std::fs::remove_file(path);
        }
        let listener =
            UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        threads.push(thread::spawn(move || {
            accept_loop(&stop, || listener.accept().map(|(s, _)| s), |s| spawn_unix(s, &engine, &stop, &queue));
        }));
    }

    let mut tcp_addr = None;
    if let Some(addr) = &config.tcp {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        tcp_addr = listener.local_addr().ok();
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        threads.push(thread::spawn(move || {
            accept_loop(&stop, || listener.accept().map(|(s, _)| s), |s| spawn_tcp(s, &engine, &stop, &queue));
        }));
    }

    Ok(ServerHandle {
        engine,
        stop,
        queue,
        threads,
        socket_path,
        tcp_addr,
    })
}

/// Non-blocking accept loop with a stop-flag poll.
fn accept_loop<S>(
    stop: &AtomicBool,
    mut accept: impl FnMut() -> std::io::Result<S>,
    mut spawn: impl FnMut(S),
) {
    while !stop.load(Ordering::SeqCst) {
        match accept() {
            Ok(stream) => spawn(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(STOP_POLL),
            Err(_) => thread::sleep(STOP_POLL),
        }
    }
}

fn spawn_unix(stream: UnixStream, engine: &Arc<Engine>, stop: &Arc<AtomicBool>, queue: &Arc<Queue>) {
    let write_half: Option<Box<dyn Write + Send>> = stream
        .try_clone()
        .ok()
        .map(|s| Box::new(s) as Box<dyn Write + Send>);
    spawn_reader(Box::new(stream), write_half, engine, stop, queue);
}

fn spawn_tcp(stream: TcpStream, engine: &Arc<Engine>, stop: &Arc<AtomicBool>, queue: &Arc<Queue>) {
    let write_half: Option<Box<dyn Write + Send>> = stream
        .try_clone()
        .ok()
        .map(|s| Box::new(s) as Box<dyn Write + Send>);
    spawn_reader(Box::new(stream), write_half, engine, stop, queue);
}

/// Start the per-connection reader thread.
fn spawn_reader(
    read_half: Box<dyn Read + Send>,
    write_half: Option<Box<dyn Write + Send>>,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
    queue: &Arc<Queue>,
) {
    let Some(write_half) = write_half else {
        return; // try_clone failed; drop the connection.
    };
    let engine = Arc::clone(engine);
    let stop = Arc::clone(stop);
    let queue = Arc::clone(queue);
    thread::spawn(move || {
        let writer: Arc<Mutex<Box<dyn Write + Send>>> = Arc::new(Mutex::new(write_half));
        let inflight: Arc<Mutex<HashMap<u64, CancelToken>>> = Arc::new(Mutex::new(HashMap::new()));
        let seq = AtomicU64::new(0);
        let mut reader = BufReader::new(read_half);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break, // EOF or dead socket
                Ok(_) => {}
            }
            if line.trim().is_empty() {
                continue;
            }
            let req = match Request::from_line(&line) {
                Ok(req) => req,
                Err(e) => {
                    write_response(&writer, &Response::failure(None, e));
                    continue;
                }
            };
            if req.op == Op::Shutdown {
                write_response(&writer, &engine.handle(&req, None));
                stop.store(true, Ordering::SeqCst);
                queue.ready.notify_all();
                continue;
            }
            let cancel = CancelToken::new();
            let n = seq.fetch_add(1, Ordering::Relaxed);
            if let Ok(mut inf) = inflight.lock() {
                inf.insert(n, cancel.clone());
            }
            // The depth gauge ticks inside the queue lock, *after* a
            // successful push: a failed lock leaks no phantom slot, and
            // a worker cannot observe (and decrement for) the job before
            // its increment landed. One request is one slot, however
            // many portfolio workers its solve later fans out to.
            if let Ok(mut jobs) = queue.jobs.lock() {
                jobs.push_back(Job {
                    req,
                    cancel,
                    seq: n,
                    inflight: Arc::clone(&inflight),
                    writer: Arc::clone(&writer),
                });
                engine.note_enqueued();
            }
            queue.ready.notify_one();
        }
        // Client gone: cancel whatever is still running for it.
        if let Ok(inf) = inflight.lock() {
            for tok in inf.values() {
                tok.cancel();
            }
        };
    });
}

/// The worker pool body: drain jobs until stopped *and* the queue is
/// empty (a shutdown request still gets its queued predecessors
/// answered).
fn worker_loop(engine: &Arc<Engine>, stop: &AtomicBool, queue: &Queue) {
    loop {
        let job = {
            let mut jobs = match queue.jobs.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                if stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = match queue.ready.wait_timeout(jobs, STOP_POLL) {
                    Ok(r) => r,
                    Err(p) => p.into_inner(),
                };
                jobs = guard;
            }
        };
        let Some(job) = job else { return };
        engine.note_dequeued();
        let resp = catch_unwind(AssertUnwindSafe(|| engine.handle(&job.req, Some(&job.cancel))))
            .unwrap_or_else(|_| {
                Response::failure(job.req.id.clone(), "internal error: request handler panicked")
            });
        if let Ok(mut inf) = job.inflight.lock() {
            inf.remove(&job.seq);
        }
        write_response(&job.writer, &resp);
    }
}

/// Write one response line under the connection's writer lock. Write
/// errors mean the client vanished; they are ignored.
fn write_response(writer: &Mutex<Box<dyn Write + Send>>, resp: &Response) {
    if let Ok(mut w) = writer.lock() {
        let _ = writeln!(w, "{}", resp.to_line());
        let _ = w.flush();
    }
}
