//! A small blocking client for the daemon protocol.
//!
//! [`Endpoint`] names where the daemon listens; [`Client`] holds one
//! connection and does line-per-request round trips. `muppet_cli
//! client` and the integration tests are the consumers.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use crate::proto::{Request, Response};

/// Where a daemon listens.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// Unix domain socket path.
    Unix(PathBuf),
    /// TCP address, e.g. `127.0.0.1:7878`.
    Tcp(String),
}

impl Endpoint {
    /// Connect, optionally bounding each response read.
    pub fn connect(&self, read_timeout: Option<Duration>) -> Result<Client, String> {
        match self {
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)
                    .map_err(|e| format!("connect {}: {e}", path.display()))?;
                stream
                    .set_read_timeout(read_timeout)
                    .map_err(|e| format!("set_read_timeout: {e}"))?;
                let write = stream.try_clone().map_err(|e| format!("clone socket: {e}"))?;
                Ok(Client {
                    reader: BufReader::new(Box::new(stream)),
                    writer: Box::new(write),
                })
            }
            Endpoint::Tcp(addr) => {
                let stream =
                    TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                stream
                    .set_read_timeout(read_timeout)
                    .map_err(|e| format!("set_read_timeout: {e}"))?;
                let write = stream.try_clone().map_err(|e| format!("clone socket: {e}"))?;
                Ok(Client {
                    reader: BufReader::new(Box::new(stream)),
                    writer: Box::new(write),
                })
            }
        }
    }

    /// One-shot convenience: connect, send, read one response.
    pub fn roundtrip(
        &self,
        req: &Request,
        read_timeout: Option<Duration>,
    ) -> Result<Response, String> {
        self.connect(read_timeout)?.roundtrip(req)
    }
}

/// One open connection to a daemon.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    /// Send one request and block for its response. (The protocol
    /// allows pipelining, but responses may then arrive out of order —
    /// correlate by `id` if you do.)
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, String> {
        self.send(req)?;
        self.recv()
    }

    /// Send a request line without waiting.
    pub fn send(&mut self, req: &Request) -> Result<(), String> {
        self.send_raw(&req.to_line())
    }

    /// Send a raw protocol line (tests use this to probe how the
    /// server handles malformed input).
    pub fn send_raw(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))
    }

    /// Read the next response line.
    pub fn recv(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("daemon closed the connection".to_string()),
            Ok(_) => Response::from_line(&line),
            Err(e) => Err(format!("recv: {e}")),
        }
    }
}
