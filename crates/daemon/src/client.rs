//! A small blocking client for the daemon protocol.
//!
//! [`Endpoint`] names where the daemon listens; [`Client`] holds one
//! connection and does line-per-request round trips. `muppet_cli
//! client` and the integration tests are the consumers.
//!
//! [`Endpoint::roundtrip_retry`] adds the overload-aware path: jittered
//! exponential backoff that honors the server's `retry_after_ms` hint
//! on `overloaded` shed responses, bounded by an attempt count and a
//! total deadline. Ambiguous transport failures (the connection died
//! after the request was sent) are retried only for ops that are safe
//! to repeat ([`crate::proto::Op::safe_to_retry`]); shed responses are
//! retried for every op, because shed work never started.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::proto::{Request, Response};

/// Where a daemon listens.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// Unix domain socket path.
    Unix(PathBuf),
    /// TCP address, e.g. `127.0.0.1:7878`.
    Tcp(String),
}

impl Endpoint {
    /// Connect, optionally bounding each response read.
    pub fn connect(&self, read_timeout: Option<Duration>) -> Result<Client, String> {
        match self {
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)
                    .map_err(|e| format!("connect {}: {e}", path.display()))?;
                stream
                    .set_read_timeout(read_timeout)
                    .map_err(|e| format!("set_read_timeout: {e}"))?;
                let write = stream.try_clone().map_err(|e| format!("clone socket: {e}"))?;
                Ok(Client {
                    reader: BufReader::new(Box::new(stream)),
                    writer: Box::new(write),
                })
            }
            Endpoint::Tcp(addr) => {
                let stream =
                    TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                stream
                    .set_read_timeout(read_timeout)
                    .map_err(|e| format!("set_read_timeout: {e}"))?;
                let write = stream.try_clone().map_err(|e| format!("clone socket: {e}"))?;
                Ok(Client {
                    reader: BufReader::new(Box::new(stream)),
                    writer: Box::new(write),
                })
            }
        }
    }

    /// One-shot convenience: connect, send, read one response.
    pub fn roundtrip(
        &self,
        req: &Request,
        read_timeout: Option<Duration>,
    ) -> Result<Response, String> {
        self.connect(read_timeout)?.roundtrip(req)
    }

    /// Overload-aware roundtrip: retry with jittered exponential
    /// backoff until a non-shed response arrives, the attempt budget is
    /// spent, or the total deadline would be overrun.
    ///
    /// Retry rules:
    /// - an `overloaded` shed response is retryable for **every** op
    ///   (the daemon never started the work); the sleep honors the
    ///   server's `retry_after_ms` hint as a floor when present;
    /// - a connect failure is retryable for every op (nothing was
    ///   sent);
    /// - a transport failure *after* sending is retryable only when
    ///   [`crate::proto::Op::safe_to_retry`] allows it — for an op
    ///   whose duplicate execution could matter, ambiguity means stop.
    ///
    /// `Ok` carries the final response, which can still be a shed one
    /// (`overloaded: true`) when the backoff budget ran out before the
    /// daemon had room; `Err` means no response was obtained at all.
    pub fn roundtrip_retry(
        &self,
        req: &Request,
        read_timeout: Option<Duration>,
        policy: &RetryPolicy,
    ) -> Result<RetryReport, String> {
        let started = Instant::now();
        let mut jitter = Jitter::new(policy.jitter_seed);
        let mut slept = Duration::ZERO;
        let attempts_max = policy.attempts.max(1);
        let mut last_shed: Option<Response> = None;
        let mut last_err = String::new();
        let mut made = 0u32;
        for attempt in 1..=attempts_max {
            made = attempt;
            let outcome = match self.connect(read_timeout) {
                Err(e) => Err((e, true)), // nothing sent: always retryable
                Ok(mut client) => match client.roundtrip(req) {
                    Ok(resp) => Ok(resp),
                    Err(e) => Err((e, req.op.safe_to_retry())),
                },
            };
            let hint = match outcome {
                Ok(resp) if !resp.overloaded => {
                    return Ok(RetryReport { response: resp, attempts: attempt, slept });
                }
                Ok(resp) => {
                    let hint = resp.retry_after_ms;
                    last_shed = Some(resp);
                    hint
                }
                Err((e, retryable)) => {
                    if !retryable {
                        return Err(format!("{e} (not retried: {} is not idempotent)", req.op.name()));
                    }
                    last_err = e;
                    None
                }
            };
            if attempt == attempts_max {
                break;
            }
            let delay = backoff_delay(policy, attempt, hint, &mut jitter);
            if started.elapsed() + delay > policy.deadline {
                break; // the sleep alone would overrun the total budget
            }
            std::thread::sleep(delay);
            slept += delay;
        }
        match last_shed {
            Some(response) => Ok(RetryReport { response, attempts: made, slept }),
            None => Err(format!("{last_err} (after {made} attempt(s))")),
        }
    }
}

/// Client-side retry/backoff knobs for [`Endpoint::roundtrip_retry`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Maximum total attempts, including the first (clamped to ≥ 1).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per attempt after.
    pub base_delay: Duration,
    /// Cap on any single backoff sleep.
    pub max_delay: Duration,
    /// Total budget across all attempts and sleeps: a retry whose sleep
    /// would overrun it is abandoned instead.
    pub deadline: Duration,
    /// Fixed jitter seed for deterministic tests; `None` seeds from
    /// process randomness.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
            deadline: Duration::from_secs(30),
            jitter_seed: None,
        }
    }
}

/// What [`Endpoint::roundtrip_retry`] did to obtain its response.
#[derive(Clone, Debug)]
pub struct RetryReport {
    /// The final response (check `overloaded`: the budget may have run
    /// out while the daemon was still shedding).
    pub response: Response,
    /// Attempts actually made (1 = no retry was needed).
    pub attempts: u32,
    /// Total time spent sleeping between attempts.
    pub slept: Duration,
}

/// The backoff schedule: exponential from `base_delay`, capped at
/// `max_delay`, with up to +50% multiplicative jitter, and the server's
/// `retry_after_ms` hint (when present) as a floor — the server knows
/// its queue better than our schedule does.
fn backoff_delay(
    policy: &RetryPolicy,
    attempt: u32,
    retry_after_ms: Option<u64>,
    jitter: &mut Jitter,
) -> Duration {
    let base = policy.base_delay.as_millis().min(u128::from(u64::MAX)) as u64;
    let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
    let capped = exp.min(policy.max_delay.as_millis().min(u128::from(u64::MAX)) as u64);
    let hinted = capped.max(retry_after_ms.unwrap_or(0));
    // Full jitter on the upper half: delay in [hinted, 1.5 * hinted].
    let jittered = hinted + jitter.below(hinted / 2 + 1);
    Duration::from_millis(jittered)
}

/// A tiny xorshift64* PRNG for backoff jitter — deterministic under a
/// fixed seed, seeded from `RandomState` otherwise. Not for crypto;
/// just decorrelates retry storms across clients.
struct Jitter(u64);

impl Jitter {
    fn new(seed: Option<u64>) -> Jitter {
        let s = seed.unwrap_or_else(|| RandomState::new().build_hasher().finish());
        Jitter(s | 1) // xorshift must not start at 0
    }

    fn below(&mut self, bound: u64) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        if bound == 0 {
            0
        } else {
            x.wrapping_mul(0x2545_F491_4F6C_DD1D) % bound
        }
    }
}

/// One open connection to a daemon.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    /// Send one request and block for its response. (The protocol
    /// allows pipelining, but responses may then arrive out of order —
    /// correlate by `id` if you do.)
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, String> {
        self.send(req)?;
        self.recv()
    }

    /// Send a request line without waiting.
    pub fn send(&mut self, req: &Request) -> Result<(), String> {
        self.send_raw(&req.to_line())
    }

    /// Send a raw protocol line (tests use this to probe how the
    /// server handles malformed input).
    pub fn send_raw(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))
    }

    /// Read the next response line.
    pub fn recv(&mut self) -> Result<Response, String> {
        Response::from_line(&self.recv_line()?)
    }

    /// Read the next raw protocol line. A subscribed connection
    /// receives unsolicited event lines (distinguished by an `"event"`
    /// field; responses never carry one) interleaved with responses, so
    /// streaming consumers read raw lines and dispatch on that field.
    pub fn recv_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("daemon closed the connection".to_string()),
            Ok(_) => Ok(line),
            Err(e) => Err(format!("recv: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(seed: u64) -> RetryPolicy {
        RetryPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(400),
            deadline: Duration::from_secs(5),
            jitter_seed: Some(seed),
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = policy(7);
        let mut j = Jitter::new(Some(7));
        let mut prev = Duration::ZERO;
        for attempt in 1..=4 {
            let d = backoff_delay(&p, attempt, None, &mut j);
            let nominal = 10u64 << (attempt - 1);
            assert!(d >= Duration::from_millis(nominal), "attempt {attempt}: {d:?}");
            assert!(
                d <= Duration::from_millis(nominal + nominal / 2),
                "attempt {attempt}: jitter beyond +50%: {d:?}"
            );
            assert!(d >= prev / 2, "non-collapsing schedule");
            prev = d;
        }
        // Far past the cap, the sleep still respects max_delay (+50%).
        let d = backoff_delay(&p, 30, None, &mut j);
        assert!(d <= Duration::from_millis(600), "cap violated: {d:?}");
    }

    #[test]
    fn server_hint_is_a_floor() {
        let p = policy(3);
        let mut j = Jitter::new(Some(3));
        // First-attempt nominal backoff is 10ms; a 250ms hint wins.
        let d = backoff_delay(&p, 1, Some(250), &mut j);
        assert!(d >= Duration::from_millis(250), "{d:?}");
        assert!(d <= Duration::from_millis(375), "{d:?}");
        // A tiny hint does not shrink the schedule below its own value.
        let d = backoff_delay(&p, 4, Some(1), &mut j);
        assert!(d >= Duration::from_millis(80), "{d:?}");
    }

    #[test]
    fn jitter_is_deterministic_under_a_seed() {
        let mut a = Jitter::new(Some(42));
        let mut b = Jitter::new(Some(42));
        for _ in 0..32 {
            assert_eq!(a.below(1000), b.below(1000));
        }
        let mut c = Jitter::new(Some(43));
        let same = (0..32).filter(|_| {
            let x = Jitter::new(Some(42)).below(u64::MAX);
            let y = c.below(u64::MAX);
            x == y
        }).count();
        assert!(same < 32, "different seeds must diverge");
        assert_eq!(Jitter::new(Some(9)).below(0), 0, "zero bound is zero");
    }

    #[test]
    fn connect_failure_to_nowhere_errors_after_retries() {
        // No daemon here: every connect fails, and the error surfaces
        // after the attempt budget (kept tiny to keep the test fast).
        let ep = Endpoint::Unix(PathBuf::from("/nonexistent/muppet-test.sock"));
        let p = RetryPolicy {
            attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            deadline: Duration::from_millis(200),
            jitter_seed: Some(1),
        };
        let err = ep
            .roundtrip_retry(&Request::new(crate::proto::Op::Stats), None, &p)
            .unwrap_err();
        assert!(err.contains("attempt"), "{err}");
    }
}
