//! # muppet-portfolio — parallel portfolio solving
//!
//! Runs N diversified clones of one [`muppet_sat::Solver`] over the
//! same clause set, races them first-to-finish, and cancels the losers
//! through the existing [`Budget`]/[`CancelToken`] machinery. Workers
//! share learned clauses below an LBD threshold through a bounded
//! [`SharedPool`]; the winning answer (and the pool contents) flow back
//! into the master solver so warm sessions keep benefiting from the
//! race afterwards.
//!
//! Two execution modes:
//!
//! - **racing** (default): workers run freely and the first decisive
//!   answer wins; throughput is maximal but the winner identity and the
//!   exact work counters depend on OS scheduling.
//! - **deterministic**: workers advance in lockstep rounds of a fixed
//!   conflict slice, clause exchange is sealed only at round barriers
//!   (in worker-id order), and the winner is the lowest-id worker that
//!   finished in the earliest round. Two consecutive runs produce
//!   identical verdicts, winner ids and statistics — the property CI
//!   and the daemon's result cache rely on.
//!
//! Diversification per worker (worker 0 is always the undiversified
//! reference configuration, so a one-worker portfolio behaves exactly
//! like the sequential solver):
//!
//! | worker | restart base | phases     | VSIDS decay | random decisions |
//! |--------|--------------|------------|-------------|------------------|
//! | 0      | 64           | saved      | 0.95        | none             |
//! | 1      | 256          | all true   | 0.99        | none             |
//! | 2      | 32           | seeded rng | 0.90        | ~1/128           |
//! | 3      | 1024         | saved      | 0.95        | ~1/64            |
//! | 4+     | cycle of the above with per-worker seeds                  |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;

pub use pool::{PoolStats, SharedPool};

use muppet_sat::{Budget, ClauseExchange, Lit, SolveResult, Solver};
use std::sync::mpsc;
use std::sync::Arc;

/// Knobs for one portfolio solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PortfolioConfig {
    /// Number of diversified workers. `<= 1` bypasses the portfolio.
    pub threads: usize,
    /// Lockstep rounds with sealed clause exchange instead of a free
    /// race: reproducible verdicts, winner ids and statistics.
    pub deterministic: bool,
    /// Workers export learned clauses with LBD at or below this.
    pub export_lbd_max: u32,
    /// Byte bound on the shared clause pool.
    pub pool_bytes: usize,
    /// Conflicts per worker per round in deterministic mode.
    pub slice_conflicts: u64,
    /// Seed for the per-worker diversification (phases, random
    /// decisions). Always fixed by default so worker *behavior* is
    /// reproducible; only the race outcome is timing-dependent.
    pub seed: u64,
}

impl Default for PortfolioConfig {
    fn default() -> PortfolioConfig {
        PortfolioConfig {
            threads: default_threads(),
            deterministic: false,
            export_lbd_max: 6,
            pool_bytes: 4 << 20,
            slice_conflicts: 3000,
            seed: 0x4D55_5050,
        }
    }
}

impl PortfolioConfig {
    /// Default config with an explicit worker count.
    pub fn with_threads(threads: usize) -> PortfolioConfig {
        PortfolioConfig {
            threads,
            ..PortfolioConfig::default()
        }
    }

    /// `true` when this config actually fans out.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

/// The default worker count: available cores, clamped to 8.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Aggregated outcome of one portfolio solve, for reports and the
/// daemon stats response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortfolioSummary {
    /// Workers that ran.
    pub workers: u32,
    /// Index of the worker whose answer was used (`None` when every
    /// worker exhausted its budget).
    pub winner: Option<u32>,
    /// Learned clauses exported to the shared pool, summed over
    /// workers.
    pub exported: u64,
    /// Foreign clauses imported from the shared pool, summed over
    /// workers.
    pub imported: u64,
    /// Restarts, summed over workers.
    pub restarts: u64,
    /// Conflicts, summed over workers.
    pub conflicts: u64,
}

/// Apply worker `i`'s diversification (see the crate docs table).
/// Worker 0 is always the undiversified reference configuration.
fn diversify(s: &mut Solver, worker: usize, seed: u64) {
    let salt = (seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
    match worker % 4 {
        0 => {
            if worker > 0 {
                // Workers 4, 8, …: reference heuristics, shuffled phases.
                s.randomize_polarities(salt);
            }
        }
        1 => {
            s.set_restart_base(256);
            s.set_default_polarity(true);
            s.set_var_decay(0.99);
            if worker > 1 {
                s.randomize_polarities(salt);
            }
        }
        2 => {
            s.set_restart_base(32);
            s.set_var_decay(0.90);
            s.randomize_polarities(salt);
            s.set_random_branching(salt, 128);
        }
        _ => {
            s.set_restart_base(1024);
            s.set_random_branching(salt, 64);
        }
    }
}

/// Run a portfolio solve over `master`'s clause set under `master`'s
/// installed [`Budget`].
///
/// Clones one diversified worker per thread, races (or rounds) them,
/// and returns the winning worker's answer. Side effects on `master`:
/// the shared pool is drained back into its clause database (so
/// follow-up solves — MUS shrinking, warm re-queries — reuse the
/// race's proofs) and the winning worker's counters are added to
/// `master.stats`.
///
/// With `cfg.threads <= 1` this is exactly
/// `master.solve_with_assumptions(assumptions)`.
pub fn solve_portfolio(
    master: &mut Solver,
    assumptions: &[Lit],
    cfg: &PortfolioConfig,
) -> (SolveResult, PortfolioSummary) {
    let n = cfg.threads;
    if n <= 1 {
        let result = master.solve_with_assumptions(assumptions);
        return (
            result,
            PortfolioSummary {
                workers: 1,
                winner: Some(0),
                ..PortfolioSummary::default()
            },
        );
    }
    if !master.is_ok() {
        return (
            SolveResult::Unsat(Vec::new()),
            PortfolioSummary {
                workers: 0,
                winner: None,
                ..PortfolioSummary::default()
            },
        );
    }

    let pool = Arc::new(SharedPool::new(
        n + 1, // one extra import cursor for the master drain below
        cfg.pool_bytes,
        cfg.deterministic,
    ));
    let caller_budget = master.budget().clone();
    let mut workers: Vec<Solver> = (0..n)
        .map(|i| {
            let mut w = master.clone();
            // reset_stats (not a plain `stats = default()`) also re-bases
            // the inprocessing schedule, so a worker's first inprocess
            // fires a fixed number of conflicts into *its own* run — a
            // pure function of worker state, as lockstep determinism
            // requires — rather than inheriting the master's countdown.
            w.reset_stats();
            w.set_conflict_budget(None);
            diversify(&mut w, i, cfg.seed);
            w.set_clause_exchange(
                i,
                Arc::clone(&pool) as Arc<dyn ClauseExchange>,
                cfg.export_lbd_max,
            );
            w
        })
        .collect();

    let (result, winner) = if cfg.deterministic {
        run_rounds(&mut workers, assumptions, &caller_budget, cfg, &pool)
    } else {
        run_race(&mut workers, assumptions, &caller_budget)
    };

    // Drain the pool into the master so later sequential work on it
    // (core minimization, warm re-queries) starts from the race's
    // proofs; fold the winner's counters into the master's.
    master.absorb_shared(pool.import(n));
    let agg = workers[winner.unwrap_or(0)].stats;
    master.stats.conflicts += agg.conflicts;
    master.stats.decisions += agg.decisions;
    master.stats.propagations += agg.propagations;
    master.stats.restarts += agg.restarts;
    master.stats.learned_clauses += agg.learned_clauses;
    master.stats.deleted_clauses += agg.deleted_clauses;
    master.stats.inprocessings += agg.inprocessings;
    master.stats.subsumed_clauses += agg.subsumed_clauses;
    master.stats.strengthened_clauses += agg.strengthened_clauses;
    master.stats.vivified_clauses += agg.vivified_clauses;
    master.stats.tier_demotions += agg.tier_demotions;
    master.stats.tier_promotions += agg.tier_promotions;

    let summary = PortfolioSummary {
        workers: n as u32,
        winner: winner.map(|w| w as u32),
        exported: workers.iter().map(|w| w.stats.exported_clauses).sum(),
        imported: workers.iter().map(|w| w.stats.imported_clauses).sum(),
        restarts: workers.iter().map(|w| w.stats.restarts).sum(),
        conflicts: workers.iter().map(|w| w.stats.conflicts).sum(),
    };
    // Per-worker telemetry: one child event per worker on the open
    // span (the solver's `search` span, when tracing is on). Gathered
    // after the join, so worker threads never touch the collector.
    let mut span = muppet_obs::span("portfolio");
    if span.is_recording() {
        span.record("workers", u64::from(summary.workers));
        span.record("exported", summary.exported);
        span.record("imported", summary.imported);
        if let Some(w) = summary.winner {
            span.record("winner", u64::from(w));
        }
        for (i, w) in workers.iter().enumerate() {
            span.child_event(
                "worker",
                &[
                    ("id", i as u64),
                    ("conflicts", w.stats.conflicts),
                    ("propagations", w.stats.propagations),
                    ("restarts", w.stats.restarts),
                    ("exported", w.stats.exported_clauses),
                    ("imported", w.stats.imported_clauses),
                    ("won", u64::from(winner == Some(i))),
                ],
            );
        }
    }
    drop(span);
    (result, summary)
}

/// Racing mode: all workers run freely; the first decisive answer
/// cancels the rest through a shared race token stacked on top of the
/// caller's budget (so a client-disconnect cancellation still reaches
/// every worker directly).
fn run_race(
    workers: &mut [Solver],
    assumptions: &[Lit],
    caller_budget: &Budget,
) -> (SolveResult, Option<usize>) {
    let race = muppet_sat::CancelToken::new();
    let (tx, rx) = mpsc::channel::<(usize, SolveResult)>();
    let n = workers.len();
    let mut decisive: Option<(usize, SolveResult)> = None;
    std::thread::scope(|scope| {
        for (i, w) in workers.iter_mut().enumerate() {
            let budget = caller_budget.clone().with_cancel(race.clone());
            let tx = tx.clone();
            scope.spawn(move || {
                w.set_budget(budget);
                let result = w.solve_with_assumptions(assumptions);
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        for _ in 0..n {
            let Ok((i, result)) = rx.recv() else { break };
            if decisive.is_none() && !matches!(result, SolveResult::Unknown) {
                decisive = Some((i, result));
                race.cancel(); // losers observe this at their next poll
            }
        }
    });
    match decisive {
        Some((i, result)) => (result, Some(i)),
        None => (SolveResult::Unknown, None),
    }
}

/// Deterministic mode: lockstep rounds of `slice_conflicts` per worker,
/// clause exchange sealed at round barriers, winner = lowest-id worker
/// that finished in the earliest round.
fn run_rounds(
    workers: &mut [Solver],
    assumptions: &[Lit],
    caller_budget: &Budget,
    cfg: &PortfolioConfig,
    pool: &Arc<SharedPool>,
) -> (SolveResult, Option<usize>) {
    let slice = cfg.slice_conflicts.max(1);
    let mut spent: u64 = 0; // per-worker conflicts granted so far
    loop {
        // Respect the caller's own conflict cap cumulatively.
        let round_slice = match caller_budget.conflict_cap() {
            Some(cap) if spent >= cap => return (SolveResult::Unknown, None),
            Some(cap) => slice.min(cap - spent),
            None => slice,
        };
        spent += round_slice;
        let mut results: Vec<SolveResult> = Vec::with_capacity(workers.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter_mut()
                .map(|w| {
                    let budget = caller_budget.clone().with_conflict_cap(round_slice);
                    scope.spawn(move || {
                        w.set_budget(budget);
                        w.solve_with_assumptions(assumptions)
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().unwrap_or(SolveResult::Unknown));
            }
        });
        // Deterministic winner: lowest id with a decisive answer.
        for (i, r) in results.iter().enumerate() {
            if !matches!(r, SolveResult::Unknown) {
                return (results.swap_remove(i), Some(i));
            }
        }
        // Everyone ran out of slice; check the caller's own limits
        // before the next round (deadline / cancellation / caps).
        if caller_budget.poll().is_some() {
            return (SolveResult::Unknown, None);
        }
        pool.seal_epoch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_sat::{CancelToken, Lit, Var};
    use std::time::{Duration, Instant};

    /// PHP(p, h): p pigeons into h holes; UNSAT iff p > h.
    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..holes {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause([Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
    }

    fn cfg(threads: usize) -> PortfolioConfig {
        PortfolioConfig {
            threads,
            pool_bytes: 1 << 20,
            ..PortfolioConfig::default()
        }
    }

    #[test]
    fn portfolio_agrees_with_sequential_unsat() {
        let mut seq = Solver::new();
        pigeonhole(&mut seq, 7, 6);
        let mut par = seq.clone();
        assert!(seq.solve().is_unsat());
        let (result, summary) = solve_portfolio(&mut par, &[], &cfg(4));
        assert!(result.is_unsat(), "{result:?}");
        assert_eq!(summary.workers, 4);
        assert!(summary.winner.is_some());
    }

    #[test]
    fn portfolio_agrees_with_sequential_sat() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 6);
        let (result, _) = solve_portfolio(&mut s, &[], &cfg(4));
        match result {
            SolveResult::Sat(_) => {}
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn portfolio_core_under_assumptions() {
        // x must be true; assuming ¬x yields a core containing ¬x.
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause([Lit::pos(x)]);
        s.add_clause([Lit::pos(y), Lit::neg(y)]);
        let assumptions = [Lit::neg(x)];
        let (result, _) = solve_portfolio(&mut s, &assumptions, &cfg(3));
        match result {
            SolveResult::Unsat(core) => assert!(core.contains(&Lit::neg(x))),
            r => panic!("expected unsat, got {r:?}"),
        }
    }

    #[test]
    fn deterministic_mode_reproduces_stats() {
        let det = PortfolioConfig {
            threads: 4,
            deterministic: true,
            slice_conflicts: 200,
            pool_bytes: 1 << 20,
            ..PortfolioConfig::default()
        };
        let run = || {
            let mut s = Solver::new();
            pigeonhole(&mut s, 8, 7);
            let (result, summary) = solve_portfolio(&mut s, &[], &det);
            (result.is_unsat(), summary)
        };
        let (unsat1, sum1) = run();
        let (unsat2, sum2) = run();
        assert!(unsat1 && unsat2);
        assert_eq!(sum1, sum2, "deterministic runs must match exactly");
        assert_eq!(sum1.winner, sum2.winner);
    }

    #[test]
    fn deterministic_mode_reproduces_stats_under_tier_pressure() {
        // A tight learnt cap keeps the workers' tiered clause DB (and
        // its reduction/demotion machinery) busy; lockstep replay must
        // still reproduce the winner and every counter byte-for-byte,
        // including the master-drained kernel counters.
        let det = PortfolioConfig {
            threads: 4,
            deterministic: true,
            slice_conflicts: 200,
            pool_bytes: 1 << 20,
            ..PortfolioConfig::default()
        };
        let run = || {
            let mut s = Solver::new();
            pigeonhole(&mut s, 8, 7);
            s.set_max_learnt(50);
            let (result, summary) = solve_portfolio(&mut s, &[], &det);
            (result.is_unsat(), summary, s.stats)
        };
        let (unsat1, sum1, stats1) = run();
        let (unsat2, sum2, stats2) = run();
        assert!(unsat1 && unsat2);
        assert_eq!(sum1, sum2, "deterministic runs must match exactly");
        assert_eq!(
            stats1.deleted_clauses, stats2.deleted_clauses,
            "tiered eviction must replay deterministically"
        );
        assert_eq!(stats1.tier_demotions, stats2.tier_demotions);
        assert_eq!(stats1.tier_promotions, stats2.tier_promotions);
        assert_eq!(stats1.inprocessings, stats2.inprocessings);
        assert_eq!(stats1.subsumed_clauses, stats2.subsumed_clauses);
        assert_eq!(stats1.strengthened_clauses, stats2.strengthened_clauses);
        assert_eq!(stats1.vivified_clauses, stats2.vivified_clauses);
    }

    #[test]
    fn caller_cancellation_reaches_all_workers() {
        // A hard instance raced under a caller token: cancelling the
        // token must bring the whole portfolio home promptly (workers
        // poll their budget at every conflict).
        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                token.cancel();
            })
        };
        let mut s = Solver::new();
        pigeonhole(&mut s, 11, 10);
        s.set_budget(Budget::unlimited().with_cancel(token));
        let start = Instant::now();
        let (result, summary) = solve_portfolio(&mut s, &[], &cfg(4));
        let elapsed = start.elapsed();
        canceller.join().unwrap();
        if matches!(result, SolveResult::Unknown) {
            assert!(summary.winner.is_none());
            assert!(
                elapsed < Duration::from_secs(5),
                "cancellation took {elapsed:?}"
            );
        }
        // (If the portfolio actually solved PHP(11,10) in under 50ms,
        // the race legitimately beat the cancellation — also fine.)
    }

    #[test]
    fn clause_sharing_counts_flow() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 8, 7);
        let share_heavy = PortfolioConfig {
            threads: 4,
            export_lbd_max: 12,
            pool_bytes: 1 << 20,
            ..PortfolioConfig::default()
        };
        let (result, summary) = solve_portfolio(&mut s, &[], &share_heavy);
        assert!(result.is_unsat());
        assert!(summary.exported > 0, "expected exports: {summary:?}");
    }

    #[test]
    fn master_keeps_working_after_portfolio() {
        // Incremental use: solve via portfolio, then add clauses and
        // solve again on the master.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        let (r1, _) = solve_portfolio(&mut s, &[], &cfg(2));
        assert!(r1.is_sat());
        s.add_clause([Lit::neg(a)]);
        s.add_clause([Lit::neg(b)]);
        let (r2, _) = solve_portfolio(&mut s, &[], &cfg(2));
        assert!(r2.is_unsat());
    }
}
