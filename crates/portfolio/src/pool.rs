//! The bounded, epoch-versioned shared learned-clause pool.
//!
//! Workers export glue clauses into the pool and import everything the
//! other workers contributed since their own last visit. The pool is
//! bounded by **bytes** (not clause count): when an insertion would
//! exceed the cap, the worst clauses (highest LBD, then oldest) are
//! evicted until the newcomer fits — and a clause that alone exceeds
//! the cap is simply refused, so a pathological exporter can never grow
//! resident memory past the configured budget.
//!
//! Two scheduling modes:
//!
//! - **racing** (default): exports are visible to other workers as soon
//!   as the exporting thread's `export` call returns.
//! - **deterministic**: exports are staged per worker and only become
//!   visible when the portfolio driver calls [`SharedPool::seal_epoch`]
//!   at a round barrier, merging staged clauses in worker-id order.
//!   Within a round the visible set is frozen, so every worker's
//!   imports — and therefore its whole search trajectory — are a pure
//!   function of the round number.

use muppet_sat::{ClauseExchange, Lit};
use std::collections::HashSet;
use std::sync::Mutex;

/// Fixed per-clause accounting overhead (entry struct, dedup key,
/// vector headers), added to the literal payload when charging bytes.
const ENTRY_OVERHEAD_BYTES: usize = 64;

/// Charged size of a clause with `len` literals.
fn clause_bytes(len: usize) -> usize {
    ENTRY_OVERHEAD_BYTES + 2 * len * std::mem::size_of::<Lit>()
}

#[derive(Debug)]
struct Entry {
    /// Monotonic sequence number; doubles as age (lower = older) and
    /// as the import cursor coordinate.
    seq: u64,
    /// Exporting worker (its own imports skip these).
    source: usize,
    lits: Vec<Lit>,
    lbd: u32,
    bytes: usize,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// Live entries, ascending `seq`.
    entries: Vec<Entry>,
    /// Deterministic mode: clauses staged per worker until the next
    /// [`SharedPool::seal_epoch`].
    staged: Vec<Vec<(Vec<Lit>, u32)>>,
    /// Per-reader import cursor: highest `seq` already handed out.
    cursors: Vec<u64>,
    /// Dedup set over normalized (sorted) literal vectors of live
    /// entries.
    seen: HashSet<Vec<Lit>>,
    next_seq: u64,
    bytes: usize,
    /// Counters for the stats surface.
    accepted: u64,
    rejected: u64,
    evicted: u64,
    epoch: u64,
}

/// Aggregate pool counters, for reports and the daemon stats response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Clauses accepted into the pool.
    pub accepted: u64,
    /// Clauses refused (duplicates, oversized, over-cap).
    pub rejected: u64,
    /// Clauses evicted by the byte bound (LBD-then-age order).
    pub evicted: u64,
    /// Current resident bytes.
    pub bytes: usize,
    /// Current live entries.
    pub entries: usize,
    /// Sealed epochs (deterministic mode only).
    pub epoch: u64,
}

/// The shared clause pool. One instance per portfolio solve, wrapped in
/// an `Arc` and handed to every worker via
/// [`muppet_sat::Solver::set_clause_exchange`].
#[derive(Debug)]
pub struct SharedPool {
    inner: Mutex<PoolInner>,
    cap_bytes: usize,
    deterministic: bool,
}

impl SharedPool {
    /// A pool for `readers` import cursors (workers plus, by
    /// convention, one extra cursor for the master solver to drain the
    /// pool after the race) bounded by `cap_bytes`.
    pub fn new(readers: usize, cap_bytes: usize, deterministic: bool) -> SharedPool {
        SharedPool {
            inner: Mutex::new(PoolInner {
                staged: (0..readers).map(|_| Vec::new()).collect(),
                cursors: vec![0; readers],
                ..PoolInner::default()
            }),
            cap_bytes,
            deterministic,
        }
    }

    /// Deterministic mode: publish all staged exports in worker-id
    /// order and freeze the visible set for the next round.
    pub fn seal_epoch(&self) {
        let mut inner = self.lock();
        let staged: Vec<Vec<(Vec<Lit>, u32)>> =
            inner.staged.iter_mut().map(std::mem::take).collect();
        for (worker, batch) in staged.into_iter().enumerate() {
            for (lits, lbd) in batch {
                insert(&mut inner, self.cap_bytes, worker, lits, lbd);
            }
        }
        inner.epoch += 1;
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.lock();
        PoolStats {
            accepted: inner.accepted,
            rejected: inner.rejected,
            evicted: inner.evicted,
            bytes: inner.bytes,
            entries: inner.entries.len(),
            epoch: inner.epoch,
        }
    }

    /// Current resident bytes (live entries only).
    pub fn resident_bytes(&self) -> usize {
        self.lock().bytes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// Insert one clause, charging bytes and evicting as needed.
fn insert(inner: &mut PoolInner, cap_bytes: usize, source: usize, mut lits: Vec<Lit>, lbd: u32) {
    lits.sort_unstable();
    lits.dedup();
    let bytes = clause_bytes(lits.len());
    if bytes > cap_bytes || inner.seen.contains(&lits) {
        inner.rejected += 1;
        return;
    }
    while inner.bytes + bytes > cap_bytes {
        // Evict the worst live clause: highest LBD, oldest among
        // equals. The pool is small (byte-bounded), a linear scan is
        // fine.
        let victim = inner
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| (e.lbd, u64::MAX - e.seq))
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let e = inner.entries.remove(i);
                inner.bytes -= e.bytes;
                inner.seen.remove(&e.lits);
                inner.evicted += 1;
            }
            None => break, // cap smaller than one clause; refuse below
        }
    }
    if inner.bytes + bytes > cap_bytes {
        inner.rejected += 1;
        return;
    }
    inner.next_seq += 1;
    let seq = inner.next_seq;
    inner.seen.insert(lits.clone());
    inner.bytes += bytes;
    inner.accepted += 1;
    inner.entries.push(Entry {
        seq,
        source,
        lits,
        lbd,
        bytes,
    });
}

impl ClauseExchange for SharedPool {
    fn export(&self, worker: usize, lits: &[Lit], lbd: u32) {
        let mut inner = self.lock();
        if self.deterministic {
            if let Some(buf) = inner.staged.get_mut(worker) {
                buf.push((lits.to_vec(), lbd));
            }
        } else {
            insert(&mut inner, self.cap_bytes, worker, lits.to_vec(), lbd);
        }
    }

    fn import(&self, worker: usize) -> Vec<(Vec<Lit>, u32)> {
        let mut inner = self.lock();
        let cursor = inner.cursors.get(worker).copied().unwrap_or(u64::MAX);
        let mut out = Vec::new();
        let mut high = cursor;
        for e in &inner.entries {
            if e.seq > cursor && e.source != worker {
                out.push((e.lits.clone(), e.lbd));
            }
            if e.seq > high {
                high = e.seq;
            }
        }
        if let Some(c) = inner.cursors.get_mut(worker) {
            *c = high;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_sat::Var;

    fn clause(ids: &[i32]) -> Vec<Lit> {
        ids.iter()
            .map(|&i| Lit::new(Var::from_index(i.unsigned_abs() as usize), i >= 0))
            .collect()
    }

    #[test]
    fn export_import_roundtrip_skips_own_clauses() {
        let pool = SharedPool::new(3, 1 << 20, false);
        pool.export(0, &clause(&[1, 2]), 2);
        pool.export(1, &clause(&[3, 4]), 2);
        let got0 = pool.import(0);
        assert_eq!(got0, vec![(clause(&[3, 4]), 2)]);
        let got1 = pool.import(1);
        assert_eq!(got1, vec![(clause(&[1, 2]), 2)]);
        // Cursor advanced: nothing new on a second import.
        assert!(pool.import(0).is_empty());
        // The extra (master) cursor sees everything.
        assert_eq!(pool.import(2).len(), 2);
    }

    #[test]
    fn duplicates_are_rejected() {
        let pool = SharedPool::new(2, 1 << 20, false);
        pool.export(0, &clause(&[1, 2]), 2);
        pool.export(1, &clause(&[2, 1]), 3); // same clause, reordered
        assert_eq!(pool.stats().accepted, 1);
        assert_eq!(pool.stats().rejected, 1);
    }

    #[test]
    fn pathological_exporter_cannot_exceed_byte_cap() {
        // A tight cap and a firehose of distinct clauses: resident
        // bytes must never exceed the cap, no matter how many clauses
        // are pushed.
        let cap = 4 * 1024;
        let pool = SharedPool::new(2, cap, false);
        for i in 0..10_000i32 {
            let c = clause(&[i + 1, -(i + 2), i + 3]);
            pool.export(0, &c, 2 + (i % 7) as u32);
            assert!(
                pool.resident_bytes() <= cap,
                "pool grew past cap at clause {i}: {} > {cap}",
                pool.resident_bytes()
            );
        }
        let stats = pool.stats();
        assert!(stats.evicted > 0, "eviction must have engaged: {stats:?}");
        assert!(stats.bytes <= cap);
        // A clause bigger than the whole cap is refused outright.
        let huge: Vec<i32> = (1..2000).collect();
        let before = pool.resident_bytes();
        pool.export(0, &clause(&huge), 2);
        assert_eq!(pool.resident_bytes(), before);
    }

    #[test]
    fn eviction_prefers_high_lbd_then_age() {
        // Cap fits exactly three 2-literal clauses.
        let cap = 3 * clause_bytes(2);
        let pool = SharedPool::new(2, cap, false);
        pool.export(0, &clause(&[1, 2]), 5); // oldest, lbd 5
        pool.export(0, &clause(&[3, 4]), 2); // glue
        pool.export(0, &clause(&[5, 6]), 5); // newer, lbd 5
        pool.export(0, &clause(&[7, 8]), 3); // forces one eviction
        let got = pool.import(1);
        let lits: Vec<Vec<Lit>> = got.into_iter().map(|(l, _)| l).collect();
        // The oldest lbd-5 clause went first.
        assert!(!lits.contains(&clause(&[1, 2])));
        assert!(lits.contains(&clause(&[3, 4])));
        assert!(lits.contains(&clause(&[5, 6])));
        assert!(lits.contains(&clause(&[7, 8])));
    }

    #[test]
    fn deterministic_mode_stages_until_sealed() {
        let pool = SharedPool::new(3, 1 << 20, true);
        pool.export(1, &clause(&[1, 2]), 2);
        pool.export(0, &clause(&[3, 4]), 2);
        // Nothing visible before the barrier.
        assert!(pool.import(2).is_empty());
        pool.seal_epoch();
        // Sealed in worker-id order: worker 0's clause first.
        let got = pool.import(2);
        assert_eq!(
            got,
            vec![(clause(&[3, 4]), 2), (clause(&[1, 2]), 2)]
        );
        assert_eq!(pool.stats().epoch, 1);
    }
}
