//! Phase-boundary profiling hooks.
//!
//! Callbacks registered with [`on_span_close`] fire synchronously at
//! every span close (only when tracing is enabled — a disabled
//! pipeline never reaches them). The bench crate registers a
//! [`PhaseAccumulator`] to build per-phase breakdowns for
//! `BENCH_obs.json`; embedders can hook anything else that wants
//! phase timings without touching the pipeline.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// A borrowed view of one finished span, handed to profiler callbacks.
#[derive(Clone, Copy, Debug)]
pub struct SpanEvent<'a> {
    /// Span name (`ground`, `encode`, `search`, `minimize`, …).
    pub name: &'static str,
    /// Slash-joined path from the root span, e.g.
    /// `reconcile/solve/search`.
    pub path: &'a str,
    /// Nesting depth (0 = root).
    pub depth: usize,
    /// Start offset from the root span, µs.
    pub start_us: u64,
    /// Wall-clock duration, µs.
    pub elapsed_us: u64,
    /// Counters recorded on the span.
    pub counters: &'a [(&'static str, u64)],
    /// Attributes recorded on the span.
    pub attrs: &'a [(&'static str, String)],
}

type Callback = Arc<dyn Fn(&SpanEvent<'_>) + Send + Sync>;

fn callbacks() -> &'static RwLock<Vec<Callback>> {
    static CALLBACKS: OnceLock<RwLock<Vec<Callback>>> = OnceLock::new();
    CALLBACKS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Register a callback fired at every span close. Callbacks run on
/// the closing thread and must be fast and panic-free.
pub fn on_span_close(f: impl Fn(&SpanEvent<'_>) + Send + Sync + 'static) {
    let mut cbs = match callbacks().write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    cbs.push(Arc::new(f));
}

/// Remove every registered callback (bench lanes install theirs,
/// drain, then clear).
pub fn clear_profilers() {
    let mut cbs = match callbacks().write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    cbs.clear();
}

/// Fire all registered callbacks for one span close (called by the
/// span module).
pub(crate) fn fire_span_close(event: &SpanEvent<'_>) {
    let cbs = match callbacks().read() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    for cb in cbs.iter() {
        cb(event);
    }
}

/// Aggregated timings for one span name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Spans closed under this name.
    pub count: u64,
    /// Summed wall-clock, µs.
    pub total_us: u64,
    /// Slowest single span, µs.
    pub max_us: u64,
}

/// A shareable per-phase accumulator: register its
/// [`callback`](PhaseAccumulator::callback) with [`on_span_close`],
/// run a workload, then [`drain`](PhaseAccumulator::drain) the
/// per-name totals.
#[derive(Clone, Debug, Default)]
pub struct PhaseAccumulator {
    totals: Arc<Mutex<BTreeMap<&'static str, PhaseTotals>>>,
}

impl PhaseAccumulator {
    /// An empty accumulator.
    pub fn new() -> PhaseAccumulator {
        PhaseAccumulator::default()
    }

    /// The closure to hand to [`on_span_close`].
    pub fn callback(&self) -> impl Fn(&SpanEvent<'_>) + Send + Sync + 'static {
        let totals = Arc::clone(&self.totals);
        move |event| {
            let mut totals = match totals.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            let t = totals.entry(event.name).or_default();
            t.count += 1;
            t.total_us += event.elapsed_us;
            t.max_us = t.max_us.max(event.elapsed_us);
        }
    }

    /// Take the accumulated totals, leaving the accumulator empty.
    pub fn drain(&self) -> BTreeMap<&'static str, PhaseTotals> {
        let mut totals = match self.totals.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        std::mem::take(&mut *totals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_sums_per_name() {
        let acc = PhaseAccumulator::new();
        let cb = acc.callback();
        for (name, us) in [("search", 10), ("search", 30), ("encode", 5)] {
            cb(&SpanEvent {
                name,
                path: name,
                depth: 0,
                start_us: 0,
                elapsed_us: us,
                counters: &[],
                attrs: &[],
            });
        }
        let totals = acc.drain();
        assert_eq!(totals["search"].count, 2);
        assert_eq!(totals["search"].total_us, 40);
        assert_eq!(totals["search"].max_us, 30);
        assert_eq!(totals["encode"].count, 1);
        assert!(acc.drain().is_empty(), "drain resets");
    }
}
