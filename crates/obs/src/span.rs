//! Thread-local span trees with a global ring buffer and an optional
//! JSON-Lines file sink.
//!
//! A span is opened with [`span_named`] and closed when its
//! [`SpanGuard`] drops. Guards nest LIFO on a thread-local stack, so
//! the pipeline needs no signature changes to thread context through:
//! a solve runs on one thread, and whatever opens a span while another
//! is active becomes its child. When the **root** guard of a thread
//! closes, the finished [`SpanNode`] tree is pushed into a bounded
//! global ring buffer, which the daemon's `trace` op serves back as
//! JSON.
//!
//! Every span close additionally (a) fires the registered
//! [`profiler`](crate::profiler) callbacks and (b) appends one
//! JSON-Lines event to the file sink, when one is installed.
//!
//! Tracing is globally gated by one `AtomicBool`: with it off,
//! [`span_named`] is a single relaxed load returning an inert guard.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::profiler::{fire_span_close, SpanEvent};

/// How many finished root span trees the ring buffer retains.
pub const RING_CAPACITY: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span collection on or off process-wide. Off is the default;
/// the daemon turns it on at startup, the CLI/harness when
/// `--trace-json` is given.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is span collection currently enabled?
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The ring buffer capacity (how many root traces `recent_traces` can
/// return at most).
pub fn ring_capacity() -> usize {
    RING_CAPACITY
}

/// One completed span: a named, timed segment of the pipeline with
/// solver counters, string attributes, and child spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Phase or operation name (`ground`, `encode`, `search`, …).
    pub name: &'static str,
    /// Start offset from the root span's start, µs.
    pub start_us: u64,
    /// Wall-clock duration, µs.
    pub elapsed_us: u64,
    /// Numeric counters recorded on the span (solver stats and the
    /// like), in insertion order.
    pub counters: Vec<(&'static str, u64)>,
    /// String attributes (operation fingerprint, mode, party, …).
    pub attrs: Vec<(&'static str, String)>,
    /// Child spans, in completion order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: &'static str, start_us: u64) -> SpanNode {
        SpanNode {
            name,
            start_us,
            elapsed_us: 0,
            counters: Vec::new(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Total spans in this tree (self included).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::span_count).sum::<usize>()
    }

    /// Find the first descendant (depth-first, self included) with
    /// `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// A counter recorded on this span.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// An attribute recorded on this span.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Serialize the whole tree as one compact JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        write_json_string(self.name, out);
        let _ = write!(
            out,
            ",\"start_us\":{},\"elapsed_us\":{}",
            self.start_us, self.elapsed_us
        );
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k, out);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"attrs\":{");
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k, out);
            out.push(':');
            write_json_string(v, out);
        }
        out.push_str("},\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.write_json(out);
        }
        out.push_str("]}");
    }
}

/// Minimal JSON string escaping (mirrors the daemon's serializer).
fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An open span on the thread-local stack.
struct ActiveSpan {
    node: SpanNode,
    started: Instant,
    /// The root span's start (for child offsets).
    epoch: Instant,
}

thread_local! {
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
}

/// Closing a [`SpanGuard`] ends its span: elapsed time is recorded,
/// sinks fire, and the node attaches to its parent (or, for a root,
/// lands in the ring buffer). Inert when tracing was disabled at open.
#[must_use = "a span closes when its guard drops; an unused guard closes immediately"]
pub struct SpanGuard {
    /// Stack index of the owned span; `None` for inert guards.
    idx: Option<usize>,
}

/// Open a span named `name`. With tracing disabled this is one relaxed
/// atomic load.
pub fn span_named(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { idx: None };
    }
    let now = Instant::now();
    let idx = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let (epoch, start_us) = match stack.first() {
            Some(root) => (
                root.epoch,
                now.duration_since(root.epoch).as_micros().min(u128::from(u64::MAX)) as u64,
            ),
            None => (now, 0),
        };
        stack.push(ActiveSpan {
            node: SpanNode::new(name, start_us),
            started: now,
            epoch,
        });
        stack.len() - 1
    });
    SpanGuard { idx: Some(idx) }
}

impl SpanGuard {
    /// Record a numeric counter on this span (last write wins for a
    /// repeated name — callers overwrite, not accumulate).
    pub fn record(&mut self, name: &'static str, value: u64) {
        let Some(idx) = self.idx else { return };
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(active) = stack.get_mut(idx) {
                if let Some(slot) = active.node.counters.iter_mut().find(|(n, _)| *n == name) {
                    slot.1 = value;
                } else {
                    active.node.counters.push((name, value));
                }
            }
        });
    }

    /// Record a string attribute on this span.
    pub fn attr(&mut self, name: &'static str, value: impl Into<String>) {
        let Some(idx) = self.idx else { return };
        let value = value.into();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(active) = stack.get_mut(idx) {
                if let Some(slot) = active.node.attrs.iter_mut().find(|(n, _)| *n == name) {
                    slot.1 = value;
                } else {
                    active.node.attrs.push((name, value));
                }
            }
        });
    }

    /// Attach a zero-duration child event (per-worker telemetry and
    /// other point facts) to this span.
    pub fn child_event(&mut self, name: &'static str, counters: &[(&'static str, u64)]) {
        let Some(idx) = self.idx else { return };
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let Some(active) = stack.get_mut(idx) else { return };
            let start_us = active
                .started
                .duration_since(active.epoch)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            let mut child = SpanNode::new(name, start_us);
            child.counters = counters.to_vec();
            active.node.children.push(child);
        });
    }

    /// Is this guard actually recording (tracing was enabled when it
    /// was opened)?
    pub fn is_recording(&self) -> bool {
        self.idx.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Close any stragglers above us (leaked child guards), then
            // ourselves — preserves tree shape even on unwinds.
            while stack.len() > idx {
                let mut active = match stack.pop() {
                    Some(a) => a,
                    None => return,
                };
                active.node.elapsed_us =
                    active.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                let depth = stack.len();
                let path = stack
                    .iter()
                    .map(|a| a.node.name)
                    .chain(std::iter::once(active.node.name))
                    .collect::<Vec<_>>()
                    .join("/");
                emit_close(&active.node, &path, depth);
                match stack.last_mut() {
                    Some(parent) => parent.node.children.push(active.node),
                    None => push_ring(active.node),
                }
            }
        });
    }
}

/// Fire profiler callbacks and the JSON-Lines sink for one span close.
fn emit_close(node: &SpanNode, path: &str, depth: usize) {
    fire_span_close(&SpanEvent {
        name: node.name,
        path,
        depth,
        start_us: node.start_us,
        elapsed_us: node.elapsed_us,
        counters: &node.counters,
        attrs: &node.attrs,
    });
    let sink = sink_slot();
    let mut guard = match sink.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    if let Some(w) = guard.as_mut() {
        let mut line = String::new();
        line.push_str("{\"name\":");
        write_json_string(node.name, &mut line);
        line.push_str(",\"path\":");
        write_json_string(path, &mut line);
        let _ = write!(
            line,
            ",\"depth\":{depth},\"start_us\":{},\"elapsed_us\":{}",
            node.start_us, node.elapsed_us
        );
        line.push_str(",\"counters\":{");
        for (i, (k, v)) in node.counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write_json_string(k, &mut line);
            let _ = write!(line, ":{v}");
        }
        line.push_str("},\"attrs\":{");
        for (i, (k, v)) in node.attrs.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write_json_string(k, &mut line);
            line.push(':');
            write_json_string(v, &mut line);
        }
        line.push_str("}}");
        let _ = writeln!(w, "{line}");
        if depth == 0 {
            let _ = w.flush();
        }
    }
}

fn ring() -> &'static Mutex<VecDeque<SpanNode>> {
    static RING: OnceLock<Mutex<VecDeque<SpanNode>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
}

fn push_ring(node: SpanNode) {
    let mut ring = match ring().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    if ring.len() == RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(node);
}

/// The last `n` completed root span trees, newest first.
pub fn recent_traces(n: usize) -> Vec<SpanNode> {
    let ring = match ring().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    ring.iter().rev().take(n).cloned().collect()
}

fn sink_slot() -> &'static Mutex<Option<BufWriter<File>>> {
    static SINK: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Install a JSON-Lines file sink: every span close appends one event
/// line to `path` (created or truncated). Implies nothing about the
/// enable gate — callers typically also `set_enabled(true)`.
pub fn set_json_sink(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut guard = match sink_slot().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    *guard = Some(BufWriter::new(file));
    Ok(())
}

/// Flush and remove the JSON-Lines sink, if any.
pub fn clear_json_sink() {
    let mut guard = match sink_slot().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    if let Some(mut w) = guard.take() {
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Span tests share the process-global gate; serialize them.
    fn gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        match GATE.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = gate();
        set_enabled(false);
        let mut s = span_named("nothing");
        assert!(!s.is_recording());
        s.record("x", 1);
        s.attr("a", "b");
        drop(s);
        assert!(recent_traces(usize::MAX)
            .iter()
            .all(|t| t.name != "nothing"));
    }

    #[test]
    fn nested_spans_build_a_tree_in_the_ring() {
        let _g = gate();
        set_enabled(true);
        {
            let mut root = span_named("root-test");
            root.attr("fingerprint", "00ff");
            {
                let mut child = span_named("child");
                child.record("conflicts", 3);
                let _grand = span_named("grandchild");
            }
            root.child_event("worker", &[("imported", 7)]);
        }
        set_enabled(false);
        let traces = recent_traces(4);
        let root = traces
            .iter()
            .find(|t| t.name == "root-test")
            .expect("root trace in ring");
        assert_eq!(root.attr("fingerprint"), Some("00ff"));
        assert_eq!(root.span_count(), 4);
        let child = root.find("child").expect("child span");
        assert_eq!(child.counter("conflicts"), Some(3));
        assert!(child.find("grandchild").is_some());
        assert_eq!(root.find("worker").unwrap().counter("imported"), Some(7));
        // The tree serializes to parseable-looking JSON.
        let json = root.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"name\":\"root-test\""));
    }

    #[test]
    fn ring_is_bounded() {
        let _g = gate();
        set_enabled(true);
        for _ in 0..RING_CAPACITY + 8 {
            let _s = span_named("ring-fill");
        }
        set_enabled(false);
        assert!(recent_traces(usize::MAX).len() <= RING_CAPACITY);
    }

    #[test]
    fn json_sink_gets_one_line_per_close() {
        let _g = gate();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("muppet-obs-sink-{}.jsonl", std::process::id()));
        set_json_sink(&path).expect("create sink");
        set_enabled(true);
        {
            let _root = span_named("sink-root");
            let _child = span_named("sink-child");
        }
        set_enabled(false);
        clear_json_sink();
        let text = std::fs::read_to_string(&path).expect("read sink");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "two closes, two lines: {text}");
        assert!(lines[0].contains("\"name\":\"sink-child\""));
        assert!(lines[0].contains("\"path\":\"sink-root/sink-child\""));
        assert!(lines[1].contains("\"depth\":0"));
    }
}
