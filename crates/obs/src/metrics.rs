//! The in-process metrics registry: named atomic counters, gauges and
//! fixed-bucket latency histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones over atomics; callers on hot paths fetch them once at
//! construction time and tick lock-free afterwards. The registry map
//! itself is only locked on get-or-create and on [`snapshot`] — never
//! per increment.
//!
//! [`snapshot`]: MetricsRegistry::snapshot

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: powers of two from 1 µs to 2³⁰ µs
/// (~18 min), plus one overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram over microseconds. Bucket `i`
/// counts observations with `value_us <= 2^i`; the last bucket absorbs
/// everything larger.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Record one observation, in microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = if us <= 1 {
            0
        } else {
            // Smallest i with 2^i >= us; capped to the overflow bucket.
            (64 - (us - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Record one observation given as a [`std::time::Duration`].
    pub fn observe(&self, d: std::time::Duration) {
        self.observe_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, b)| (1u64 << i.min(63), b.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// A point-in-time histogram copy: `(upper_bound_us, count)` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, µs.
    pub sum_us: u64,
    /// `(inclusive upper bound in µs, observations in bucket)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Estimated quantile (0.0..=1.0), as the upper bound of the
    /// bucket containing it. Conservative: never underestimates.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound;
            }
        }
        self.buckets.last().map_or(0, |&(b, _)| b)
    }
}

/// The registry: get-or-create named metrics, snapshot them all.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, u64)>,
    /// Histogram snapshots.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

impl MetricsRegistry {
    /// An empty registry (tests; production code uses [`registry`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.counters);
        Counter(Arc::clone(map.entry(name.to_string()).or_default()))
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock(&self.gauges);
        Gauge(Arc::clone(map.entry(name.to_string()).or_default()))
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Snapshot every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Lock a metric map, ignoring poisoning (metric maps hold plain data;
/// a panicking snapshotter leaves them consistent).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// The process-global registry.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_tick() {
        let r = MetricsRegistry::new();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same underlying atomic.
        assert_eq!(r.counter("a.b").get(), 5);
        let g = r.gauge("depth");
        g.set(7);
        g.set(3);
        assert_eq!(r.gauge("depth").get(), 3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.b"), Some(5));
        assert_eq!(snap.gauges, vec![("depth".to_string(), 3)]);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        h.observe_us(0);
        h.observe_us(1);
        h.observe_us(2);
        h.observe_us(3);
        h.observe_us(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_us, 1_000_006);
        let get = |bound: u64| s.buckets.iter().find(|&&(b, _)| b == bound).unwrap().1;
        assert_eq!(get(1), 2, "0 and 1 land in the first bucket");
        assert_eq!(get(2), 1);
        assert_eq!(get(4), 1);
        assert_eq!(get(1 << 20), 1, "1s lands in the 2^20 µs bucket");
        assert!(s.quantile_us(0.5) <= 4);
        assert_eq!(s.quantile_us(1.0), 1 << 20);
    }

    #[test]
    fn histogram_overflow_bucket_absorbs_huge_values() {
        let h = Histogram::new();
        h.observe_us(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.buckets.last().unwrap().1, 1);
        assert!(s.quantile_us(0.99) >= 1 << 31);
    }

    #[test]
    fn global_registry_is_shared() {
        registry().counter("test.obs.global").add(2);
        assert!(registry().snapshot().counter("test.obs.global").unwrap_or(0) >= 2);
    }
}
