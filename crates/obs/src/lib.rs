//! # muppet-obs — structured tracing, metrics and profiling hooks
//!
//! The pipeline's observability layer (DESIGN.md §12). Three pieces,
//! all dependency-free (std only, no unsafe):
//!
//! * [`span`] — a thread-local **span tree** recorder. Each solve
//!   phase (`ground` → `encode` → `search` → `minimize`) opens a span;
//!   closing it records wall-clock, solver counters and attributes
//!   (the operation fingerprint among them, so traces join against the
//!   daemon's result cache). Completed root trees land in a bounded
//!   global ring buffer (served by the daemon's `trace` op) and,
//!   optionally, one JSON-Lines event per span close streams to a file
//!   sink (`--trace-json`).
//! * [`metrics`] — a process-global [`MetricsRegistry`] of atomic
//!   counters, gauges and fixed-bucket latency histograms, aggregated
//!   into the daemon's `stats` response.
//! * [`profiler`] — phase-boundary callbacks; the bench crate uses
//!   them to accumulate per-phase breakdowns for `BENCH_obs.json`.
//!
//! ## Overhead contract
//!
//! Tracing is **off** by default. With tracing disabled, [`span_named`]
//! performs exactly one relaxed atomic load and returns an inert guard
//! — no allocation, no clock read, no lock. The harness `o1` lane
//! micro-benches this path and gates the implied overhead at ≤ 2% of
//! the P1 portfolio lane.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod profiler;
pub mod span;

pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use profiler::{clear_profilers, on_span_close, PhaseAccumulator, PhaseTotals, SpanEvent};
pub use span::{
    clear_json_sink, recent_traces, ring_capacity, set_enabled, set_json_sink, span_named,
    tracing_enabled, SpanGuard, SpanNode,
};

/// Open a span over a phase or operation. Sugar for [`span_named`].
///
/// ```
/// let mut g = muppet_obs::span("search");
/// g.attr("mode", "portfolio");
/// g.record("conflicts", 42);
/// drop(g); // close: records elapsed, fires sinks
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    span_named(name)
}
