//! Services, label selectors and the mesh structure.

use std::collections::{BTreeMap, BTreeSet};

/// A service in the mesh: the shared structure both administrators see.
///
/// This corresponds to the Fig. 1 boxes: a name (`test-frontend`), the
/// labels policies select on, and the ports the service listens on
/// (`active_ports` in the Fig. 5 envelope).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Service {
    /// Unique service name.
    pub name: String,
    /// The namespace the service lives in. Multi-tenant clusters — the
    /// paper's motivating setting ("they need to make it possible for
    /// those different teams … to deploy to a single cluster") — divide
    /// services into namespaces, and several of the paper's cited help
    /// posts are namespace-scoped policy confusions.
    pub namespace: String,
    /// Labels, e.g. `app: test-frontend`.
    pub labels: BTreeMap<String, String>,
    /// Ports the service listens on.
    pub ports: BTreeSet<u16>,
    /// Does the workload run an Istio sidecar proxy? Workloads without
    /// one cannot originate mutual TLS, which matters once strict
    /// PeerAuthentication is in play (the Sec. 7 authentication
    /// extension).
    pub sidecar: bool,
}

impl Service {
    /// A service with an automatic `app: <name>` label.
    pub fn new(name: impl Into<String>, ports: impl IntoIterator<Item = u16>) -> Service {
        let name = name.into();
        let mut labels = BTreeMap::new();
        labels.insert("app".to_string(), name.clone());
        Service {
            name,
            namespace: "default".to_string(),
            labels,
            ports: ports.into_iter().collect(),
            sidecar: true,
        }
    }

    /// Place the service in a namespace (builder style).
    pub fn in_namespace(mut self, ns: impl Into<String>) -> Service {
        self.namespace = ns.into();
        self
    }

    /// Mark the service as running without a sidecar proxy (builder
    /// style).
    pub fn without_sidecar(mut self) -> Service {
        self.sidecar = false;
        self
    }

    /// Add a label (builder style).
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Service {
        self.labels.insert(key.into(), value.into());
        self
    }
}

/// A label selector, as used by both NetworkPolicy (`podSelector`) and
/// AuthorizationPolicy (`selector.matchLabels`).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Selector {
    /// Matches every service (`{}` / `*` in the paper's Fig. 2).
    #[default]
    All,
    /// Matches services whose labels include all the given pairs.
    Labels(BTreeMap<String, String>),
    /// Matches a single service by name (sugar used by goal files).
    Name(String),
    /// Matches every service in a namespace (K8s `namespaceSelector`).
    Namespace(String),
}

impl Selector {
    /// Selector for one label pair.
    pub fn label(key: impl Into<String>, value: impl Into<String>) -> Selector {
        let mut m = BTreeMap::new();
        m.insert(key.into(), value.into());
        Selector::Labels(m)
    }

    /// Does this selector match the service?
    pub fn matches(&self, service: &Service) -> bool {
        match self {
            Selector::All => true,
            Selector::Labels(req) => req
                .iter()
                .all(|(k, v)| service.labels.get(k).map(|x| x == v).unwrap_or(false)),
            Selector::Name(n) => &service.name == n,
            Selector::Namespace(ns) => &service.namespace == ns,
        }
    }
}

/// The mesh: the set of services. Shared, fixed structure.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Mesh {
    services: Vec<Service>,
}

impl Mesh {
    /// An empty mesh.
    pub fn new() -> Mesh {
        Mesh::default()
    }

    /// Add a service. Replaces any existing service of the same name.
    pub fn add_service(&mut self, service: Service) {
        self.services.retain(|s| s.name != service.name);
        self.services.push(service);
    }

    /// Build a mesh from a sequence of services (later duplicates of a
    /// name replace earlier ones, as with [`Mesh::add_service`]).
    pub fn from_services(services: impl IntoIterator<Item = Service>) -> Mesh {
        let mut m = Mesh::new();
        for s in services {
            m.add_service(s);
        }
        m
    }

    /// All services, in insertion order.
    pub fn services(&self) -> &[Service] {
        &self.services
    }

    /// Find a service by name.
    pub fn service(&self, name: &str) -> Option<&Service> {
        self.services.iter().find(|s| s.name == name)
    }

    /// The services matched by a selector.
    pub fn select(&self, selector: &Selector) -> Vec<&Service> {
        self.services
            .iter()
            .filter(|s| selector.matches(s))
            .collect()
    }

    /// All ports any service listens on.
    pub fn all_ports(&self) -> BTreeSet<u16> {
        self.services
            .iter()
            .flat_map(|s| s.ports.iter().copied())
            .collect()
    }

    /// The Fig. 1 example mesh: frontend, backend and database with the
    /// paper's port assignments (frontend listens on 23, backend on 25
    /// and 12000, database on 16000).
    pub fn paper_example() -> Mesh {
        let mut m = Mesh::new();
        m.add_service(Service::new("test-frontend", [23]));
        m.add_service(Service::new("test-backend", [25, 12000]));
        m.add_service(Service::new("test-db", [16000]));
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_match_by_label_name_and_all() {
        let svc = Service::new("test-db", [16000]).with_label("tier", "data");
        assert!(Selector::All.matches(&svc));
        assert!(Selector::label("app", "test-db").matches(&svc));
        assert!(Selector::label("tier", "data").matches(&svc));
        assert!(!Selector::label("tier", "web").matches(&svc));
        assert!(Selector::Name("test-db".into()).matches(&svc));
        assert!(!Selector::Name("other".into()).matches(&svc));
        let mut multi = BTreeMap::new();
        multi.insert("app".to_string(), "test-db".to_string());
        multi.insert("tier".to_string(), "data".to_string());
        assert!(Selector::Labels(multi.clone()).matches(&svc));
        multi.insert("zone".to_string(), "us".to_string());
        assert!(!Selector::Labels(multi).matches(&svc));
    }

    #[test]
    fn mesh_lookup_and_selection() {
        let mesh = Mesh::paper_example();
        assert_eq!(mesh.services().len(), 3);
        assert!(mesh.service("test-backend").is_some());
        assert!(mesh.service("nope").is_none());
        assert_eq!(mesh.select(&Selector::All).len(), 3);
        assert_eq!(
            mesh.select(&Selector::label("app", "test-db"))
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>(),
            vec!["test-db"]
        );
        let ports = mesh.all_ports();
        for p in [23u16, 25, 12000, 16000] {
            assert!(ports.contains(&p));
        }
    }

    #[test]
    fn namespace_selector_and_builder() {
        let svc = Service::new("pay-api", [8443]).in_namespace("pay");
        assert_eq!(svc.namespace, "pay");
        assert!(Selector::Namespace("pay".into()).matches(&svc));
        assert!(!Selector::Namespace("shop".into()).matches(&svc));
        // Default namespace.
        let d = Service::new("x", [1]);
        assert_eq!(d.namespace, "default");
        assert!(Selector::Namespace("default".into()).matches(&d));
        // Sidecar builder.
        assert!(d.sidecar);
        assert!(!Service::new("y", [1]).without_sidecar().sidecar);
    }

    #[test]
    fn add_service_replaces_same_name() {
        let mut mesh = Mesh::new();
        mesh.add_service(Service::new("a", [1]));
        mesh.add_service(Service::new("a", [2]));
        assert_eq!(mesh.services().len(), 1);
        assert!(mesh.service("a").unwrap().ports.contains(&2));
    }
}
