//! # muppet-mesh — the microservices configuration domain
//!
//! The paper applies Muppet "in the microservices access-control domain"
//! (Sec. 5): one Kubernetes administrator controlling NetworkPolicy
//! objects, one Istio administrator controlling AuthorizationPolicy
//! objects, over a shared set of Services. This crate supplies everything
//! domain-specific:
//!
//! * **System structure** ([`Service`], [`Mesh`]): services with names,
//!   labels and listening ports — the Fig. 1 architecture.
//! * **Policy models** ([`NetworkPolicy`], [`AuthorizationPolicy`]): the
//!   modeled subsets of the two policy languages, each able to allow or
//!   deny traffic by service selector and port (Sec. 5's modeling scope).
//! * **Dataplane simulator** ([`dataplane`]): an executable reference
//!   semantics deciding, with an explanation trace, whether a flow is
//!   delivered under the *combined* K8s + Istio configuration
//!   (deny-overrides across layers; implicit deny in the presence of
//!   allow policies). The paper ran against mental models of real
//!   clusters; we substitute this simulator and differentially test the
//!   logical encoding against it.
//! * **Logical encoding** ([`encode::MeshVocab`]): sorts, relations and
//!   the compile/decompile maps between policy objects and relation
//!   tables, plus the two-layer `allowed(src, dst, dport)` formula that
//!   goal translation builds on. Relations are owned by the right party
//!   ([`muppet_logic::Domain`]), which is what makes envelope extraction
//!   work.
//! * **Manifests** ([`manifest`]): YAML ingestion and emission for
//!   services and both policy kinds, in the shapes `kubectl`/`istioctl`
//!   accept (with two documented `x-muppet-*` extension fields where the
//!   paper's model is richer than stock K8s).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataplane;
pub mod encode;
pub mod manifest;
mod policy;
mod service;

pub use dataplane::{evaluate_flow, evaluate_flow_full, Decision, Flow};
pub use encode::MeshVocab;
pub use policy::{
    Action, AuthPolicyRule, AuthorizationPolicy, Direction, MtlsMode, NetPolicyRule,
    NetworkPolicy, PeerAuthentication,
};
pub use service::{Mesh, Selector, Service};
