//! YAML manifests: the production file formats Muppet consumes.
//!
//! "Muppet consumes the YAML files that K8s and Istio administrators use
//! in production to model the system structure" (Sec. 3). This module
//! parses and emits:
//!
//! * **Service** (`v1/Service`): name, labels, listening ports;
//! * **NetworkPolicy** (`networking.k8s.io/v1`): `podSelector`,
//!   `policyTypes`, `ingress`/`egress` rules with `from`/`to` peers and
//!   `ports`. The paper's model additionally supports DENY rules
//!   (Fig. 2's `perm` column); stock NetworkPolicy is allow-only, so deny
//!   policies round-trip through the `x-muppet-action: Deny` annotation.
//! * **AuthorizationPolicy** (`security.istio.io/v1`): `selector`,
//!   `action`, `rules[].from[].source.principals`,
//!   `rules[].to[].operation.ports`. The paper's model also has egress
//!   policies on the source (Fig. 5's `allow_to_ports`); these round-trip
//!   through `x-muppet-direction: Egress`.
//!
//! Principals may be bare service names or full SPIFFE-style identities
//! (`cluster.local/ns/default/sa/<name>`); the trailing segment is the
//! service name.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use muppet_yaml::{parse_documents, Yaml};

use crate::policy::{
    Action, AuthPolicyRule, AuthorizationPolicy, Direction, MtlsMode, NetPolicyRule,
    NetworkPolicy, PeerAuthentication,
};
use crate::service::{Mesh, Selector, Service};

/// Errors from manifest ingestion.
#[derive(Clone, Debug, PartialEq)]
pub enum ManifestError {
    /// Underlying YAML error.
    Yaml(muppet_yaml::ParseError),
    /// Structurally invalid manifest.
    Invalid(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Yaml(e) => write!(f, "{e}"),
            ManifestError::Invalid(m) => write!(f, "invalid manifest: {m}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<muppet_yaml::ParseError> for ManifestError {
    fn from(e: muppet_yaml::ParseError) -> ManifestError {
        ManifestError::Yaml(e)
    }
}

fn invalid(msg: impl Into<String>) -> ManifestError {
    ManifestError::Invalid(msg.into())
}

/// Everything found in a multi-document manifest stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ManifestBundle {
    /// The mesh structure (from Service documents).
    pub mesh: Mesh,
    /// K8s NetworkPolicies.
    pub k8s_policies: Vec<NetworkPolicy>,
    /// Istio AuthorizationPolicies.
    pub istio_policies: Vec<AuthorizationPolicy>,
    /// Istio PeerAuthentication policies (mTLS extension).
    pub peer_auth: Vec<PeerAuthentication>,
}

/// Parse a multi-document YAML stream, dispatching on `kind`.
pub fn parse_manifests(input: &str) -> Result<ManifestBundle, ManifestError> {
    let mut bundle = ManifestBundle::default();
    for doc in parse_documents(input)? {
        match doc.get("kind").and_then(Yaml::as_str) {
            Some("Service") => bundle.mesh.add_service(parse_service(&doc)?),
            Some("NetworkPolicy") => bundle.k8s_policies.push(parse_network_policy(&doc)?),
            Some("AuthorizationPolicy") => {
                bundle.istio_policies.push(parse_authorization_policy(&doc)?)
            }
            Some("PeerAuthentication") => {
                bundle.peer_auth.push(parse_peer_authentication(&doc)?)
            }
            Some(other) => {
                return Err(invalid(format!("unsupported kind {other:?}")));
            }
            None => return Err(invalid("document without a kind")),
        }
    }
    Ok(bundle)
}

fn metadata_name(doc: &Yaml) -> Result<String, ManifestError> {
    doc.get_path(&["metadata", "name"])
        .and_then(Yaml::as_str)
        .map(str::to_string)
        .ok_or_else(|| invalid("missing metadata.name"))
}

fn annotation<'y>(doc: &'y Yaml, key: &str) -> Option<&'y str> {
    doc.get_path(&["metadata", "annotations", key])
        .and_then(Yaml::as_str)
}

/// Parse a `v1/Service` document.
pub fn parse_service(doc: &Yaml) -> Result<Service, ManifestError> {
    let name = metadata_name(doc)?;
    let mut labels = BTreeMap::new();
    if let Some(pairs) = doc
        .get_path(&["metadata", "labels"])
        .and_then(Yaml::as_map)
    {
        for (k, v) in pairs {
            labels.insert(
                k.clone(),
                v.as_scalar_string()
                    .ok_or_else(|| invalid(format!("label {k:?} must be a scalar")))?,
            );
        }
    }
    if labels.is_empty() {
        labels.insert("app".to_string(), name.clone());
    }
    let mut ports = BTreeSet::new();
    if let Some(items) = doc.get_path(&["spec", "ports"]).and_then(Yaml::as_seq) {
        for item in items {
            let port = match item {
                Yaml::Int(_) | Yaml::Str(_) => item.as_i64(),
                other => other.get("port").and_then(Yaml::as_i64),
            }
            .ok_or_else(|| invalid("service port entries need a numeric `port`"))?;
            ports.insert(
                u16::try_from(port).map_err(|_| invalid(format!("port {port} out of range")))?,
            );
        }
    }
    let sidecar = annotation(doc, "x-muppet-sidecar")
        .map(|v| v != "false")
        .unwrap_or(true);
    let namespace = doc
        .get_path(&["metadata", "namespace"])
        .and_then(Yaml::as_str)
        .unwrap_or("default")
        .to_string();
    Ok(Service {
        name,
        namespace,
        labels,
        ports,
        sidecar,
    })
}

fn parse_selector(node: Option<&Yaml>) -> Result<Selector, ManifestError> {
    let Some(node) = node else {
        return Ok(Selector::All);
    };
    if node.is_null() {
        return Ok(Selector::All);
    }
    let map = node
        .as_map()
        .ok_or_else(|| invalid("selector must be a mapping"))?;
    if map.is_empty() {
        return Ok(Selector::All);
    }
    let labels = node
        .get("matchLabels")
        .ok_or_else(|| invalid("selector must be `{}` or have matchLabels"))?;
    let pairs = labels
        .as_map()
        .ok_or_else(|| invalid("matchLabels must be a mapping"))?;
    if pairs.is_empty() {
        return Ok(Selector::All);
    }
    let mut out = BTreeMap::new();
    for (k, v) in pairs {
        out.insert(
            k.clone(),
            v.as_scalar_string()
                .ok_or_else(|| invalid(format!("matchLabels {k:?} must be a scalar")))?,
        );
    }
    // The well-known namespace label round-trips to a namespace
    // selector.
    if out.len() == 1 {
        if let Some(ns) = out.get("kubernetes.io/metadata.name") {
            return Ok(Selector::Namespace(ns.clone()));
        }
    }
    Ok(Selector::Labels(out))
}

/// Parsed `ports:` entries: discrete ports and `port`/`endPort` ranges.
type PortsAndRanges = (BTreeSet<u16>, Vec<(u16, u16)>);

fn parse_ports_list(node: Option<&Yaml>) -> Result<PortsAndRanges, ManifestError> {
    let mut out = BTreeSet::new();
    let mut ranges = Vec::new();
    if let Some(items) = node.and_then(Yaml::as_seq) {
        for item in items {
            let port = match item {
                Yaml::Int(_) | Yaml::Str(_) => item.as_i64(),
                other => other.get("port").and_then(Yaml::as_i64),
            }
            .ok_or_else(|| invalid("ports entries must be numbers or have `port`"))?;
            let port = u16::try_from(port)
                .map_err(|_| invalid(format!("port {port} out of range")))?;
            // K8s `endPort`: an inclusive range starting at `port`.
            match item.get("endPort").map(|e| e.as_i64()) {
                Some(Some(end)) => {
                    let end = u16::try_from(end)
                        .map_err(|_| invalid(format!("endPort {end} out of range")))?;
                    if end < port {
                        return Err(invalid(format!(
                            "endPort {end} is below port {port}"
                        )));
                    }
                    ranges.push((port, end));
                }
                Some(None) => return Err(invalid("endPort must be numeric")),
                None => {
                    out.insert(port);
                }
            }
        }
    }
    Ok((out, ranges))
}

/// Parse a `networking.k8s.io/v1 NetworkPolicy` document.
pub fn parse_network_policy(doc: &Yaml) -> Result<NetworkPolicy, ManifestError> {
    let name = metadata_name(doc)?;
    let action = match annotation(doc, "x-muppet-action") {
        Some("Deny") | Some("DENY") => Action::Deny,
        Some("Allow") | Some("ALLOW") | None => Action::Allow,
        Some(other) => return Err(invalid(format!("unknown x-muppet-action {other:?}"))),
    };
    let selector = parse_selector(doc.get_path(&["spec", "podSelector"]))?;
    let has_ingress = doc.get_path(&["spec", "ingress"]).is_some();
    let has_egress = doc.get_path(&["spec", "egress"]).is_some();
    let (direction, rules_node, peer_key) = match (has_ingress, has_egress) {
        (true, false) => (Direction::Ingress, doc.get_path(&["spec", "ingress"]), "from"),
        (false, true) => (Direction::Egress, doc.get_path(&["spec", "egress"]), "to"),
        (true, true) => {
            return Err(invalid(
                "policies with both ingress and egress sections are outside the modeled \
                 subset; split them into two policies",
            ))
        }
        (false, false) => {
            // Direction can still come from policyTypes (a selector-only
            // policy, e.g. default-deny).
            let types = doc
                .get_path(&["spec", "policyTypes"])
                .and_then(Yaml::as_seq)
                .ok_or_else(|| invalid("policy needs ingress, egress or policyTypes"))?;
            let dirs: Vec<&str> = types.iter().filter_map(Yaml::as_str).collect();
            match dirs.as_slice() {
                ["Ingress"] => (Direction::Ingress, None, "from"),
                ["Egress"] => (Direction::Egress, None, "to"),
                _ => return Err(invalid("policyTypes must be exactly [Ingress] or [Egress]")),
            }
        }
    };
    let mut rules = Vec::new();
    if let Some(items) = rules_node.and_then(Yaml::as_seq) {
        for item in items {
            let (ports, port_ranges) = parse_ports_list(item.get("ports"))?;
            let peers = item.get(peer_key).and_then(Yaml::as_seq);
            match peers {
                None => rules.push(NetPolicyRule {
                    peer: Selector::All,
                    ports,
                    port_ranges,
                }),
                Some(peers) => {
                    for peer in peers {
                        let sel = parse_selector(peer.get("podSelector"))?;
                        rules.push(NetPolicyRule {
                            peer: sel,
                            ports: ports.clone(),
                            port_ranges: port_ranges.clone(),
                        });
                    }
                }
            }
        }
    }
    Ok(NetworkPolicy {
        name,
        selector,
        direction,
        action,
        rules,
    })
}

/// The service name inside a principal string: either a bare name or the
/// final `/`-separated segment of a SPIFFE-style identity.
fn principal_service(p: &str) -> String {
    p.rsplit('/').next().unwrap_or(p).to_string()
}

/// Parse a `security.istio.io/v1 AuthorizationPolicy` document.
pub fn parse_authorization_policy(doc: &Yaml) -> Result<AuthorizationPolicy, ManifestError> {
    let name = metadata_name(doc)?;
    let direction = match annotation(doc, "x-muppet-direction") {
        Some("Egress") | Some("EGRESS") => Direction::Egress,
        Some("Ingress") | Some("INGRESS") | None => Direction::Ingress,
        Some(other) => return Err(invalid(format!("unknown x-muppet-direction {other:?}"))),
    };
    let action = match doc
        .get_path(&["spec", "action"])
        .and_then(Yaml::as_str)
        .unwrap_or("ALLOW")
    {
        "ALLOW" => Action::Allow,
        "DENY" => Action::Deny,
        other => return Err(invalid(format!("unsupported action {other:?}"))),
    };
    let selector = parse_selector(doc.get_path(&["spec", "selector"]))?;
    let mut rules = Vec::new();
    if let Some(items) = doc.get_path(&["spec", "rules"]).and_then(Yaml::as_seq) {
        for item in items {
            let mut services = BTreeSet::new();
            if let Some(froms) = item.get("from").and_then(Yaml::as_seq) {
                for f in froms {
                    if let Some(principals) =
                        f.get_path(&["source", "principals"]).and_then(Yaml::as_seq)
                    {
                        for p in principals {
                            let s = p
                                .as_scalar_string()
                                .ok_or_else(|| invalid("principals must be strings"))?;
                            services.insert(principal_service(&s));
                        }
                    }
                }
            }
            let mut ports = BTreeSet::new();
            if let Some(tos) = item.get("to").and_then(Yaml::as_seq) {
                for t in tos {
                    if let Some(ps) = t.get_path(&["operation", "ports"]).and_then(Yaml::as_seq) {
                        for p in ps {
                            let n = p
                                .as_i64()
                                .ok_or_else(|| invalid("operation.ports must be numeric"))?;
                            ports.insert(
                                u16::try_from(n)
                                    .map_err(|_| invalid(format!("port {n} out of range")))?,
                            );
                        }
                    }
                }
            }
            let mut namespaces = BTreeSet::new();
            if let Some(froms) = item.get("from").and_then(Yaml::as_seq) {
                for f in froms {
                    if let Some(nss) =
                        f.get_path(&["source", "namespaces"]).and_then(Yaml::as_seq)
                    {
                        for n in nss {
                            namespaces.insert(
                                n.as_scalar_string()
                                    .ok_or_else(|| invalid("namespaces must be strings"))?,
                            );
                        }
                    }
                }
            }
            rules.push(AuthPolicyRule {
                services,
                namespaces,
                ports,
            });
        }
    }
    Ok(AuthorizationPolicy {
        name,
        selector,
        direction,
        action,
        rules,
    })
}

/// Parse a `security.istio.io/v1 PeerAuthentication` document.
pub fn parse_peer_authentication(doc: &Yaml) -> Result<PeerAuthentication, ManifestError> {
    let name = metadata_name(doc)?;
    let selector = parse_selector(doc.get_path(&["spec", "selector"]))?;
    let mode = match doc
        .get_path(&["spec", "mtls", "mode"])
        .and_then(Yaml::as_str)
        .unwrap_or("PERMISSIVE")
    {
        "STRICT" => MtlsMode::Strict,
        "PERMISSIVE" => MtlsMode::Permissive,
        other => {
            return Err(invalid(format!(
                "unsupported PeerAuthentication mode {other:?} (modeled subset: \
                 STRICT / PERMISSIVE)"
            )))
        }
    };
    Ok(PeerAuthentication {
        name,
        selector,
        mode,
    })
}

// ---------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------

fn selector_yaml(sel: &Selector) -> Yaml {
    match sel {
        Selector::All => Yaml::Map(vec![]),
        Selector::Labels(labels) => Yaml::map([(
            "matchLabels".to_string(),
            Yaml::Map(
                labels
                    .iter()
                    .map(|(k, v)| (k.clone(), Yaml::str(v.clone())))
                    .collect(),
            ),
        )]),
        // A name selector is emitted as the conventional app label; the
        // default Service labels make this equivalent.
        Selector::Name(n) => Yaml::map([(
            "matchLabels".to_string(),
            Yaml::map([("app".to_string(), Yaml::str(n.clone()))]),
        )]),
        // K8s convention: namespaces are matched via the well-known
        // kubernetes.io/metadata.name label.
        Selector::Namespace(ns) => Yaml::map([(
            "matchLabels".to_string(),
            Yaml::map([(
                "kubernetes.io/metadata.name".to_string(),
                Yaml::str(ns.clone()),
            )]),
        )]),
    }
}

/// Emit a Service manifest.
pub fn emit_service(svc: &Service) -> String {
    let mut metadata = vec![
        ("name".to_string(), Yaml::str(svc.name.clone())),
        ("namespace".to_string(), Yaml::str(svc.namespace.clone())),
        (
            "labels".to_string(),
            Yaml::Map(
                svc.labels
                    .iter()
                    .map(|(k, v)| (k.clone(), Yaml::str(v.clone())))
                    .collect(),
            ),
        ),
    ];
    if !svc.sidecar {
        metadata.push((
            "annotations".to_string(),
            Yaml::map([("x-muppet-sidecar".to_string(), Yaml::str("false"))]),
        ));
    }
    let doc = Yaml::map([
        ("apiVersion".to_string(), Yaml::str("v1")),
        ("kind".to_string(), Yaml::str("Service")),
        ("metadata".to_string(), Yaml::Map(metadata)),
        (
            "spec".to_string(),
            Yaml::map([(
                "ports".to_string(),
                Yaml::Seq(
                    svc.ports
                        .iter()
                        .map(|&p| Yaml::map([("port".to_string(), Yaml::Int(p as i64))]))
                        .collect(),
                ),
            )]),
        ),
    ]);
    muppet_yaml::emit(&doc)
}

/// Emit a NetworkPolicy manifest (with the `x-muppet-action` annotation
/// for deny policies).
pub fn emit_network_policy(p: &NetworkPolicy) -> String {
    let mut metadata = vec![("name".to_string(), Yaml::str(p.name.clone()))];
    if p.action == Action::Deny {
        metadata.push((
            "annotations".to_string(),
            Yaml::map([("x-muppet-action".to_string(), Yaml::str("Deny"))]),
        ));
    }
    let (dir_key, peer_key, type_name) = match p.direction {
        Direction::Ingress => ("ingress", "from", "Ingress"),
        Direction::Egress => ("egress", "to", "Egress"),
    };
    let rules: Vec<Yaml> = p
        .rules
        .iter()
        .map(|r| {
            let mut pairs = Vec::new();
            if !matches!(r.peer, Selector::All) {
                pairs.push((
                    peer_key.to_string(),
                    Yaml::Seq(vec![Yaml::map([(
                        "podSelector".to_string(),
                        selector_yaml(&r.peer),
                    )])]),
                ));
            }
            if !r.ports.is_empty() || !r.port_ranges.is_empty() {
                let mut entries: Vec<Yaml> = r
                    .ports
                    .iter()
                    .map(|&port| Yaml::map([("port".to_string(), Yaml::Int(port as i64))]))
                    .collect();
                entries.extend(r.port_ranges.iter().map(|&(lo, hi)| {
                    Yaml::map([
                        ("port".to_string(), Yaml::Int(lo as i64)),
                        ("endPort".to_string(), Yaml::Int(hi as i64)),
                    ])
                }));
                pairs.push(("ports".to_string(), Yaml::Seq(entries)));
            }
            Yaml::Map(pairs)
        })
        .collect();
    let mut spec = vec![
        ("podSelector".to_string(), selector_yaml(&p.selector)),
        (
            "policyTypes".to_string(),
            Yaml::Seq(vec![Yaml::str(type_name)]),
        ),
    ];
    if !rules.is_empty() {
        spec.push((dir_key.to_string(), Yaml::Seq(rules)));
    }
    let doc = Yaml::map([
        (
            "apiVersion".to_string(),
            Yaml::str("networking.k8s.io/v1"),
        ),
        ("kind".to_string(), Yaml::str("NetworkPolicy")),
        ("metadata".to_string(), Yaml::Map(metadata)),
        ("spec".to_string(), Yaml::Map(spec)),
    ]);
    muppet_yaml::emit(&doc)
}

/// Emit an AuthorizationPolicy manifest (with `x-muppet-direction` for
/// egress policies).
pub fn emit_authorization_policy(p: &AuthorizationPolicy) -> String {
    let mut metadata = vec![("name".to_string(), Yaml::str(p.name.clone()))];
    if p.direction == Direction::Egress {
        metadata.push((
            "annotations".to_string(),
            Yaml::map([("x-muppet-direction".to_string(), Yaml::str("Egress"))]),
        ));
    }
    let rules: Vec<Yaml> = p
        .rules
        .iter()
        .map(|r| {
            let mut pairs = Vec::new();
            if !r.services.is_empty() || !r.namespaces.is_empty() {
                let mut source = Vec::new();
                if !r.services.is_empty() {
                    source.push((
                        "principals".to_string(),
                        Yaml::Seq(
                            r.services.iter().map(|s| Yaml::str(s.clone())).collect(),
                        ),
                    ));
                }
                if !r.namespaces.is_empty() {
                    source.push((
                        "namespaces".to_string(),
                        Yaml::Seq(
                            r.namespaces.iter().map(|s| Yaml::str(s.clone())).collect(),
                        ),
                    ));
                }
                pairs.push((
                    "from".to_string(),
                    Yaml::Seq(vec![Yaml::map([(
                        "source".to_string(),
                        Yaml::Map(source),
                    )])]),
                ));
            }
            if !r.ports.is_empty() {
                pairs.push((
                    "to".to_string(),
                    Yaml::Seq(vec![Yaml::map([(
                        "operation".to_string(),
                        Yaml::map([(
                            "ports".to_string(),
                            Yaml::Seq(
                                r.ports
                                    .iter()
                                    .map(|p| Yaml::str(p.to_string()))
                                    .collect(),
                            ),
                        )]),
                    )])]),
                ));
            }
            Yaml::Map(pairs)
        })
        .collect();
    let action = match p.action {
        Action::Allow => "ALLOW",
        Action::Deny => "DENY",
    };
    let mut spec = vec![
        ("selector".to_string(), selector_yaml(&p.selector)),
        ("action".to_string(), Yaml::str(action)),
    ];
    if !rules.is_empty() {
        spec.push(("rules".to_string(), Yaml::Seq(rules)));
    }
    let doc = Yaml::map([
        (
            "apiVersion".to_string(),
            Yaml::str("security.istio.io/v1"),
        ),
        ("kind".to_string(), Yaml::str("AuthorizationPolicy")),
        ("metadata".to_string(), Yaml::Map(metadata)),
        ("spec".to_string(), Yaml::Map(spec)),
    ]);
    muppet_yaml::emit(&doc)
}

/// Emit a PeerAuthentication manifest.
pub fn emit_peer_authentication(p: &PeerAuthentication) -> String {
    let mode = match p.mode {
        MtlsMode::Strict => "STRICT",
        MtlsMode::Permissive => "PERMISSIVE",
    };
    let doc = Yaml::map([
        (
            "apiVersion".to_string(),
            Yaml::str("security.istio.io/v1"),
        ),
        ("kind".to_string(), Yaml::str("PeerAuthentication")),
        (
            "metadata".to_string(),
            Yaml::map([("name".to_string(), Yaml::str(p.name.clone()))]),
        ),
        (
            "spec".to_string(),
            Yaml::map([
                ("selector".to_string(), selector_yaml(&p.selector)),
                (
                    "mtls".to_string(),
                    Yaml::map([("mode".to_string(), Yaml::str(mode))]),
                ),
            ]),
        ),
    ]);
    muppet_yaml::emit(&doc)
}

/// Emit an entire bundle as a multi-document stream.
pub fn emit_bundle(bundle: &ManifestBundle) -> String {
    let mut out = String::new();
    for s in bundle.mesh.services() {
        out.push_str("---\n");
        out.push_str(&emit_service(s));
    }
    for p in &bundle.k8s_policies {
        out.push_str("---\n");
        out.push_str(&emit_network_policy(p));
    }
    for p in &bundle.istio_policies {
        out.push_str("---\n");
        out.push_str(&emit_authorization_policy(p));
    }
    for p in &bundle.peer_auth {
        out.push_str("---\n");
        out.push_str(&emit_peer_authentication(p));
    }
    out
}

/// The paper's Fig. 1 mesh as a manifest stream (useful for examples).
pub fn paper_example_manifests() -> String {
    emit_bundle(&ManifestBundle {
        mesh: Mesh::paper_example(),
        ..ManifestBundle::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_service_manifest() {
        let src = "\
apiVersion: v1
kind: Service
metadata:
  name: test-backend
  labels:
    app: test-backend
    tier: mid
spec:
  ports:
  - port: 25
  - port: 12000
";
        let doc = muppet_yaml::parse(src).unwrap();
        let svc = parse_service(&doc).unwrap();
        assert_eq!(svc.name, "test-backend");
        assert_eq!(svc.labels.get("tier").unwrap(), "mid");
        assert!(svc.ports.contains(&25) && svc.ports.contains(&12000));
    }

    #[test]
    fn service_defaults_app_label_and_scalar_ports() {
        let src = "kind: Service\nmetadata:\n  name: x\nspec:\n  ports:\n  - 8080\n";
        let doc = muppet_yaml::parse(src).unwrap();
        let svc = parse_service(&doc).unwrap();
        assert_eq!(svc.labels.get("app").unwrap(), "x");
        assert!(svc.ports.contains(&8080));
    }

    #[test]
    fn parse_deny_network_policy() {
        let src = "\
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: deny-telnet
  annotations:
    x-muppet-action: Deny
spec:
  podSelector: {}
  policyTypes:
  - Ingress
  ingress:
  - ports:
    - port: 23
";
        let doc = muppet_yaml::parse(src).unwrap();
        let p = parse_network_policy(&doc).unwrap();
        assert_eq!(p.action, Action::Deny);
        assert_eq!(p.direction, Direction::Ingress);
        assert!(matches!(p.selector, Selector::All));
        assert_eq!(p.rules.len(), 1);
        assert!(p.rules[0].ports.contains(&23));
        assert!(matches!(p.rules[0].peer, Selector::All));
    }

    #[test]
    fn parse_allow_policy_with_peers() {
        let src = "\
kind: NetworkPolicy
metadata:
  name: allow-fe
spec:
  podSelector:
    matchLabels:
      app: test-backend
  ingress:
  - from:
    - podSelector:
        matchLabels:
          app: test-frontend
    ports:
    - port: 25
";
        let doc = muppet_yaml::parse(src).unwrap();
        let p = parse_network_policy(&doc).unwrap();
        assert_eq!(p.action, Action::Allow);
        match &p.rules[0].peer {
            Selector::Labels(l) => assert_eq!(l.get("app").unwrap(), "test-frontend"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn end_port_ranges_roundtrip() {
        let src = "\
kind: NetworkPolicy
metadata:
  name: range
  annotations:
    x-muppet-action: Deny
spec:
  podSelector: {}
  ingress:
  - ports:
    - port: 8000
      endPort: 8005
    - port: 23
";
        let doc = muppet_yaml::parse(src).unwrap();
        let p = parse_network_policy(&doc).unwrap();
        assert_eq!(p.rules[0].port_ranges, vec![(8000, 8005)]);
        assert!(p.rules[0].ports.contains(&23));
        // Round-trip through emission.
        let emitted = emit_network_policy(&p);
        assert!(emitted.contains("endPort: 8005"));
        let doc2 = muppet_yaml::parse(&emitted).unwrap();
        assert_eq!(parse_network_policy(&doc2).unwrap(), p);
        // Degenerate range rejected.
        let bad = src.replace("endPort: 8005", "endPort: 7000");
        let doc3 = muppet_yaml::parse(&bad).unwrap();
        assert!(parse_network_policy(&doc3).is_err());
    }

    #[test]
    fn parse_selector_only_default_deny() {
        let src = "kind: NetworkPolicy\nmetadata:\n  name: dd\nspec:\n  podSelector: {}\n  policyTypes:\n  - Egress\n";
        let doc = muppet_yaml::parse(src).unwrap();
        let p = parse_network_policy(&doc).unwrap();
        assert_eq!(p.direction, Direction::Egress);
        assert!(p.rules.is_empty());
    }

    #[test]
    fn parse_authorization_policy_with_principals_and_ports() {
        let src = "\
apiVersion: security.istio.io/v1
kind: AuthorizationPolicy
metadata:
  name: be-in
spec:
  selector:
    matchLabels:
      app: test-backend
  action: ALLOW
  rules:
  - from:
    - source:
        principals: [\"cluster.local/ns/default/sa/test-frontend\"]
    to:
    - operation:
        ports: [\"25\"]
";
        let doc = muppet_yaml::parse(src).unwrap();
        let p = parse_authorization_policy(&doc).unwrap();
        assert_eq!(p.direction, Direction::Ingress);
        assert_eq!(p.action, Action::Allow);
        assert!(p.rules[0].services.contains("test-frontend"));
        assert!(p.rules[0].ports.contains(&25));
    }

    #[test]
    fn egress_direction_annotation() {
        let src = "\
kind: AuthorizationPolicy
metadata:
  name: eg
  annotations:
    x-muppet-direction: Egress
spec:
  selector:
    matchLabels:
      app: test-backend
  action: DENY
  rules:
  - to:
    - operation:
        ports: [\"23\"]
";
        let doc = muppet_yaml::parse(src).unwrap();
        let p = parse_authorization_policy(&doc).unwrap();
        assert_eq!(p.direction, Direction::Egress);
        assert_eq!(p.action, Action::Deny);
        assert!(p.rules[0].ports.contains(&23));
    }

    #[test]
    fn bundle_roundtrip() {
        let bundle = ManifestBundle {
            mesh: Mesh::paper_example(),
            k8s_policies: vec![NetworkPolicy::deny_port_for_all("ban23", 23)],
            istio_policies: vec![AuthorizationPolicy {
                name: "fe-in".into(),
                selector: Selector::label("app", "test-frontend"),
                direction: Direction::Ingress,
                action: Action::Allow,
                rules: vec![AuthPolicyRule::from_services(["test-backend"])],
            }],
            peer_auth: vec![PeerAuthentication {
                name: "fe-mtls".into(),
                selector: Selector::label("app", "test-frontend"),
                mode: MtlsMode::Strict,
            }],
        };
        let text = emit_bundle(&bundle);
        let back = parse_manifests(&text).unwrap();
        assert_eq!(back.mesh, bundle.mesh);
        assert_eq!(back.k8s_policies, bundle.k8s_policies);
        assert_eq!(back.istio_policies, bundle.istio_policies);
        assert_eq!(back.peer_auth, bundle.peer_auth);
    }

    #[test]
    fn bad_manifests_are_rejected() {
        assert!(parse_manifests("kind: Deployment\nmetadata:\n  name: x\n").is_err());
        assert!(parse_manifests("metadata:\n  name: x\n").is_err());
        let no_name = "kind: Service\nspec: {}\n";
        assert!(parse_manifests(no_name).is_err());
        let both_dirs = "\
kind: NetworkPolicy
metadata:
  name: bad
spec:
  podSelector: {}
  ingress:
  - ports:
    - port: 1
  egress:
  - ports:
    - port: 2
";
        assert!(parse_manifests(both_dirs).is_err());
        let bad_action = "\
kind: AuthorizationPolicy
metadata:
  name: bad
spec:
  action: AUDIT
";
        assert!(parse_manifests(bad_action).is_err());
    }

    #[test]
    fn principal_names() {
        assert_eq!(principal_service("svc"), "svc");
        assert_eq!(
            principal_service("cluster.local/ns/default/sa/test-db"),
            "test-db"
        );
    }
}
