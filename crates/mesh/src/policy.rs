//! Policy object models: K8s NetworkPolicy and Istio AuthorizationPolicy.
//!
//! Both are the *modeled subsets* of Sec. 5: "we modeled the K8s
//! NetworkPolicy so that K8s administrators can control traffic to and
//! from Services based on service selectors and ports", and "for
//! AuthorizationPolicies, we modeled the subset relevant to Services,
//! which gives the Istio administrator the ability to allow or deny
//! traffic across services and ports".
//!
//! One deliberate extension, matching the paper's Fig. 2 goal table
//! (`perm = DENY`): our NetworkPolicy rules carry an explicit
//! allow/deny [`Action`], whereas stock K8s NetworkPolicy is allow-only.
//! The manifest layer round-trips this through an `x-muppet-action`
//! field (see `manifest`), and `DESIGN.md` records the deviation.

use std::collections::BTreeSet;

use crate::service::{Selector, Service};

/// Whether a rule permits or forbids matching traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Action {
    /// Permit matching traffic.
    Allow,
    /// Forbid matching traffic (overrides allows).
    Deny,
}

/// The direction a policy constrains, relative to the selected service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Direction {
    /// Traffic arriving at the selected service.
    Ingress,
    /// Traffic leaving the selected service.
    Egress,
}

/// One rule of a [`NetworkPolicy`]: constrains the *peer* (the other end
/// of the flow) and the destination port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetPolicyRule {
    /// Which peer services the rule matches; `All` = any peer.
    pub peer: Selector,
    /// Destination ports the rule matches.
    pub ports: BTreeSet<u16>,
    /// Inclusive destination-port ranges (K8s `port`+`endPort`). A rule
    /// with both `ports` and `port_ranges` empty matches any port.
    pub port_ranges: Vec<(u16, u16)>,
}

impl NetPolicyRule {
    /// Rule matching any peer on the given ports.
    pub fn any_peer(ports: impl IntoIterator<Item = u16>) -> NetPolicyRule {
        NetPolicyRule {
            peer: Selector::All,
            ports: ports.into_iter().collect(),
            port_ranges: Vec::new(),
        }
    }

    /// Rule matching any peer on an inclusive port range.
    pub fn any_peer_range(start: u16, end: u16) -> NetPolicyRule {
        NetPolicyRule {
            peer: Selector::All,
            ports: BTreeSet::new(),
            port_ranges: vec![(start, end)],
        }
    }

    /// Does this rule match a (peer, dport) combination?
    pub fn matches(&self, peer: &Service, dport: u16) -> bool {
        let port_ok = if self.ports.is_empty() && self.port_ranges.is_empty() {
            true
        } else {
            self.ports.contains(&dport)
                || self
                    .port_ranges
                    .iter()
                    .any(|&(lo, hi)| (lo..=hi).contains(&dport))
        };
        self.peer.matches(peer) && port_ok
    }
}

/// A (modeled) Kubernetes NetworkPolicy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetworkPolicy {
    /// Object name (`metadata.name`).
    pub name: String,
    /// Which services the policy applies to (`spec.podSelector`).
    pub selector: Selector,
    /// Constrained direction.
    pub direction: Direction,
    /// Allow or deny (deny is the Muppet extension).
    pub action: Action,
    /// Rules; a flow is matched if *any* rule matches.
    pub rules: Vec<NetPolicyRule>,
}

impl NetworkPolicy {
    /// The paper's Fig. 2 goal as a policy: deny ingress on port 23 for
    /// all services.
    pub fn deny_port_for_all(name: impl Into<String>, port: u16) -> NetworkPolicy {
        NetworkPolicy {
            name: name.into(),
            selector: Selector::All,
            direction: Direction::Ingress,
            action: Action::Deny,
            rules: vec![NetPolicyRule::any_peer([port])],
        }
    }

    /// Does any rule match the (peer, dport) pair? (Callers check the
    /// selector against the *selected* service separately.)
    pub fn rule_matches(&self, peer: &Service, dport: u16) -> bool {
        self.rules.iter().any(|r| r.matches(peer, dport))
    }
}

/// One rule of an [`AuthorizationPolicy`].
///
/// For an *ingress* policy (selecting the destination), `services` names
/// permitted/forbidden **source** services — the
/// `allow_from_service`/`deny_from_service` of Fig. 5. For an *egress*
/// policy (selecting the source), `ports` names permitted/forbidden
/// **destination** ports — the `allow_to_ports`/`deny_to_ports` of
/// Fig. 5. Either field empty means "any".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthPolicyRule {
    /// Peer service names (semantics depend on the policy direction).
    pub services: BTreeSet<String>,
    /// Peer namespaces (`from.source.namespaces`): matches any peer
    /// living in one of them. Empty = no namespace constraint.
    pub namespaces: BTreeSet<String>,
    /// Destination ports.
    pub ports: BTreeSet<u16>,
}

impl AuthPolicyRule {
    /// Rule over destination ports only.
    pub fn to_ports(ports: impl IntoIterator<Item = u16>) -> AuthPolicyRule {
        AuthPolicyRule {
            services: BTreeSet::new(),
            namespaces: BTreeSet::new(),
            ports: ports.into_iter().collect(),
        }
    }

    /// Rule over peer services only.
    pub fn from_services<S: Into<String>>(
        services: impl IntoIterator<Item = S>,
    ) -> AuthPolicyRule {
        AuthPolicyRule {
            services: services.into_iter().map(Into::into).collect(),
            namespaces: BTreeSet::new(),
            ports: BTreeSet::new(),
        }
    }

    /// Rule over peer namespaces only.
    pub fn from_namespaces<S: Into<String>>(
        namespaces: impl IntoIterator<Item = S>,
    ) -> AuthPolicyRule {
        AuthPolicyRule {
            services: BTreeSet::new(),
            namespaces: namespaces.into_iter().map(Into::into).collect(),
            ports: BTreeSet::new(),
        }
    }

    /// Does the rule match a (peer service, dport)?
    ///
    /// `services` and `namespaces` are alternative *sources* (either
    /// matching suffices, as in Istio's `from.source`); when both are
    /// empty any peer matches.
    pub fn matches(&self, peer: &Service, dport: u16) -> bool {
        let peer_ok = if self.services.is_empty() && self.namespaces.is_empty() {
            true
        } else {
            self.services.contains(&peer.name) || self.namespaces.contains(&peer.namespace)
        };
        peer_ok && (self.ports.is_empty() || self.ports.contains(&dport))
    }
}

/// Mutual-TLS enforcement mode of a [`PeerAuthentication`] policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MtlsMode {
    /// Only mTLS traffic is accepted: sources without a sidecar proxy
    /// cannot connect at all.
    Strict,
    /// Both plaintext and mTLS are accepted.
    Permissive,
}

/// A (modeled) Istio PeerAuthentication policy — the Sec. 7
/// authentication extension ("there are many cries for help … about
/// debugging interactions between other security elements in Istio and
/// K8s, such as authentication").
///
/// Semantics (modeled subset): if any `Strict` policy selects the
/// destination workload, flows from sources without a sidecar are
/// denied at the transport layer, before any authorization policy is
/// consulted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerAuthentication {
    /// Object name (`metadata.name`).
    pub name: String,
    /// Target workloads (`spec.selector`).
    pub selector: Selector,
    /// `spec.mtls.mode`.
    pub mode: MtlsMode,
}

/// A (modeled) Istio AuthorizationPolicy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthorizationPolicy {
    /// Object name (`metadata.name`).
    pub name: String,
    /// Target workloads (`spec.selector`); `egress.target`/`ingress.target`
    /// in the Fig. 5 envelope.
    pub selector: Selector,
    /// Which side of the selected service the policy constrains. Stock
    /// Istio AuthorizationPolicies are server-side (ingress); the paper's
    /// model also has egress policies on the source, which the manifest
    /// layer round-trips via `x-muppet-direction`.
    pub direction: Direction,
    /// ALLOW or DENY (`spec.action`).
    pub action: Action,
    /// Rules; a flow is matched if *any* rule matches.
    pub rules: Vec<AuthPolicyRule>,
}

impl AuthorizationPolicy {
    /// Does any rule match the (peer, dport) pair?
    pub fn rule_matches(&self, peer: &Service, dport: u16) -> bool {
        self.rules.iter().any(|r| r.matches(peer, dport))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(name: &str) -> Service {
        Service::new(name, [80])
    }

    #[test]
    fn netpolicy_rule_matching() {
        let r = NetPolicyRule {
            peer: Selector::label("app", "web"),
            ports: [23, 25].into_iter().collect(),
            port_ranges: Vec::new(),
        };
        let web = svc("web");
        let db = svc("db");
        assert!(r.matches(&web, 23));
        assert!(r.matches(&web, 25));
        assert!(!r.matches(&web, 80));
        assert!(!r.matches(&db, 23));
        // Empty ports = any port.
        let any = NetPolicyRule {
            peer: Selector::All,
            ports: BTreeSet::new(),
            port_ranges: Vec::new(),
        };
        assert!(any.matches(&db, 9999));
    }

    #[test]
    fn port_ranges_match_inclusively() {
        let r = NetPolicyRule::any_peer_range(8000, 8005);
        let s1 = svc("s");
        assert!(r.matches(&s1, 8000));
        assert!(r.matches(&s1, 8003));
        assert!(r.matches(&s1, 8005));
        assert!(!r.matches(&s1, 7999));
        assert!(!r.matches(&s1, 8006));
        // Mixed set + range: either matches.
        let mixed = NetPolicyRule {
            peer: Selector::All,
            ports: [23u16].into_iter().collect(),
            port_ranges: vec![(100, 200)],
        };
        assert!(mixed.matches(&s1, 23));
        assert!(mixed.matches(&s1, 150));
        assert!(!mixed.matches(&s1, 24));
    }

    #[test]
    fn deny_port_for_all_matches_everything_on_the_port() {
        let p = NetworkPolicy::deny_port_for_all("ban23", 23);
        assert_eq!(p.action, Action::Deny);
        assert_eq!(p.direction, Direction::Ingress);
        assert!(matches!(p.selector, Selector::All));
        assert!(p.rule_matches(&svc("anything"), 23));
        assert!(!p.rule_matches(&svc("anything"), 24));
    }

    #[test]
    fn auth_rule_matching() {
        let r = AuthPolicyRule::from_services(["test-frontend"]);
        assert!(r.matches(&svc("test-frontend"), 1));
        assert!(!r.matches(&svc("test-backend"), 1));
        let r = AuthPolicyRule::to_ports([25]);
        assert!(r.matches(&svc("anyone"), 25));
        assert!(!r.matches(&svc("anyone"), 26));
        let both = AuthPolicyRule {
            services: ["a".to_string()].into_iter().collect(),
            namespaces: BTreeSet::new(),
            ports: [1u16].into_iter().collect(),
        };
        assert!(both.matches(&svc("a"), 1));
        assert!(!both.matches(&svc("a"), 2));
        assert!(!both.matches(&svc("b"), 1));
    }
}
