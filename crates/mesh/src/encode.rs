//! The logical encoding of the mesh domain.
//!
//! Muppet "expands each goal entry to a logical formula over both K8s and
//! Istio configurations" (Sec. 5). This module defines that logical
//! space: the sorts (`Service`, `Port`), the configuration relations of
//! each party, the compile/decompile maps between policy objects and
//! relation tables, and the two-layer `allowed` predicate.
//!
//! ## The relational model
//!
//! | relation | arity | owner | meaning |
//! |---|---|---|---|
//! | `listens(s, p)` | Svc×Port | Istio | `s` has `p` among its active ports (port exposure is a mesh-admin decision) |
//! | `k8s_in_deny(d, s, p)` | Svc×Svc×Port | K8s | a DENY ingress rule on `d` matches source `s`, port `p` |
//! | `k8s_in_allow(d, s, p)` | Svc×Svc×Port | K8s | an ALLOW ingress rule on `d` matches |
//! | `k8s_in_guard(d)` | Svc | K8s | some ALLOW ingress policy selects `d` (implicit-deny trigger) |
//! | `k8s_eg_deny(s, d, p)`, `k8s_eg_allow(s, d, p)`, `k8s_eg_guard(s)` | | K8s | egress mirror images |
//! | `istio_in_deny(d, s)` | Svc×Svc | Istio | Fig. 5's `deny_from_service` |
//! | `istio_in_allow(d, s)` | Svc×Svc | Istio | Fig. 5's `allow_from_service` |
//! | `istio_in_guard(d)` | Svc | Istio | some ALLOW ingress AuthorizationPolicy targets `d` |
//! | `istio_eg_deny(s, p)` | Svc×Port | Istio | Fig. 5's `deny_to_ports` |
//! | `istio_eg_allow(s, p)` | Svc×Port | Istio | Fig. 5's `allow_to_ports` |
//! | `istio_eg_guard(s)` | Svc | Istio | some ALLOW egress AuthorizationPolicy targets `s` |
//!
//! A flow `(src, dst, dport)` is **allowed** iff `listens(dst, dport)`
//! holds, no deny relation matches, and each active guard is backed by a
//! matching allow tuple — see [`MeshVocab::allowed_formula`]. This is the
//! same decision procedure as [`crate::dataplane::evaluate_flow`];
//! integration tests check the two differentially on random
//! configurations.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use muppet_logic::{
    AtomId, Domain, Formula, Instance, PartyId, RelDecl, RelId, SortId, Term, Universe, VarId,
    Vocabulary,
};

use crate::policy::{Action, AuthorizationPolicy, Direction, MtlsMode, NetworkPolicy, PeerAuthentication};
use crate::service::{Mesh, Selector};

/// Errors from compiling policies into relation tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// A policy mentions a port that is outside the declared port
    /// universe. The caller must list every port its policies and goals
    /// touch when constructing [`MeshVocab`].
    UnknownPort(u16),
    /// A rule uses a feature outside the modeled subset (e.g. port
    /// constraints on an Istio ingress rule).
    OutsideModeledSubset(String),
    /// A rule names a service that is not in the mesh.
    UnknownService(String),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::UnknownPort(p) => {
                write!(f, "port {p} is not in the declared port universe")
            }
            EncodeError::OutsideModeledSubset(m) => write!(f, "outside the modeled subset: {m}"),
            EncodeError::UnknownService(s) => write!(f, "unknown service {s:?}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// The relations of the optional mTLS extension.
#[derive(Clone, Copy, Debug)]
pub struct MtlsRels {
    /// `mtls_strict(Service)` — Istio-owned: a strict PeerAuthentication
    /// policy selects the service.
    pub strict: RelId,
    /// `has_sidecar(Service)` — shared structure: the workload runs a
    /// sidecar proxy and can originate mTLS.
    pub sidecar: RelId,
}

/// The complete logical vocabulary of the mesh domain.
///
/// Owns the [`Universe`] (service and port atoms), the [`Vocabulary`]
/// (relations with party ownership and English templates), and the
/// compile/decompile maps.
#[derive(Debug)]
pub struct MeshVocab {
    /// The finite universe: one atom per service, one per port.
    pub universe: Universe,
    /// Relation declarations.
    pub vocab: Vocabulary,
    /// The `Service` sort.
    pub svc_sort: SortId,
    /// The `Port` sort.
    pub port_sort: SortId,
    /// Which party owns the K8s relations.
    pub k8s_party: PartyId,
    /// Which party owns the Istio relations.
    pub istio_party: PartyId,
    /// `listens(Service, Port)` — Istio-owned service port exposure.
    pub listens: RelId,
    /// K8s ingress deny `(dst, src, port)`.
    pub k8s_in_deny: RelId,
    /// K8s ingress allow `(dst, src, port)`.
    pub k8s_in_allow: RelId,
    /// K8s ingress guard `(dst)`.
    pub k8s_in_guard: RelId,
    /// K8s egress deny `(src, dst, port)`.
    pub k8s_eg_deny: RelId,
    /// K8s egress allow `(src, dst, port)`.
    pub k8s_eg_allow: RelId,
    /// K8s egress guard `(src)`.
    pub k8s_eg_guard: RelId,
    /// Istio ingress deny `(dst, src)`.
    pub istio_in_deny: RelId,
    /// Istio ingress allow `(dst, src)`.
    pub istio_in_allow: RelId,
    /// Istio ingress guard `(dst)`.
    pub istio_in_guard: RelId,
    /// Istio egress deny `(src, port)`.
    pub istio_eg_deny: RelId,
    /// Istio egress allow `(src, port)`.
    pub istio_eg_allow: RelId,
    /// Istio egress guard `(src)`.
    pub istio_eg_guard: RelId,
    /// The optional mTLS extension relations (Sec. 7 authentication).
    pub mtls: Option<MtlsRels>,
    svc_atoms: BTreeMap<String, AtomId>,
    port_atoms: BTreeMap<u16, AtomId>,
    mesh: Mesh,
}

impl MeshVocab {
    /// Build the vocabulary for a mesh.
    ///
    /// `extra_ports` must include every port mentioned by policies or
    /// goals that no service listens on, plus any spare ports the
    /// synthesizer may pick for existential goals (Fig. 4's `∃w` ports).
    pub fn new(
        mesh: &Mesh,
        extra_ports: impl IntoIterator<Item = u16>,
        k8s_party: PartyId,
        istio_party: PartyId,
    ) -> MeshVocab {
        MeshVocab::new_with_features(mesh, extra_ports, k8s_party, istio_party, false)
    }

    /// [`MeshVocab::new`] with the mTLS extension (Sec. 7
    /// authentication) enabled or disabled. The paper's Fig. 5 envelope
    /// predates the extension, so [`MeshVocab::paper_example`] leaves it
    /// off; `with_mtls = true` adds the `mtls_strict`/`has_sidecar`
    /// relations and a transport-layer conjunct to `allowed`.
    pub fn new_with_features(
        mesh: &Mesh,
        extra_ports: impl IntoIterator<Item = u16>,
        k8s_party: PartyId,
        istio_party: PartyId,
        with_mtls: bool,
    ) -> MeshVocab {
        assert_ne!(k8s_party, istio_party, "parties must be distinct");
        let mut universe = Universe::new();
        let svc_sort = universe.add_sort("Service");
        let port_sort = universe.add_sort("Port");
        let mut svc_atoms = BTreeMap::new();
        for s in mesh.services() {
            svc_atoms.insert(s.name.clone(), universe.add_atom(svc_sort, s.name.clone()));
        }
        let mut ports: BTreeSet<u16> = mesh.all_ports();
        ports.extend(extra_ports);
        let mut port_atoms = BTreeMap::new();
        for p in ports {
            port_atoms.insert(p, universe.add_atom(port_sort, p.to_string()));
        }

        let mut vocab = Vocabulary::new();
        let k8s = Domain::Party(k8s_party);
        let istio = Domain::Party(istio_party);
        // `listens` is owned by the Istio/mesh party: service port
        // exposure is a deployment decision the mesh administrator can
        // revise. This is what lets Fig. 4's synthesizer "choose up to
        // four different ports" and makes Fig. 5's disjunct (1) — "the
        // destination service does not listen on port 23" — an option in
        // the Istio administrator's hands.
        let listens = vocab.add_rel(RelDecl {
            name: "listens".into(),
            arg_sorts: vec![svc_sort, port_sort],
            owner: istio,
            english: "{0} listens on port {1}".into(),
            english_neg: "{0} does not listen on port {1}".into(),
        });
        let k8s_in_deny = vocab.add_rel(RelDecl {
            name: "k8s_in_deny".into(),
            arg_sorts: vec![svc_sort, svc_sort, port_sort],
            owner: k8s,
            english: "a K8s ingress rule denies {0} traffic from {1} on port {2}".into(),
            english_neg: "no K8s ingress rule denies {0} traffic from {1} on port {2}".into(),
        });
        let k8s_in_allow = vocab.add_rel(RelDecl {
            name: "k8s_in_allow".into(),
            arg_sorts: vec![svc_sort, svc_sort, port_sort],
            owner: k8s,
            english: "a K8s ingress rule allows {0} traffic from {1} on port {2}".into(),
            english_neg: "no K8s ingress rule allows {0} traffic from {1} on port {2}".into(),
        });
        let k8s_in_guard = vocab.add_rel(RelDecl {
            name: "k8s_in_guard".into(),
            arg_sorts: vec![svc_sort],
            owner: k8s,
            english: "some K8s allow-policy governs ingress to {0}".into(),
            english_neg: "no K8s allow-policy governs ingress to {0}".into(),
        });
        let k8s_eg_deny = vocab.add_rel(RelDecl {
            name: "k8s_eg_deny".into(),
            arg_sorts: vec![svc_sort, svc_sort, port_sort],
            owner: k8s,
            english: "a K8s egress rule denies {0} traffic to {1} on port {2}".into(),
            english_neg: "no K8s egress rule denies {0} traffic to {1} on port {2}".into(),
        });
        let k8s_eg_allow = vocab.add_rel(RelDecl {
            name: "k8s_eg_allow".into(),
            arg_sorts: vec![svc_sort, svc_sort, port_sort],
            owner: k8s,
            english: "a K8s egress rule allows {0} traffic to {1} on port {2}".into(),
            english_neg: "no K8s egress rule allows {0} traffic to {1} on port {2}".into(),
        });
        let k8s_eg_guard = vocab.add_rel(RelDecl {
            name: "k8s_eg_guard".into(),
            arg_sorts: vec![svc_sort],
            owner: k8s,
            english: "some K8s allow-policy governs egress from {0}".into(),
            english_neg: "no K8s allow-policy governs egress from {0}".into(),
        });
        let istio_in_deny = vocab.add_rel(RelDecl {
            name: "istio_in_deny".into(),
            arg_sorts: vec![svc_sort, svc_sort],
            owner: istio,
            english: "{0} is explicitly blocked from receiving from {1} by an ingress policy"
                .into(),
            english_neg: "no ingress policy blocks {0} from receiving from {1}".into(),
        });
        let istio_in_allow = vocab.add_rel(RelDecl {
            name: "istio_in_allow".into(),
            arg_sorts: vec![svc_sort, svc_sort],
            owner: istio,
            english: "{0} is explicitly allowed to receive from {1}".into(),
            english_neg: "{0} is not explicitly allowed to receive from {1}".into(),
        });
        let istio_in_guard = vocab.add_rel(RelDecl {
            name: "istio_in_guard".into(),
            arg_sorts: vec![svc_sort],
            owner: istio,
            english: "{0} is explicitly allowed to receive from some service".into(),
            english_neg: "{0} has no ingress allow policy".into(),
        });
        let istio_eg_deny = vocab.add_rel(RelDecl {
            name: "istio_eg_deny".into(),
            arg_sorts: vec![svc_sort, port_sort],
            owner: istio,
            english: "{0} is explicitly blocked from sending to port {1} by an egress policy"
                .into(),
            english_neg: "no egress policy blocks {0} from sending to port {1}".into(),
        });
        let istio_eg_allow = vocab.add_rel(RelDecl {
            name: "istio_eg_allow".into(),
            arg_sorts: vec![svc_sort, port_sort],
            owner: istio,
            english: "{0} is explicitly allowed to send to port {1}".into(),
            english_neg: "{0} is not explicitly allowed to send to port {1}".into(),
        });
        let istio_eg_guard = vocab.add_rel(RelDecl {
            name: "istio_eg_guard".into(),
            arg_sorts: vec![svc_sort],
            owner: istio,
            english: "{0} is explicitly allowed to send to some port".into(),
            english_neg: "{0} has no egress allow policy".into(),
        });
        let mtls = if with_mtls {
            let strict = vocab.add_rel(RelDecl {
                name: "mtls_strict".into(),
                arg_sorts: vec![svc_sort],
                owner: istio,
                english: "{0} requires strict mutual TLS".into(),
                english_neg: "{0} does not require strict mutual TLS".into(),
            });
            let sidecar = vocab.add_rel(RelDecl {
                name: "has_sidecar".into(),
                arg_sorts: vec![svc_sort],
                owner: Domain::Structure,
                english: "{0} runs a sidecar proxy".into(),
                english_neg: "{0} runs no sidecar proxy".into(),
            });
            Some(MtlsRels { strict, sidecar })
        } else {
            None
        };

        MeshVocab {
            universe,
            vocab,
            svc_sort,
            port_sort,
            k8s_party,
            istio_party,
            listens,
            k8s_in_deny,
            k8s_in_allow,
            k8s_in_guard,
            k8s_eg_deny,
            k8s_eg_allow,
            k8s_eg_guard,
            istio_in_deny,
            istio_in_allow,
            istio_in_guard,
            istio_eg_deny,
            istio_eg_allow,
            istio_eg_guard,
            mtls,
            svc_atoms,
            port_atoms,
            mesh: mesh.clone(),
        }
    }

    /// Vocabulary for the paper's example (Fig. 1 mesh, ports 23–26 and
    /// the four 1xxxx ports all present).
    pub fn paper_example() -> MeshVocab {
        MeshVocab::new(
            &Mesh::paper_example(),
            [24, 26, 10000, 14000],
            PartyId(0),
            PartyId(1),
        )
    }

    /// The mesh this vocabulary was built over.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The atom for a service name.
    pub fn svc_atom(&self, name: &str) -> Option<AtomId> {
        self.svc_atoms.get(name).copied()
    }

    /// The atom for a port.
    pub fn port_atom(&self, port: u16) -> Option<AtomId> {
        self.port_atoms.get(&port).copied()
    }

    /// All port numbers in the universe.
    pub fn ports(&self) -> impl Iterator<Item = u16> + '_ {
        self.port_atoms.keys().copied()
    }

    /// The port number of a port atom.
    pub fn port_of_atom(&self, atom: AtomId) -> Option<u16> {
        self.universe.atom_name(atom).parse().ok()
    }

    /// The relations owned by the K8s party.
    pub fn k8s_rels(&self) -> Vec<RelId> {
        vec![
            self.k8s_in_deny,
            self.k8s_in_allow,
            self.k8s_in_guard,
            self.k8s_eg_deny,
            self.k8s_eg_allow,
            self.k8s_eg_guard,
        ]
    }

    /// The relations owned by the Istio party (including `listens`:
    /// port exposure is a mesh-administrator decision — see the comment
    /// on the relation declaration).
    pub fn istio_rels(&self) -> Vec<RelId> {
        let mut rels = vec![
            self.listens,
            self.istio_in_deny,
            self.istio_in_allow,
            self.istio_in_guard,
            self.istio_eg_deny,
            self.istio_eg_allow,
            self.istio_eg_guard,
        ];
        if let Some(m) = self.mtls {
            rels.push(m.strict);
        }
        rels
    }

    /// The relations owned by a given party id.
    pub fn party_rels(&self, party: PartyId) -> Vec<RelId> {
        if party == self.k8s_party {
            self.k8s_rels()
        } else if party == self.istio_party {
            self.istio_rels()
        } else {
            Vec::new()
        }
    }

    /// The *current deployment* as an instance: `listens` tuples taken
    /// from the mesh's service definitions. Because `listens` is
    /// Istio-owned, this is the mesh administrator's starting
    /// configuration (and the natural target for minimal-edit queries),
    /// not immutable structure.
    pub fn structure_instance(&self) -> Instance {
        let mut inst = Instance::new();
        for s in self.mesh.services() {
            let sa = self.svc_atoms[&s.name];
            for &p in &s.ports {
                if let Some(&pa) = self.port_atoms.get(&p) {
                    inst.insert(self.listens, vec![sa, pa]);
                }
            }
            if let Some(m) = self.mtls {
                if s.sidecar {
                    inst.insert(m.sidecar, vec![sa]);
                }
            }
        }
        inst
    }

    /// The sidecar facts alone (mTLS extension), as fixed structure for
    /// solver queries. Empty when the extension is off.
    pub fn sidecar_instance(&self) -> Instance {
        let mut inst = Instance::new();
        if let Some(m) = self.mtls {
            for s in self.mesh.services() {
                if s.sidecar {
                    inst.insert(m.sidecar, vec![self.svc_atoms[&s.name]]);
                }
            }
        }
        inst
    }

    /// Compile PeerAuthentication policies (mTLS extension) into the
    /// `mtls_strict` table.
    pub fn compile_peer_auth(
        &self,
        policies: &[PeerAuthentication],
    ) -> Result<Instance, EncodeError> {
        let Some(m) = self.mtls else {
            return if policies.is_empty() {
                Ok(Instance::new())
            } else {
                Err(EncodeError::OutsideModeledSubset(
                    "PeerAuthentication requires a MeshVocab built with the mTLS \
                     extension (new_with_features)"
                        .into(),
                ))
            };
        };
        let mut inst = Instance::new();
        for p in policies {
            if p.mode == MtlsMode::Strict {
                for svc in self.mesh.select(&p.selector) {
                    inst.insert(m.strict, vec![self.svc_atoms[&svc.name]]);
                }
            }
        }
        Ok(inst)
    }

    /// Decompile the `mtls_strict` table back into PeerAuthentication
    /// objects (one per strict service).
    pub fn decompile_peer_auth(&self, inst: &Instance) -> Vec<PeerAuthentication> {
        let Some(m) = self.mtls else {
            return Vec::new();
        };
        self.mesh
            .services()
            .iter()
            .filter(|s| inst.holds(m.strict, &[self.svc_atoms[&s.name]]))
            .map(|s| PeerAuthentication {
                name: format!("synth-{}-mtls", s.name),
                selector: Selector::Name(s.name.clone()),
                mode: MtlsMode::Strict,
            })
            .collect()
    }

    /// Well-formedness axioms tying allow tuples to their guards:
    /// an allow tuple can only exist where some allow policy exists.
    /// Include these in every query so synthesized instances decompile
    /// faithfully into policy objects.
    pub fn well_formedness_axioms(&self, vocab: &mut Vocabulary) -> Vec<Formula> {
        let d = vocab.fresh_var();
        let s = vocab.fresh_var();
        let p = vocab.fresh_var();
        let sv = self.svc_sort;
        let po = self.port_sort;
        let tv = Term::Var;
        vec![
            Formula::forall(
                d,
                sv,
                Formula::forall(
                    s,
                    sv,
                    Formula::forall(
                        p,
                        po,
                        Formula::implies(
                            Formula::pred(self.k8s_in_allow, [tv(d), tv(s), tv(p)]),
                            Formula::pred(self.k8s_in_guard, [tv(d)]),
                        ),
                    ),
                ),
            ),
            Formula::forall(
                s,
                sv,
                Formula::forall(
                    d,
                    sv,
                    Formula::forall(
                        p,
                        po,
                        Formula::implies(
                            Formula::pred(self.k8s_eg_allow, [tv(s), tv(d), tv(p)]),
                            Formula::pred(self.k8s_eg_guard, [tv(s)]),
                        ),
                    ),
                ),
            ),
            Formula::forall(
                d,
                sv,
                Formula::forall(
                    s,
                    sv,
                    Formula::implies(
                        Formula::pred(self.istio_in_allow, [tv(d), tv(s)]),
                        Formula::pred(self.istio_in_guard, [tv(d)]),
                    ),
                ),
            ),
            Formula::forall(
                s,
                sv,
                Formula::forall(
                    p,
                    po,
                    Formula::implies(
                        Formula::pred(self.istio_eg_allow, [tv(s), tv(p)]),
                        Formula::pred(self.istio_eg_guard, [tv(s)]),
                    ),
                ),
            ),
        ]
    }

    /// The two-layer permit predicate: `allowed(src, dst, dport)` as a
    /// formula over the given terms. This is the semantics Muppet's goal
    /// translation "derived from documentation" (Sec. 4.3).
    pub fn allowed_formula(&self, src: Term, dst: Term, dport: Term) -> Formula {
        let mut parts = vec![
            Formula::pred(self.listens, [dst, dport]),
            // K8s ingress on dst.
            Formula::not(Formula::pred(self.k8s_in_deny, [dst, src, dport])),
            Formula::implies(
                Formula::pred(self.k8s_in_guard, [dst]),
                Formula::pred(self.k8s_in_allow, [dst, src, dport]),
            ),
            // K8s egress on src.
            Formula::not(Formula::pred(self.k8s_eg_deny, [src, dst, dport])),
            Formula::implies(
                Formula::pred(self.k8s_eg_guard, [src]),
                Formula::pred(self.k8s_eg_allow, [src, dst, dport]),
            ),
            // Istio ingress on dst (service-level, Fig. 5 disjuncts 4–5).
            Formula::not(Formula::pred(self.istio_in_deny, [dst, src])),
            Formula::implies(
                Formula::pred(self.istio_in_guard, [dst]),
                Formula::pred(self.istio_in_allow, [dst, src]),
            ),
            // Istio egress on src (port-level, Fig. 5 disjuncts 2–3).
            Formula::not(Formula::pred(self.istio_eg_deny, [src, dport])),
            Formula::implies(
                Formula::pred(self.istio_eg_guard, [src]),
                Formula::pred(self.istio_eg_allow, [src, dport]),
            ),
        ];
        if let Some(m) = self.mtls {
            // Transport layer (mTLS extension): a strict destination
            // requires a sidecar-capable source.
            parts.push(Formula::implies(
                Formula::pred(m.strict, [dst]),
                Formula::pred(m.sidecar, [src]),
            ));
        }
        Formula::and(parts)
    }

    /// Give readable names (`src`, `dst`, `p`, …) to printer variables.
    pub fn name_flow_vars(
        printer: &mut muppet_logic::pretty::Printer<'_>,
        src: VarId,
        dst: VarId,
    ) {
        printer.name_var(src, "src");
        printer.name_var(dst, "dst");
    }

    fn expand_ports(
        &self,
        ports: &BTreeSet<u16>,
        ranges: &[(u16, u16)],
    ) -> Result<Vec<AtomId>, EncodeError> {
        if ports.is_empty() && ranges.is_empty() {
            return Ok(self.port_atoms.values().copied().collect());
        }
        let mut out: Vec<AtomId> = ports
            .iter()
            .map(|p| self.port_atoms.get(p).copied().ok_or(EncodeError::UnknownPort(*p)))
            .collect::<Result<_, _>>()?;
        // Ranges intersect with the finite port universe: ports inside
        // the range but outside the universe cannot affect any modeled
        // flow, so dropping them is sound (and they need no atoms).
        for &(lo, hi) in ranges {
            for (&p, &atom) in self.port_atoms.range(lo..=hi) {
                let _ = p;
                if !out.contains(&atom) {
                    out.push(atom);
                }
            }
        }
        Ok(out)
    }

    /// Compile K8s NetworkPolicies into their relation tables.
    pub fn compile_k8s(&self, policies: &[NetworkPolicy]) -> Result<Instance, EncodeError> {
        let mut inst = Instance::new();
        for p in policies {
            let selected = self.mesh.select(&p.selector);
            let (deny_rel, allow_rel, guard_rel) = match p.direction {
                Direction::Ingress => (self.k8s_in_deny, self.k8s_in_allow, self.k8s_in_guard),
                Direction::Egress => (self.k8s_eg_deny, self.k8s_eg_allow, self.k8s_eg_guard),
            };
            for svc in &selected {
                let sa = self.svc_atoms[&svc.name];
                if p.action == Action::Allow {
                    inst.insert(guard_rel, vec![sa]);
                }
                for rule in &p.rules {
                    let peers = self.mesh.select(&rule.peer);
                    let ports = self.expand_ports(&rule.ports, &rule.port_ranges)?;
                    for peer in &peers {
                        let qa = self.svc_atoms[&peer.name];
                        for &pa in &ports {
                            let rel = if p.action == Action::Deny { deny_rel } else { allow_rel };
                            inst.insert(rel, vec![sa, qa, pa]);
                        }
                    }
                }
            }
        }
        Ok(inst)
    }

    /// Compile Istio AuthorizationPolicies into their relation tables.
    ///
    /// Modeled-subset checks: ingress rules must be service-level (no
    /// port constraints); egress rules must be port-level (no service
    /// constraints) — the shape of the Fig. 5 envelope.
    pub fn compile_istio(
        &self,
        policies: &[AuthorizationPolicy],
    ) -> Result<Instance, EncodeError> {
        let mut inst = Instance::new();
        for p in policies {
            let selected = self.mesh.select(&p.selector);
            for svc in &selected {
                let sa = self.svc_atoms[&svc.name];
                match p.direction {
                    Direction::Ingress => {
                        if p.action == Action::Allow {
                            inst.insert(self.istio_in_guard, vec![sa]);
                        }
                        let rel = if p.action == Action::Deny {
                            self.istio_in_deny
                        } else {
                            self.istio_in_allow
                        };
                        for rule in &p.rules {
                            if !rule.ports.is_empty() {
                                return Err(EncodeError::OutsideModeledSubset(format!(
                                    "ingress AuthorizationPolicy {:?} constrains ports; the \
                                     modeled ingress subset is service-level",
                                    p.name
                                )));
                            }
                            for peer_name in &rule.services {
                                let qa = self
                                    .svc_atoms
                                    .get(peer_name)
                                    .copied()
                                    .ok_or_else(|| EncodeError::UnknownService(peer_name.clone()))?;
                                inst.insert(rel, vec![sa, qa]);
                            }
                            // Namespace sources expand to every service
                            // living in the namespace (selectors are
                            // structure, resolved at compile time).
                            for ns in &rule.namespaces {
                                for peer in self.mesh.services() {
                                    if &peer.namespace == ns {
                                        inst.insert(
                                            rel,
                                            vec![sa, self.svc_atoms[&peer.name]],
                                        );
                                    }
                                }
                            }
                        }
                    }
                    Direction::Egress => {
                        if p.action == Action::Allow {
                            inst.insert(self.istio_eg_guard, vec![sa]);
                        }
                        let rel = if p.action == Action::Deny {
                            self.istio_eg_deny
                        } else {
                            self.istio_eg_allow
                        };
                        for rule in &p.rules {
                            if !rule.services.is_empty() || !rule.namespaces.is_empty() {
                                return Err(EncodeError::OutsideModeledSubset(format!(
                                    "egress AuthorizationPolicy {:?} constrains sources; the \
                                     modeled egress subset is port-level",
                                    p.name
                                )));
                            }
                            for &port in &rule.ports {
                                let pa = self
                                    .port_atoms
                                    .get(&port)
                                    .copied()
                                    .ok_or(EncodeError::UnknownPort(port))?;
                                inst.insert(rel, vec![sa, pa]);
                            }
                        }
                    }
                }
            }
        }
        Ok(inst)
    }

    /// Decompile a K8s relation table back into NetworkPolicy objects:
    /// one policy per (service, direction, action) with concrete rules.
    /// Compile ∘ decompile is the identity on well-formed instances
    /// (tested).
    pub fn decompile_k8s(&self, inst: &Instance) -> Vec<NetworkPolicy> {
        let mut out = Vec::new();
        for svc in self.mesh.services() {
            let sa = self.svc_atoms[&svc.name];
            for (direction, deny_rel, allow_rel, guard_rel, dir_name) in [
                (
                    Direction::Ingress,
                    self.k8s_in_deny,
                    self.k8s_in_allow,
                    self.k8s_in_guard,
                    "ingress",
                ),
                (
                    Direction::Egress,
                    self.k8s_eg_deny,
                    self.k8s_eg_allow,
                    self.k8s_eg_guard,
                    "egress",
                ),
            ] {
                let deny_rules = self.k8s_rules_for(inst, deny_rel, sa);
                if !deny_rules.is_empty() {
                    out.push(NetworkPolicy {
                        name: format!("synth-{}-{}-deny", svc.name, dir_name),
                        selector: Selector::Name(svc.name.clone()),
                        direction,
                        action: Action::Deny,
                        rules: deny_rules,
                    });
                }
                if inst.holds(guard_rel, &[sa]) {
                    out.push(NetworkPolicy {
                        name: format!("synth-{}-{}-allow", svc.name, dir_name),
                        selector: Selector::Name(svc.name.clone()),
                        direction,
                        action: Action::Allow,
                        rules: self.k8s_rules_for(inst, allow_rel, sa),
                    });
                }
            }
        }
        out
    }

    fn k8s_rules_for(
        &self,
        inst: &Instance,
        rel: RelId,
        selected: AtomId,
    ) -> Vec<crate::policy::NetPolicyRule> {
        // Group tuples (selected, peer, port) by peer.
        let mut by_peer: BTreeMap<String, BTreeSet<u16>> = BTreeMap::new();
        for t in inst.tuples(rel) {
            if t[0] != selected {
                continue;
            }
            let peer = self.universe.atom_name(t[1]).to_string();
            let port: u16 = self
                .universe
                .atom_name(t[2])
                .parse()
                .expect("port atoms are numeric");
            by_peer.entry(peer).or_default().insert(port);
        }
        by_peer
            .into_iter()
            .map(|(peer, ports)| crate::policy::NetPolicyRule {
                peer: Selector::Name(peer),
                ports,
                port_ranges: Vec::new(),
            })
            .collect()
    }

    /// Decompile the `listens` table into an updated mesh: each service's
    /// port set becomes whatever the instance exposes. Used to turn a
    /// synthesized Istio configuration back into Service manifests.
    pub fn decompile_services(&self, inst: &Instance) -> Mesh {
        let mut mesh = self.mesh.clone();
        for svc in self.mesh.services() {
            let sa = self.svc_atoms[&svc.name];
            let ports: BTreeSet<u16> = inst
                .tuples(self.listens)
                .filter(|t| t[0] == sa)
                .map(|t| self.universe.atom_name(t[1]).parse().expect("numeric"))
                .collect();
            let mut updated = svc.clone();
            updated.ports = ports;
            mesh.add_service(updated);
        }
        mesh
    }

    /// Decompile an Istio relation table back into AuthorizationPolicy
    /// objects.
    pub fn decompile_istio(&self, inst: &Instance) -> Vec<AuthorizationPolicy> {
        let mut out = Vec::new();
        for svc in self.mesh.services() {
            let sa = self.svc_atoms[&svc.name];
            // Ingress: service-level rules.
            let deny_from: BTreeSet<String> = inst
                .tuples(self.istio_in_deny)
                .filter(|t| t[0] == sa)
                .map(|t| self.universe.atom_name(t[1]).to_string())
                .collect();
            if !deny_from.is_empty() {
                out.push(AuthorizationPolicy {
                    name: format!("synth-{}-ingress-deny", svc.name),
                    selector: Selector::Name(svc.name.clone()),
                    direction: Direction::Ingress,
                    action: Action::Deny,
                    rules: vec![crate::policy::AuthPolicyRule {
                        services: deny_from,
                        namespaces: BTreeSet::new(),
                        ports: BTreeSet::new(),
                    }],
                });
            }
            if inst.holds(self.istio_in_guard, &[sa]) {
                let allow_from: BTreeSet<String> = inst
                    .tuples(self.istio_in_allow)
                    .filter(|t| t[0] == sa)
                    .map(|t| self.universe.atom_name(t[1]).to_string())
                    .collect();
                let rules = if allow_from.is_empty() {
                    Vec::new()
                } else {
                    vec![crate::policy::AuthPolicyRule {
                        services: allow_from,
                        namespaces: BTreeSet::new(),
                        ports: BTreeSet::new(),
                    }]
                };
                out.push(AuthorizationPolicy {
                    name: format!("synth-{}-ingress-allow", svc.name),
                    selector: Selector::Name(svc.name.clone()),
                    direction: Direction::Ingress,
                    action: Action::Allow,
                    rules,
                });
            }
            // Egress: port-level rules.
            let deny_to: BTreeSet<u16> = inst
                .tuples(self.istio_eg_deny)
                .filter(|t| t[0] == sa)
                .map(|t| self.universe.atom_name(t[1]).parse().expect("numeric"))
                .collect();
            if !deny_to.is_empty() {
                out.push(AuthorizationPolicy {
                    name: format!("synth-{}-egress-deny", svc.name),
                    selector: Selector::Name(svc.name.clone()),
                    direction: Direction::Egress,
                    action: Action::Deny,
                    rules: vec![crate::policy::AuthPolicyRule {
                        services: BTreeSet::new(),
                        namespaces: BTreeSet::new(),
                        ports: deny_to,
                    }],
                });
            }
            if inst.holds(self.istio_eg_guard, &[sa]) {
                let allow_to: BTreeSet<u16> = inst
                    .tuples(self.istio_eg_allow)
                    .filter(|t| t[0] == sa)
                    .map(|t| self.universe.atom_name(t[1]).parse().expect("numeric"))
                    .collect();
                let rules = if allow_to.is_empty() {
                    Vec::new()
                } else {
                    vec![crate::policy::AuthPolicyRule {
                        services: BTreeSet::new(),
                        namespaces: BTreeSet::new(),
                        ports: allow_to,
                    }]
                };
                out.push(AuthorizationPolicy {
                    name: format!("synth-{}-egress-allow", svc.name),
                    selector: Selector::Name(svc.name.clone()),
                    direction: Direction::Egress,
                    action: Action::Allow,
                    rules,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AuthPolicyRule, NetPolicyRule};
    use muppet_logic::evaluate_closed;

    fn vocab() -> MeshVocab {
        MeshVocab::paper_example()
    }

    #[test]
    fn universe_covers_services_and_ports() {
        let mv = vocab();
        for name in ["test-frontend", "test-backend", "test-db"] {
            assert!(mv.svc_atom(name).is_some());
        }
        for p in [23u16, 24, 25, 26, 10000, 12000, 14000, 16000] {
            assert!(mv.port_atom(p).is_some(), "port {p}");
        }
        assert!(mv.port_atom(9999).is_none());
        let a = mv.port_atom(12000).unwrap();
        assert_eq!(mv.port_of_atom(a), Some(12000));
    }

    #[test]
    fn structure_instance_lists_listening_ports() {
        let mv = vocab();
        let st = mv.structure_instance();
        let fe = mv.svc_atom("test-frontend").unwrap();
        let p23 = mv.port_atom(23).unwrap();
        let p25 = mv.port_atom(25).unwrap();
        assert!(st.holds(mv.listens, &[fe, p23]));
        assert!(!st.holds(mv.listens, &[fe, p25]));
    }

    #[test]
    fn compile_k8s_global_deny() {
        let mv = vocab();
        let ban = NetworkPolicy::deny_port_for_all("ban23", 23);
        let inst = mv.compile_k8s(&[ban]).unwrap();
        let p23 = mv.port_atom(23).unwrap();
        // Every (dst, src) pair gets a deny tuple on port 23; no guards.
        for d in ["test-frontend", "test-backend", "test-db"] {
            let da = mv.svc_atom(d).unwrap();
            assert!(!inst.holds(mv.k8s_in_guard, &[da]));
            for s in ["test-frontend", "test-backend", "test-db"] {
                let sa = mv.svc_atom(s).unwrap();
                assert!(inst.holds(mv.k8s_in_deny, &[da, sa, p23]));
            }
        }
        assert_eq!(inst.count(mv.k8s_in_deny), 9);
        assert_eq!(inst.count(mv.k8s_eg_deny), 0);
    }

    #[test]
    fn compile_expands_port_ranges_within_the_universe() {
        let mv = vocab();
        // Range 20..30 covers universe ports 23, 24, 25, 26.
        let p = NetworkPolicy {
            name: "range-ban".into(),
            selector: Selector::All,
            direction: Direction::Ingress,
            action: Action::Deny,
            rules: vec![NetPolicyRule::any_peer_range(20, 30)],
        };
        let inst = mv.compile_k8s(std::slice::from_ref(&p)).unwrap();
        let fe = mv.svc_atom("test-frontend").unwrap();
        let be = mv.svc_atom("test-backend").unwrap();
        for port in [23u16, 24, 25, 26] {
            let pa = mv.port_atom(port).unwrap();
            assert!(inst.holds(mv.k8s_in_deny, &[fe, be, pa]), "port {port}");
        }
        // Ports outside the range (or universe) are untouched.
        let p12000 = mv.port_atom(12000).unwrap();
        assert!(!inst.holds(mv.k8s_in_deny, &[fe, be, p12000]));
        // Dataplane agreement on every universe port.
        let mesh = mv.mesh().clone();
        let st = mv.structure_instance().union(&inst);
        for port in mv.ports() {
            for src in mesh.services() {
                for dst in mesh.services() {
                    let plane = crate::dataplane::evaluate_flow(
                        &mesh,
                        std::slice::from_ref(&p),
                        &[],
                        &crate::dataplane::Flow::new(src.name.clone(), dst.name.clone(), 0, port),
                    )
                    .allowed;
                    let f = mv.allowed_formula(
                        muppet_logic::Term::Const(mv.svc_atom(&src.name).unwrap()),
                        muppet_logic::Term::Const(mv.svc_atom(&dst.name).unwrap()),
                        muppet_logic::Term::Const(mv.port_atom(port).unwrap()),
                    );
                    let logic = muppet_logic::evaluate_closed(&f, &st, &mv.universe).unwrap();
                    assert_eq!(plane, logic, "{} → {}:{port}", src.name, dst.name);
                }
            }
        }
    }

    #[test]
    fn compile_k8s_allow_sets_guard() {
        let mv = vocab();
        let allow = NetworkPolicy {
            name: "allow".into(),
            selector: Selector::Name("test-backend".into()),
            direction: Direction::Ingress,
            action: Action::Allow,
            rules: vec![NetPolicyRule {
                peer: Selector::Name("test-frontend".into()),
                ports: [25].into_iter().collect(),
                port_ranges: Vec::new(),
            }],
        };
        let inst = mv.compile_k8s(&[allow]).unwrap();
        let be = mv.svc_atom("test-backend").unwrap();
        let fe = mv.svc_atom("test-frontend").unwrap();
        let p25 = mv.port_atom(25).unwrap();
        assert!(inst.holds(mv.k8s_in_guard, &[be]));
        assert!(inst.holds(mv.k8s_in_allow, &[be, fe, p25]));
        assert_eq!(inst.count(mv.k8s_in_allow), 1);
    }

    #[test]
    fn compile_istio_both_directions() {
        let mv = vocab();
        let ingress = AuthorizationPolicy {
            name: "in".into(),
            selector: Selector::Name("test-frontend".into()),
            direction: Direction::Ingress,
            action: Action::Allow,
            rules: vec![AuthPolicyRule::from_services(["test-backend"])],
        };
        let egress = AuthorizationPolicy {
            name: "eg".into(),
            selector: Selector::Name("test-backend".into()),
            direction: Direction::Egress,
            action: Action::Deny,
            rules: vec![AuthPolicyRule::to_ports([23])],
        };
        let inst = mv.compile_istio(&[ingress, egress]).unwrap();
        let fe = mv.svc_atom("test-frontend").unwrap();
        let be = mv.svc_atom("test-backend").unwrap();
        let p23 = mv.port_atom(23).unwrap();
        assert!(inst.holds(mv.istio_in_guard, &[fe]));
        assert!(inst.holds(mv.istio_in_allow, &[fe, be]));
        assert!(inst.holds(mv.istio_eg_deny, &[be, p23]));
        assert!(!inst.holds(mv.istio_eg_guard, &[be])); // deny sets no guard
    }

    #[test]
    fn compile_rejects_out_of_subset_and_unknowns() {
        let mv = vocab();
        let bad_ingress = AuthorizationPolicy {
            name: "bad".into(),
            selector: Selector::All,
            direction: Direction::Ingress,
            action: Action::Allow,
            rules: vec![AuthPolicyRule::to_ports([25])],
        };
        assert!(matches!(
            mv.compile_istio(&[bad_ingress]),
            Err(EncodeError::OutsideModeledSubset(_))
        ));
        let bad_egress = AuthorizationPolicy {
            name: "bad2".into(),
            selector: Selector::All,
            direction: Direction::Egress,
            action: Action::Allow,
            rules: vec![AuthPolicyRule::from_services(["x"])],
        };
        assert!(matches!(
            mv.compile_istio(&[bad_egress]),
            Err(EncodeError::OutsideModeledSubset(_))
        ));
        let ghost = AuthorizationPolicy {
            name: "ghost".into(),
            selector: Selector::All,
            direction: Direction::Ingress,
            action: Action::Allow,
            rules: vec![AuthPolicyRule::from_services(["no-such-svc"])],
        };
        assert!(matches!(
            mv.compile_istio(&[ghost]),
            Err(EncodeError::UnknownService(_))
        ));
        let bad_port = NetworkPolicy {
            name: "p".into(),
            selector: Selector::All,
            direction: Direction::Ingress,
            action: Action::Deny,
            rules: vec![NetPolicyRule::any_peer([40000])],
        };
        assert!(matches!(
            mv.compile_k8s(&[bad_port]),
            Err(EncodeError::UnknownPort(40000))
        ));
    }

    #[test]
    fn allowed_formula_matches_open_mesh() {
        let mut mv = vocab();
        let st = mv.structure_instance();
        let fe = mv.svc_atom("test-frontend").unwrap();
        let be = mv.svc_atom("test-backend").unwrap();
        let p23 = mv.port_atom(23).unwrap();
        let p25 = mv.port_atom(25).unwrap();
        let f = mv.allowed_formula(Term::Const(be), Term::Const(fe), Term::Const(p23));
        assert!(evaluate_closed(&f, &st, &mv.universe).unwrap());
        // Frontend does not listen on 25.
        let f = mv.allowed_formula(Term::Const(be), Term::Const(fe), Term::Const(p25));
        assert!(!evaluate_closed(&f, &st, &mv.universe).unwrap());
        let _ = mv.vocab.fresh_var();
    }

    #[test]
    fn allowed_formula_respects_layers() {
        let mv = vocab();
        let st = mv.structure_instance();
        let ban = mv
            .compile_k8s(&[NetworkPolicy::deny_port_for_all("ban", 23)])
            .unwrap();
        let fe = mv.svc_atom("test-frontend").unwrap();
        let be = mv.svc_atom("test-backend").unwrap();
        let p23 = mv.port_atom(23).unwrap();
        let combined = st.union(&ban);
        let f = mv.allowed_formula(Term::Const(be), Term::Const(fe), Term::Const(p23));
        assert!(!evaluate_closed(&f, &combined, &mv.universe).unwrap());
    }

    #[test]
    fn k8s_roundtrip_compile_decompile() {
        let mv = vocab();
        let policies = vec![
            NetworkPolicy::deny_port_for_all("ban23", 23),
            NetworkPolicy {
                name: "allow-be".into(),
                selector: Selector::Name("test-backend".into()),
                direction: Direction::Ingress,
                action: Action::Allow,
                rules: vec![NetPolicyRule {
                    peer: Selector::Name("test-frontend".into()),
                    ports: [25].into_iter().collect(),
                    port_ranges: Vec::new(),
                }],
            },
        ];
        let inst = mv.compile_k8s(&policies).unwrap();
        let decompiled = mv.decompile_k8s(&inst);
        let inst2 = mv.compile_k8s(&decompiled).unwrap();
        assert_eq!(inst, inst2);
    }

    #[test]
    fn istio_roundtrip_compile_decompile() {
        let mv = vocab();
        let policies = vec![
            AuthorizationPolicy {
                name: "in-allow".into(),
                selector: Selector::Name("test-frontend".into()),
                direction: Direction::Ingress,
                action: Action::Allow,
                rules: vec![AuthPolicyRule::from_services(["test-backend"])],
            },
            AuthorizationPolicy {
                name: "eg-deny".into(),
                selector: Selector::Name("test-db".into()),
                direction: Direction::Egress,
                action: Action::Deny,
                rules: vec![AuthPolicyRule::to_ports([23, 25])],
            },
            // Allow policy with no rules: guard only (deny-everything).
            AuthorizationPolicy {
                name: "lockdown".into(),
                selector: Selector::Name("test-db".into()),
                direction: Direction::Ingress,
                action: Action::Allow,
                rules: vec![],
            },
        ];
        let inst = mv.compile_istio(&policies).unwrap();
        let decompiled = mv.decompile_istio(&inst);
        let inst2 = mv.compile_istio(&decompiled).unwrap();
        assert_eq!(inst, inst2);
    }

    #[test]
    fn party_rel_ownership() {
        let mv = vocab();
        for r in mv.k8s_rels() {
            assert_eq!(mv.vocab.rel(r).owner, Domain::Party(mv.k8s_party));
        }
        for r in mv.istio_rels() {
            assert_eq!(mv.vocab.rel(r).owner, Domain::Party(mv.istio_party));
        }
        assert_eq!(
            mv.vocab.rel(mv.listens).owner,
            Domain::Party(mv.istio_party)
        );
        assert_eq!(mv.party_rels(PartyId(7)), Vec::new());
    }
}
