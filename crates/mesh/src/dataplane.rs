//! The dataplane simulator: executable reference semantics for the
//! combined K8s + Istio decision.
//!
//! The paper's running conflict (Sec. 2–3) exists because *either* layer
//! can deny a flow: "if either Istio or K8s denies the traffic it will be
//! denied even if the other party explicitly allows the traffic". This
//! module is that semantics, written directly over the policy objects,
//! with a human-readable trace for fault localization. The logical
//! encoding in [`crate::encode`] is differentially tested against it.

use crate::policy::{Action, AuthorizationPolicy, Direction, MtlsMode, NetworkPolicy, PeerAuthentication};
use crate::service::{Mesh, Service};

/// A candidate flow between two services.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Flow {
    /// Source service name.
    pub src: String,
    /// Destination service name.
    pub dst: String,
    /// Source port (recorded for goal bookkeeping; the modeled policy
    /// subsets do not constrain it, mirroring real NetworkPolicy /
    /// AuthorizationPolicy port semantics).
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl Flow {
    /// Construct a flow.
    pub fn new(src: impl Into<String>, dst: impl Into<String>, src_port: u16, dst_port: u16) -> Flow {
        Flow {
            src: src.into(),
            dst: dst.into(),
            src_port,
            dst_port,
        }
    }
}

/// The verdict for one flow, with the reasoning steps that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Is the flow delivered?
    pub allowed: bool,
    /// Human-readable explanation, one step per line. Used for the
    /// fault-localization walkthroughs.
    pub trace: Vec<String>,
}

impl Decision {
    fn deny(trace: Vec<String>) -> Decision {
        Decision {
            allowed: false,
            trace,
        }
    }
}

/// Evaluate one flow under the combined configuration.
///
/// Decision procedure (deny-overrides at every step):
/// 1. the destination must listen on the destination port;
/// 2. **K8s layer** — any matching DENY rule (ingress on dst, egress on
///    src) denies; if a service has ALLOW policies for a direction, a
///    flow in that direction must match one (default-deny-on-allow, as in
///    real K8s once a pod is selected by a policy);
/// 3. **Istio layer** — same shape over AuthorizationPolicies: DENY rules
///    override; present ALLOW policies imply implicit deny of unmatched
///    traffic (disjuncts 2–5 of the Fig. 5 envelope).
pub fn evaluate_flow(
    mesh: &Mesh,
    k8s: &[NetworkPolicy],
    istio: &[AuthorizationPolicy],
    flow: &Flow,
) -> Decision {
    evaluate_flow_full(mesh, k8s, istio, &[], flow)
}

/// [`evaluate_flow`] with PeerAuthentication policies in play — the
/// Sec. 7 authentication extension. A strict-mTLS destination rejects
/// sources without a sidecar proxy at the transport layer, before
/// either policy layer is consulted.
pub fn evaluate_flow_full(
    mesh: &Mesh,
    k8s: &[NetworkPolicy],
    istio: &[AuthorizationPolicy],
    peer_auth: &[PeerAuthentication],
    flow: &Flow,
) -> Decision {
    let mut trace = Vec::new();
    let Some(src) = mesh.service(&flow.src) else {
        return Decision::deny(vec![format!("unknown source service {:?}", flow.src)]);
    };
    let Some(dst) = mesh.service(&flow.dst) else {
        return Decision::deny(vec![format!("unknown destination service {:?}", flow.dst)]);
    };

    if !dst.ports.contains(&flow.dst_port) {
        return Decision::deny(vec![format!(
            "{} does not listen on port {}",
            dst.name, flow.dst_port
        )]);
    }
    trace.push(format!("{} listens on port {}", dst.name, flow.dst_port));

    // Transport layer: strict mTLS vs sidecar-less sources.
    let strict = peer_auth
        .iter()
        .find(|p| p.mode == MtlsMode::Strict && p.selector.matches(dst));
    if let Some(p) = strict {
        if !src.sidecar {
            trace.push(format!(
                "PeerAuthentication {:?} requires strict mTLS on {}, but {} has no \
                 sidecar: connection refused",
                p.name, dst.name, src.name
            ));
            return Decision::deny(trace);
        }
        trace.push(format!(
            "strict mTLS on {} satisfied ({} has a sidecar)",
            dst.name, src.name
        ));
    }

    if let Some(d) = k8s_layer(k8s, src, dst, flow.dst_port, &mut trace) {
        return d;
    }
    if let Some(d) = istio_layer(istio, src, dst, flow.dst_port, &mut trace) {
        return d;
    }
    trace.push("no layer denied the flow: allowed".to_string());
    Decision {
        allowed: true,
        trace,
    }
}

/// Evaluate the K8s layer; `Some(deny)` short-circuits.
fn k8s_layer(
    policies: &[NetworkPolicy],
    src: &Service,
    dst: &Service,
    dport: u16,
    trace: &mut Vec<String>,
) -> Option<Decision> {
    for (direction, selected, peer) in [
        (Direction::Ingress, dst, src),
        (Direction::Egress, src, dst),
    ] {
        let applicable: Vec<&NetworkPolicy> = policies
            .iter()
            .filter(|p| p.direction == direction && p.selector.matches(selected))
            .collect();
        // Explicit denies override.
        for p in &applicable {
            if p.action == Action::Deny && p.rule_matches(peer, dport) {
                trace.push(format!(
                    "K8s NetworkPolicy {:?} denies {:?} traffic for {} (peer {}, port {})",
                    p.name,
                    direction,
                    selected.name,
                    peer.name,
                    dport
                ));
                return Some(Decision::deny(std::mem::take(trace)));
            }
        }
        // Implicit deny when allow policies exist but none matches.
        let allows: Vec<&&NetworkPolicy> = applicable
            .iter()
            .filter(|p| p.action == Action::Allow)
            .collect();
        if !allows.is_empty() && !allows.iter().any(|p| p.rule_matches(peer, dport)) {
            trace.push(format!(
                "K8s {:?} allow-policies select {} but none matches peer {} port {}: implicit deny",
                direction, selected.name, peer.name, dport
            ));
            return Some(Decision::deny(std::mem::take(trace)));
        }
        if !applicable.is_empty() {
            trace.push(format!(
                "K8s layer permits {:?} for {} (peer {}, port {})",
                direction, selected.name, peer.name, dport
            ));
        }
    }
    None
}

/// Evaluate the Istio layer; `Some(deny)` short-circuits.
fn istio_layer(
    policies: &[AuthorizationPolicy],
    src: &Service,
    dst: &Service,
    dport: u16,
    trace: &mut Vec<String>,
) -> Option<Decision> {
    for (direction, selected, peer) in [
        (Direction::Ingress, dst, src),
        (Direction::Egress, src, dst),
    ] {
        let applicable: Vec<&AuthorizationPolicy> = policies
            .iter()
            .filter(|p| p.direction == direction && p.selector.matches(selected))
            .collect();
        for p in &applicable {
            if p.action == Action::Deny && p.rule_matches(peer, dport) {
                trace.push(format!(
                    "Istio AuthorizationPolicy {:?} (DENY, {:?}) matches {} ← {} on port {}",
                    p.name, direction, selected.name, peer.name, dport
                ));
                return Some(Decision::deny(std::mem::take(trace)));
            }
        }
        let allows: Vec<&&AuthorizationPolicy> = applicable
            .iter()
            .filter(|p| p.action == Action::Allow)
            .collect();
        if !allows.is_empty() && !allows.iter().any(|p| p.rule_matches(peer, dport)) {
            trace.push(format!(
                "Istio {:?} ALLOW-policies select {} but none matches peer {} port {}: \
                 implicit deny",
                direction, selected.name, peer.name, dport
            ));
            return Some(Decision::deny(std::mem::take(trace)));
        }
        if !applicable.is_empty() {
            trace.push(format!(
                "Istio layer permits {:?} for {} (peer {}, port {})",
                direction, selected.name, peer.name, dport
            ));
        }
    }
    None
}

/// Evaluate every (src, dst, dport) combination in the mesh and return
/// the allowed flows. Source port is fixed to 0 (unconstrained by the
/// modeled policies). Used by tests and the experiment harness.
pub fn allowed_matrix(
    mesh: &Mesh,
    k8s: &[NetworkPolicy],
    istio: &[AuthorizationPolicy],
) -> Vec<Flow> {
    let mut out = Vec::new();
    let ports = mesh.all_ports();
    for src in mesh.services() {
        for dst in mesh.services() {
            if src.name == dst.name {
                continue;
            }
            for &p in &ports {
                let flow = Flow::new(src.name.clone(), dst.name.clone(), 0, p);
                if evaluate_flow(mesh, k8s, istio, &flow).allowed {
                    out.push(flow);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AuthPolicyRule, NetPolicyRule};
    use crate::service::Selector;

    fn mesh() -> Mesh {
        Mesh::paper_example()
    }

    fn flow(src: &str, dst: &str, dport: u16) -> Flow {
        Flow::new(src, dst, 0, dport)
    }

    #[test]
    fn open_mesh_allows_listening_ports_only() {
        let m = mesh();
        assert!(evaluate_flow(&m, &[], &[], &flow("test-backend", "test-frontend", 23)).allowed);
        assert!(evaluate_flow(&m, &[], &[], &flow("test-frontend", "test-backend", 25)).allowed);
        // Backend does not listen on 23.
        let d = evaluate_flow(&m, &[], &[], &flow("test-frontend", "test-backend", 23));
        assert!(!d.allowed);
        assert!(d.trace[0].contains("does not listen"));
        // Unknown services.
        assert!(!evaluate_flow(&m, &[], &[], &flow("ghost", "test-db", 16000)).allowed);
        assert!(!evaluate_flow(&m, &[], &[], &flow("test-db", "ghost", 1)).allowed);
    }

    #[test]
    fn k8s_global_port_ban_breaks_frontend_reachability() {
        // The paper's conflict: ban port 23 globally; backend → frontend:23
        // (previously fine) is now denied.
        let m = mesh();
        let ban = NetworkPolicy::deny_port_for_all("deny-telnet", 23);
        let d = evaluate_flow(&m, std::slice::from_ref(&ban), &[], &flow("test-backend", "test-frontend", 23));
        assert!(!d.allowed);
        assert!(d.trace.last().unwrap().contains("deny-telnet"));
        // Other flows unaffected.
        assert!(
            evaluate_flow(&m, std::slice::from_ref(&ban), &[], &flow("test-frontend", "test-backend", 25)).allowed
        );
    }

    #[test]
    fn k8s_allow_policies_cause_implicit_deny() {
        let m = mesh();
        // Allow ingress to backend only from frontend on 25.
        let allow = NetworkPolicy {
            name: "backend-allow".into(),
            selector: Selector::label("app", "test-backend"),
            direction: Direction::Ingress,
            action: Action::Allow,
            rules: vec![NetPolicyRule {
                peer: Selector::label("app", "test-frontend"),
                ports: [25].into_iter().collect(),
                port_ranges: Vec::new(),
            }],
        };
        assert!(
            evaluate_flow(&m, std::slice::from_ref(&allow), &[], &flow("test-frontend", "test-backend", 25))
                .allowed
        );
        // db → backend:12000 is implicitly denied (an allow policy selects
        // backend, but no rule matches).
        let d = evaluate_flow(&m, std::slice::from_ref(&allow), &[], &flow("test-db", "test-backend", 12000));
        assert!(!d.allowed);
        assert!(d.trace.last().unwrap().contains("implicit deny"));
        // Frontend (not selected by any policy) keeps default-allow.
        assert!(
            evaluate_flow(&m, std::slice::from_ref(&allow), &[], &flow("test-backend", "test-frontend", 23)).allowed
        );
    }

    #[test]
    fn istio_deny_overrides_allow() {
        let m = mesh();
        let allow = AuthorizationPolicy {
            name: "allow-all-to-frontend".into(),
            selector: Selector::label("app", "test-frontend"),
            direction: Direction::Ingress,
            action: Action::Allow,
            rules: vec![AuthPolicyRule::from_services(["test-backend"])],
        };
        let deny = AuthorizationPolicy {
            name: "deny-backend".into(),
            selector: Selector::label("app", "test-frontend"),
            direction: Direction::Ingress,
            action: Action::Deny,
            rules: vec![AuthPolicyRule::from_services(["test-backend"])],
        };
        let f = flow("test-backend", "test-frontend", 23);
        assert!(evaluate_flow(&m, &[], std::slice::from_ref(&allow), &f).allowed);
        let d = evaluate_flow(&m, &[], &[allow, deny], &f);
        assert!(!d.allowed);
        assert!(d.trace.last().unwrap().contains("DENY"));
    }

    #[test]
    fn istio_egress_policies_constrain_source_side() {
        let m = mesh();
        // Backend may only send to port 16000 (the db).
        let egress = AuthorizationPolicy {
            name: "backend-egress".into(),
            selector: Selector::label("app", "test-backend"),
            direction: Direction::Egress,
            action: Action::Allow,
            rules: vec![AuthPolicyRule::to_ports([16000])],
        };
        assert!(
            evaluate_flow(&m, &[], std::slice::from_ref(&egress), &flow("test-backend", "test-db", 16000))
                .allowed
        );
        let d = evaluate_flow(&m, &[], std::slice::from_ref(&egress), &flow("test-backend", "test-frontend", 23));
        assert!(!d.allowed);
        // Other sources unaffected.
        assert!(
            evaluate_flow(&m, &[], std::slice::from_ref(&egress), &flow("test-frontend", "test-backend", 25)).allowed
        );
    }

    #[test]
    fn either_layer_denying_denies() {
        // "If either Istio or K8s denies the traffic it will be denied
        // even if the other party explicitly allows the traffic."
        let m = mesh();
        let k8s_deny = NetworkPolicy::deny_port_for_all("ban", 23);
        let istio_allow = AuthorizationPolicy {
            name: "explicitly-allow".into(),
            selector: Selector::label("app", "test-frontend"),
            direction: Direction::Ingress,
            action: Action::Allow,
            rules: vec![AuthPolicyRule::from_services(["test-backend"])],
        };
        let f = flow("test-backend", "test-frontend", 23);
        let d = evaluate_flow(&m, &[k8s_deny], &[istio_allow], &f);
        assert!(!d.allowed);
    }

    #[test]
    fn allowed_matrix_enumerates_reachability() {
        let m = mesh();
        let open = allowed_matrix(&m, &[], &[]);
        // Every (src, dst≠src, listening port of dst) is allowed.
        assert!(open.contains(&flow("test-backend", "test-frontend", 23)));
        assert!(open.contains(&flow("test-db", "test-backend", 12000)));
        assert!(!open.contains(&flow("test-db", "test-backend", 23)));
        let banned = allowed_matrix(&m, &[NetworkPolicy::deny_port_for_all("b", 23)], &[]);
        assert!(!banned.contains(&flow("test-backend", "test-frontend", 23)));
        assert_eq!(open.len() - banned.len(), 2); // two sources lost frontend:23
    }
}
