//! # muppet-stream — streaming reconfiguration over live edit streams
//!
//! The incremental engine (DESIGN.md §13) made *one* edit cheap; this
//! crate makes **workloads** of edits the product (DESIGN.md §16). A
//! [`StreamSession`] holds the full two-party configuration state —
//! mesh, ban table, reachability table — plus a warm
//! [`PreparedStore`], and ingests a stream of typed
//! [`ConfigDelta`]s. After each delta it:
//!
//! 1. applies the edit to its [`StreamSpec`] (rebuilding the mesh
//!    vocabulary only when the edit touched the mesh — the vocabulary
//!    rebuild is content-driven, so an unchanged universe keeps the
//!    warm engine's variable layout byte-identical),
//! 2. predicts the dirtied CNF groups by diffing the content
//!    fingerprints of the groups a reconcile would submit against the
//!    previous delta's set ([`muppet::Session::reconcile_group_signatures`]),
//! 3. re-runs reconciliation multi-shot through
//!    [`muppet::Session::reconcile_warm`] — unchanged groups are reused
//!    from the engine's content index, only dirtied ones are
//!    re-grounded and re-encoded — and
//! 4. reports a per-delta [`StreamStats`]: verdict, whether it flipped,
//!    dirtied group names, groups re-encoded vs reused, subformula
//!    ground-cache hits, and latency.
//!
//! Warm verdicts are **byte-identical** to cold re-solves of every
//! intermediate snapshot (canonical lex-min models + ordered-deletion
//! cores make the solve deterministic); `tests/stream_props.rs` proves
//! it differentially and the harness W1 lane gates it together with an
//! amortized speedup floor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use muppet::{MuppetError, NamedGoal, Party, Reconciliation, ReconcileMode, Session};
use muppet_goals::{translate_istio_goals, translate_k8s_goals, IstioGoal, K8sGoal};
use muppet_logic::{Instance, PartialInstance, PartyId};
use muppet_mesh::{Mesh, MeshVocab};
use muppet_obs::{Counter, Histogram};
use muppet_scenario::stream::{ConfigDelta, DeltaError};
use muppet_scenario::Scenario;
use muppet_solver::PreparedStore;

/// The configuration state a stream session evolves: the mesh plus both
/// parties' goal tables. [`StreamSpec::session`] builds exactly the
/// session [`Scenario::session`] builds (hard goals, offers iff
/// `bounded`), which is what makes warm stream verdicts byte-comparable
/// to a cold [`Scenario`]-based oracle.
#[derive(Clone, Debug)]
pub struct StreamSpec {
    /// The service mesh.
    pub mesh: Mesh,
    /// Cluster-admin DENY rows.
    pub k8s_goals: Vec<K8sGoal>,
    /// Mesh-admin reachability rows.
    pub istio_goals: Vec<IstioGoal>,
    /// Spare ports added to the universe.
    pub extra_ports: Vec<u16>,
    /// Attach tight party offers (required at ≳500 services).
    pub bounded: bool,
}

impl From<&Scenario> for StreamSpec {
    fn from(s: &Scenario) -> StreamSpec {
        StreamSpec {
            mesh: s.mesh.clone(),
            k8s_goals: s.k8s_goals.clone(),
            istio_goals: s.istio_goals.clone(),
            extra_ports: s.extra_port_list(),
            bounded: s.params.bounded,
        }
    }
}

impl StreamSpec {
    /// Build a stream spec from wire content: concatenated YAML
    /// manifests plus the *raw* CSV goal tables (a stream edits rows,
    /// so it keeps them untranslated). Goal-table ports are folded into
    /// the extras so every referenced port is in the stream universe,
    /// mirroring the daemon's warm-session port derivation. This is the
    /// daemon `watch` entry point; deployed-policy documents in the
    /// manifests are ignored (a stream solves goals, not conformance).
    pub fn from_wire(
        manifests: &str,
        k8s_csv: &str,
        istio_csv: &str,
        extra_ports: &[u16],
    ) -> Result<StreamSpec, String> {
        let bundle =
            muppet_mesh::manifest::parse_manifests(manifests).map_err(|e| e.to_string())?;
        if bundle.mesh.services().is_empty() {
            return Err("no Service documents found in the manifests".into());
        }
        let k8s_goals = K8sGoal::parse_csv(k8s_csv).map_err(|e| e.to_string())?;
        let istio_goals = IstioGoal::parse_csv(istio_csv).map_err(|e| e.to_string())?;
        let mut ports: BTreeSet<u16> =
            muppet_goals::collect_goal_ports(&k8s_goals, &istio_goals);
        ports.extend(extra_ports);
        Ok(StreamSpec {
            mesh: bundle.mesh,
            k8s_goals,
            istio_goals,
            extra_ports: ports.into_iter().collect(),
            bounded: false,
        })
    }

    /// Build the vocabulary for the current mesh + extra ports.
    pub fn vocab(&self) -> MeshVocab {
        MeshVocab::new(
            &self.mesh,
            self.extra_ports.iter().copied(),
            PartyId(0),
            PartyId(1),
        )
    }

    /// Build the two-party session over a prebuilt vocabulary
    /// (mirrors [`Scenario::session`] with hard Istio goals).
    pub fn session<'a>(&self, mv: &'a MeshVocab) -> Result<Session<'a>, StreamError> {
        let mut vocab = mv.vocab.clone();
        let k8s_goals = translate_k8s_goals(&self.k8s_goals, mv, &mut vocab)
            .map_err(|e| StreamError::Goals(e.to_string()))?;
        let istio_goals = translate_istio_goals(&self.istio_goals, mv, &mut vocab)
            .map_err(|e| StreamError::Goals(e.to_string()))?;
        let axioms = mv.well_formedness_axioms(&mut vocab);
        let mut session = Session::new(&mv.universe, vocab, Instance::new());
        session.add_axioms(axioms);
        let (k8s_offer, istio_offer) = if self.bounded {
            let (k, i) = self.offers(mv);
            (Some(k), Some(i))
        } else {
            (None, None)
        };
        let mut k8s_party = Party::new(mv.k8s_party, "k8s-admin")
            .with_goals(k8s_goals.into_iter().map(NamedGoal::from));
        if let Some(offer) = k8s_offer {
            k8s_party = k8s_party.with_offer(offer);
        }
        session.add_party(k8s_party);
        let mut istio_party = Party::new(mv.istio_party, "istio-admin")
            .with_goals(istio_goals.into_iter().map(NamedGoal::from));
        if let Some(offer) = istio_offer {
            istio_party = istio_party.with_offer(offer);
        }
        session.add_party(istio_party);
        Ok(session)
    }

    /// Tight offers (mirrors [`Scenario::offers`]): the cluster admin
    /// offers no network policies, the mesh admin no authorization
    /// policies and only declared-or-spare exposure.
    fn offers(&self, mv: &MeshVocab) -> (PartialInstance, PartialInstance) {
        let mut k8s = PartialInstance::new();
        for rel in mv.k8s_rels() {
            k8s.bound(rel);
        }
        let mut istio = PartialInstance::new();
        for rel in mv.istio_rels() {
            istio.bound(rel);
        }
        for svc in self.mesh.services() {
            let s = mv.svc_atom(&svc.name).expect("mesh service has an atom");
            for &p in svc.ports.iter().chain(self.extra_ports.iter()) {
                let pa = mv.port_atom(p).expect("mesh port has an atom");
                istio.permit(mv.listens, vec![s, pa]);
            }
        }
        (k8s, istio)
    }
}

/// Why a stream push failed. The session state is left as the delta
/// left it (for [`StreamError::Delta`], untouched).
#[derive(Debug)]
pub enum StreamError {
    /// The delta was invalid against the current state.
    Delta(DeltaError),
    /// A goal table no longer translates (e.g. a row references a
    /// service a delta removed out from under it).
    Goals(String),
    /// The solve pipeline failed.
    Engine(MuppetError),
    /// The solve ran out of budget before a verdict.
    Exhausted(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Delta(e) => write!(f, "delta rejected: {e}"),
            StreamError::Goals(e) => write!(f, "goal translation failed: {e}"),
            StreamError::Engine(e) => write!(f, "solve failed: {e}"),
            StreamError::Exhausted(p) => write!(f, "solve exhausted in {p}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<DeltaError> for StreamError {
    fn from(e: DeltaError) -> StreamError {
        StreamError::Delta(e)
    }
}

/// What one delta cost and changed.
#[derive(Clone, Debug)]
pub struct StreamStats {
    /// Sequence number (0 is the initial solve at session start).
    pub seq: u64,
    /// Delta kind tag (`"initial"` for the session-start solve).
    pub kind: &'static str,
    /// The canonical verdict line after this delta.
    pub verdict: String,
    /// Did the verdict change relative to the previous state?
    pub flipped: bool,
    /// Names of the formula groups whose content changed (what the
    /// warm engine had to re-encode, predicted from fingerprints).
    pub dirtied: Vec<String>,
    /// Groups ground+encoded by this solve.
    pub groups_encoded: u64,
    /// Groups reused from the warm engine's content index.
    pub groups_reused: u64,
    /// Subformula ground-cache hits during this solve.
    pub ground_cache_hits: u64,
    /// Subformula ground-cache misses during this solve.
    pub ground_cache_misses: u64,
    /// Did the delta force a vocabulary (universe) rebuild?
    pub vocab_rebuilt: bool,
    /// Wall-clock latency of apply + solve, in microseconds.
    pub elapsed_us: u64,
}

/// The canonical verdict line of a reconciliation: `sat` plus the
/// per-party configurations, or `unsat` plus the blamed core. Debug
/// formatting over `BTreeMap`s is deterministic, and warm solves
/// produce canonical (lex-min) models and ordered-deletion cores, so
/// equal states render byte-identical lines warm or cold — the W1 lane
/// and the differential proptests compare exactly these strings.
pub fn verdict_line(rec: &Reconciliation) -> String {
    if rec.success {
        format!("sat {:?}", rec.configs)
    } else {
        format!("unsat {:?}", rec.core)
    }
}

/// A warm multi-shot solving session over a live config edit stream.
pub struct StreamSession {
    spec: StreamSpec,
    mv: MeshVocab,
    store: PreparedStore,
    threads: usize,
    seq: u64,
    verdict: String,
    prev_keys: BTreeSet<u128>,
    ctr_deltas: Counter,
    ctr_flips: Counter,
    ctr_reused: Counter,
    ctr_encoded: Counter,
    hist: Arc<Histogram>,
}

impl StreamSession {
    /// Open a session: builds the vocabulary, solves the initial state
    /// (seq 0, kind `"initial"`) and leaves the engine warm.
    pub fn new(spec: StreamSpec) -> Result<(StreamSession, StreamStats), StreamError> {
        StreamSession::with_threads(spec, 1)
    }

    /// [`StreamSession::new`] with a portfolio worker count (`<= 1`
    /// solves sequentially). Verdicts are identical either way.
    pub fn with_threads(
        spec: StreamSpec,
        threads: usize,
    ) -> Result<(StreamSession, StreamStats), StreamError> {
        let registry = muppet_obs::registry();
        let mv = spec.vocab();
        let mut session = StreamSession {
            spec,
            mv,
            store: PreparedStore::new(),
            threads,
            seq: 0,
            verdict: String::new(),
            prev_keys: BTreeSet::new(),
            ctr_deltas: registry.counter("stream.deltas"),
            ctr_flips: registry.counter("stream.verdict_flips"),
            ctr_reused: registry.counter("stream.groups.reused"),
            ctr_encoded: registry.counter("stream.groups.encoded"),
            hist: registry.histogram("stream.delta_us"),
        };
        let stats = session.solve_current(Instant::now(), "initial", true)?;
        Ok((session, stats))
    }

    /// Apply one delta and re-solve warm. On `Err(Delta(..))` the state
    /// is untouched and the previous verdict stands.
    pub fn push(&mut self, delta: &ConfigDelta) -> Result<StreamStats, StreamError> {
        let start = Instant::now();
        let mesh_dirty = delta.apply_parts(
            &mut self.spec.mesh,
            &mut self.spec.k8s_goals,
            &mut self.spec.istio_goals,
        )?;
        if mesh_dirty {
            // Content-driven rebuild: if the edit left the universe's
            // atom content identical (e.g. a replica-scale label), the
            // warm key — and with it the live engine — is preserved.
            self.mv = self.spec.vocab();
        }
        let stats = self.solve_current(start, delta.kind(), mesh_dirty)?;
        self.ctr_deltas.inc();
        Ok(stats)
    }

    /// Solve the current state through the warm store and diff the
    /// group fingerprints against the previous solve.
    fn solve_current(
        &mut self,
        start: Instant,
        kind: &'static str,
        vocab_rebuilt: bool,
    ) -> Result<StreamStats, StreamError> {
        let session = {
            let mut s = self.spec.session(&self.mv)?;
            s.set_threads(self.threads);
            s
        };
        let sigs = session.reconcile_group_signatures(ReconcileMode::HardBounds);
        let dirtied: Vec<String> = sigs
            .iter()
            .filter(|(_, key)| !self.prev_keys.contains(key))
            .map(|(name, _)| name.clone())
            .collect();
        let (enc_before, reuse_before) = self.store.group_counters();
        let (hit_before, miss_before) = self.store.ground_cache_counters();
        let rec = session
            .reconcile_warm(ReconcileMode::HardBounds, &mut self.store)
            .map_err(StreamError::Engine)?;
        if let Some(ex) = &rec.exhausted {
            return Err(StreamError::Exhausted(format!("{:?}", ex.phase)));
        }
        let (enc_after, reuse_after) = self.store.group_counters();
        let (hit_after, miss_after) = self.store.ground_cache_counters();
        let verdict = verdict_line(&rec);
        let flipped = self.seq > 0 && verdict != self.verdict;
        if flipped {
            self.ctr_flips.inc();
        }
        self.ctr_encoded.add(enc_after - enc_before);
        self.ctr_reused.add(reuse_after - reuse_before);
        let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.hist.observe_us(elapsed_us);
        let stats = StreamStats {
            seq: self.seq,
            kind,
            verdict: verdict.clone(),
            flipped,
            dirtied,
            groups_encoded: enc_after - enc_before,
            groups_reused: reuse_after - reuse_before,
            ground_cache_hits: hit_after - hit_before,
            ground_cache_misses: miss_after - miss_before,
            vocab_rebuilt,
            elapsed_us,
        };
        self.prev_keys = sigs.into_iter().map(|(_, k)| k).collect();
        self.verdict = verdict;
        self.seq += 1;
        Ok(stats)
    }

    /// The current verdict line.
    pub fn verdict(&self) -> &str {
        &self.verdict
    }

    /// Deltas solved so far, counting the initial solve.
    pub fn solves(&self) -> u64 {
        self.seq
    }

    /// The current configuration state.
    pub fn spec(&self) -> &StreamSpec {
        &self.spec
    }

    /// Lifetime `(encoded, reused)` group counters of the warm store.
    pub fn group_counters(&self) -> (u64, u64) {
        self.store.group_counters()
    }

    /// Lifetime subformula ground-cache `(hits, misses)`.
    pub fn ground_cache_counters(&self) -> (u64, u64) {
        self.store.ground_cache_counters()
    }

    /// Ground-cache hit rate over the session's lifetime (`None` before
    /// any lookups).
    pub fn ground_cache_hit_rate(&self) -> Option<f64> {
        let (h, m) = self.ground_cache_counters();
        let total = h + m;
        (total > 0).then(|| h as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_scenario::stream::{generate_stream, StreamParams, StreamProfile};
    use muppet_scenario::{generate, ScenarioParams};

    fn small_params() -> ScenarioParams {
        ScenarioParams {
            services: 6,
            ports_per_service: 2,
            extra_ports: 2,
            istio_goals: 4,
            k8s_goals: 1,
            port_pool: 4,
            ..ScenarioParams::default()
        }
    }

    #[test]
    fn spec_session_matches_scenario_session() {
        // The mirrored session builder must agree with the original
        // byte for byte — same fingerprint, same verdict line.
        let sc = generate(small_params());
        let spec = StreamSpec::from(&sc);
        let mv = spec.vocab();
        let mirrored = spec.session(&mv).unwrap();
        let original = sc.session(false);
        assert_eq!(
            mirrored.content_fingerprint(),
            original.content_fingerprint()
        );
        let a = mirrored.reconcile(ReconcileMode::HardBounds).unwrap();
        let b = original.reconcile(ReconcileMode::HardBounds).unwrap();
        assert_eq!(verdict_line(&a), verdict_line(&b));
    }

    #[test]
    fn warm_stream_matches_cold_oracle() {
        let stream = generate_stream(StreamParams {
            base: small_params(),
            profile: StreamProfile::Mixed,
            deltas: 20,
            target_services: 0,
            seed: 5,
        });
        let (mut session, initial) = StreamSession::new(StreamSpec::from(&stream.base)).unwrap();
        assert_eq!(initial.kind, "initial");
        assert!(!initial.flipped);

        let mut cold = generate(stream.params.base);
        assert_eq!(
            initial.verdict,
            verdict_line(&cold.session(false).reconcile(ReconcileMode::HardBounds).unwrap())
        );
        let mut flips_seen = 0;
        for d in &stream.deltas {
            let warm = session.push(d).unwrap();
            d.apply(&mut cold).unwrap();
            let cold_rec = cold
                .session(false)
                .reconcile(ReconcileMode::HardBounds)
                .unwrap();
            assert_eq!(warm.verdict, verdict_line(&cold_rec), "delta {}", warm.seq);
            if warm.flipped {
                flips_seen += 1;
            }
        }
        assert_eq!(session.solves(), 21);
        // The warm engine actually reused groups across the stream.
        let (_, reused) = session.group_counters();
        assert!(reused > 0, "no warm group reuse across 20 deltas");
        let _ = flips_seen; // mixed streams may or may not flip; counted for debug
    }

    #[test]
    fn goal_edit_dirties_one_group() {
        // A pure goal-row edit over a fixed mesh must dirty exactly the
        // edited row's group and reuse everything else.
        let sc = generate(small_params());
        let (mut session, _) = StreamSession::new(StreamSpec::from(&sc)).unwrap();
        // Retarget the row at a different concrete port (a pool port is
        // always in the universe); a concrete→concrete edit keeps the
        // vocabulary's variable allocation — and with it every other
        // group's content — untouched.
        let goal = sc.istio_goals[0].clone();
        let old_port = match goal.dst_port {
            muppet_goals::PortSpec::Port(p) => p,
            other => panic!("expected concrete port, got {other:?}"),
        };
        let new_port = (7000..7004).find(|&p| p != old_port).unwrap();
        let target = muppet_goals::IstioGoal {
            dst_port: muppet_goals::PortSpec::Port(new_port),
            ..goal
        };
        let stats = session
            .push(&ConfigDelta::UpsertGoal {
                index: 0,
                goal: target,
            })
            .unwrap();
        assert!(!stats.vocab_rebuilt);
        assert_eq!(stats.dirtied.len(), 1, "dirtied {:?}", stats.dirtied);
        assert_eq!(stats.groups_encoded, 1);
        assert!(stats.groups_reused > 0);
    }

    #[test]
    fn invalid_delta_leaves_state_untouched() {
        let sc = generate(small_params());
        let (mut session, initial) = StreamSession::new(StreamSpec::from(&sc)).unwrap();
        let before = session.spec().clone();
        let err = session
            .push(&ConfigDelta::RemoveService {
                name: "no-such-svc".into(),
            })
            .unwrap_err();
        assert!(matches!(err, StreamError::Delta(DeltaError::UnknownService(_))));
        assert_eq!(session.spec().mesh, before.mesh);
        assert_eq!(session.verdict(), initial.verdict);
        assert_eq!(session.solves(), 1);
    }
}
