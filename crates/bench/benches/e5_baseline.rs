//! E5 (Fig. 6): the monolithic single-party baseline vs Muppet.
//!
//! Both decide the same satisfiability question; the point of the
//! comparison is that the baseline's failure is opaque while Muppet
//! pays a modest premium for a minimal blame core. This bench measures
//! that premium on the paper's conflicting instance and on a larger
//! generated one.

use criterion::{criterion_group, criterion_main, Criterion};
use muppet::{baseline, ReconcileMode};
use muppet_bench::paper::{session, vocab, IstioTable};
use muppet_bench::scenario::corpus::{entry, Kind};
use muppet_bench::scenario::generate;

fn bench(c: &mut Criterion) {
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);

    // The corpus' conflicted paper-scale mesh (committed label: unsat).
    let e = entry("paper-mesh-12-conflict").expect("committed corpus entry");
    let Kind::Mesh(params) = e.kind else {
        panic!("paper-mesh-12-conflict must be a mesh entry")
    };
    let big = generate(params);
    let big_session = big.session(false);

    let mut g = c.benchmark_group("e5_baseline");
    g.sample_size(15);
    g.bench_function("baseline_monolithic_paper", |b| {
        b.iter(|| {
            let r = baseline::monolithic_synthesis(&s).unwrap();
            assert!(!r.success);
        })
    });
    g.bench_function("muppet_with_blame_paper", |b| {
        b.iter(|| {
            let r = s.reconcile(ReconcileMode::Blameable).unwrap();
            assert!(!r.success && !r.core.is_empty());
        })
    });
    g.bench_function("baseline_monolithic_12svc", |b| {
        b.iter(|| {
            let r = baseline::monolithic_synthesis(&big_session).unwrap();
            assert!(!r.success);
        })
    });
    g.bench_function("muppet_with_blame_12svc", |b| {
        b.iter(|| {
            let r = big_session.reconcile(ReconcileMode::Blameable).unwrap();
            assert!(!r.success && !r.core.is_empty());
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
