//! E1 (Figs. 1–3): detecting the paper's conflict.
//!
//! Regenerates the walkthrough's first result: reconciling the Fig. 2
//! K8s goal with the Fig. 3 Istio goals is UNSAT, with a minimal
//! two-goal blame core. Benchmarks both the plain verdict and the
//! verdict-plus-minimal-core path (what Muppet actually reports).

use criterion::{criterion_group, criterion_main, Criterion};
use muppet::ReconcileMode;
use muppet_bench::paper::{session, vocab, IstioTable};

fn bench(c: &mut Criterion) {
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);

    // Shape checks once, outside the timing loop.
    let rec = s.reconcile(ReconcileMode::Blameable).unwrap();
    assert!(!rec.success);
    assert_eq!(rec.core.len(), 2);

    let mut g = c.benchmark_group("e1_reconcile");
    g.sample_size(20);
    g.bench_function("verdict_only(hard_bounds)", |b| {
        b.iter(|| {
            let rec = s.reconcile(ReconcileMode::HardBounds).unwrap();
            assert!(!rec.success);
        })
    });
    g.bench_function("with_minimal_core(blameable)", |b| {
        b.iter(|| {
            let rec = s.reconcile(ReconcileMode::Blameable).unwrap();
            assert_eq!(rec.core.len(), 2);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
