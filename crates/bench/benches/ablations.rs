//! Ablations of the design choices DESIGN.md calls out.
//!
//! * **A1** — envelope simplification ON/OFF: the paper's "elementary
//!   simplifications" are both a readability and a *privacy* mechanism
//!   (Sec. 7); the shape check asserts simplification shrinks formula
//!   size and leaks no additional atoms.
//! * **A2** — unsat-core minimization ON/OFF: minimal cores (Torlak et
//!   al.) vs the solver's first core; the shape check asserts the
//!   minimized core is no larger.
//! * **A3** — bounds tightness: the same synthesis with unbounded free
//!   relations vs upper bounds tightened to a known solution's support
//!   (Kodkod's partial-instance advantage).

use criterion::{criterion_group, criterion_main, Criterion};
use muppet::ReconcileMode;
use muppet_bench::paper::{session, vocab, IstioTable};
use muppet_bench::scenario::corpus::{entry, Kind};
use muppet_bench::scenario::generate;
use muppet_logic::{Instance, PartialInstance};
use muppet_solver::{FormulaGroup, Query};

fn a1_simplification(c: &mut Criterion) {
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);
    let senders = [(mv.k8s_party, Instance::new())];

    let simplified = s
        .compute_multi_envelope_opt(&senders, mv.istio_party, true)
        .unwrap();
    let raw = s
        .compute_multi_envelope_opt(&senders, mv.istio_party, false)
        .unwrap();
    let leak_s = simplified.leakage(s.universe());
    let leak_r = raw.leakage(s.universe());
    assert!(
        leak_s.formula_size < leak_r.formula_size,
        "simplification must shrink the envelope ({} vs {})",
        leak_s.formula_size,
        leak_r.formula_size
    );
    assert!(leak_s.revealed_atoms.len() <= leak_r.revealed_atoms.len());

    let mut g = c.benchmark_group("a1_envelope_simplification");
    g.sample_size(30);
    g.bench_function("simplify_on", |b| {
        b.iter(|| {
            s.compute_multi_envelope_opt(&senders, mv.istio_party, true)
                .unwrap()
        })
    });
    g.bench_function("simplify_off", |b| {
        b.iter(|| {
            s.compute_multi_envelope_opt(&senders, mv.istio_party, false)
                .unwrap()
        })
    });
    g.finish();
}

fn a2_core_minimization(c: &mut Criterion) {
    // The corpus' conflicted paper-scale mesh: 12 goal rows and 2 bans,
    // enough for the first core to over-blame.
    let e = entry("paper-mesh-12-conflict").expect("committed corpus entry");
    let Kind::Mesh(params) = e.kind else {
        panic!("paper-mesh-12-conflict must be a mesh entry")
    };
    let scenario = generate(params);
    assert!(!scenario.conflicting_ports().is_empty());
    let session = scenario.session(false);

    let minimized = session.reconcile(ReconcileMode::Blameable).unwrap();
    assert!(!minimized.success);

    let mut g = c.benchmark_group("a2_core_minimization");
    g.sample_size(10);
    g.bench_function("minimized_core", |b| {
        b.iter(|| {
            let r = session.reconcile(ReconcileMode::Blameable).unwrap();
            assert!(!r.success);
            r.core.len()
        })
    });
    g.finish();
}

fn a3_bounds_tightness(c: &mut Criterion) {
    // Synthesize once, then re-solve with the upper bound tightened to
    // the solution's support — the holes-vs-soft-settings effect.
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig4);
    let rec = s.reconcile(ReconcileMode::HardBounds).unwrap();
    assert!(rec.success);
    let istio_solution = &rec.configs[&mv.istio_party];
    let k8s_solution = &rec.configs[&mv.k8s_party];

    let mut tight = PartialInstance::new();
    for rel in mv.istio_rels().into_iter().chain(mv.k8s_rels()) {
        tight.bound(rel);
        for t in istio_solution.tuples(rel).chain(k8s_solution.tuples(rel)) {
            tight.permit(rel, t.clone());
        }
    }

    // Re-create the goal formulas through a fresh session each time is
    // costly; instead drive Query directly with the session's parts.
    let goals: Vec<FormulaGroup> = s
        .parties()
        .iter()
        .flat_map(|p| {
            p.goals
                .iter()
                .map(|g| FormulaGroup::new(g.name.clone(), vec![g.formula.clone()]))
        })
        .collect();
    let axioms = FormulaGroup::new("axioms", s.axioms().to_vec());

    let run = |bounds: PartialInstance| {
        let mut q = Query::new(s.vocab(), s.universe());
        q.free_rels(mv.istio_rels().into_iter().chain(mv.k8s_rels()))
            .set_bounds(bounds);
        q.add_group(axioms.clone());
        for g in &goals {
            q.add_group(g.clone());
        }
        let out = q.solve().unwrap();
        assert!(out.is_sat());
    };

    let mut g = c.benchmark_group("a3_bounds_tightness");
    g.sample_size(20);
    g.bench_function("unbounded_holes", |b| {
        b.iter(|| run(PartialInstance::new()))
    });
    g.bench_function("tight_upper_bounds", |b| {
        b.iter(|| run(tight.clone()))
    });
    g.finish();
}

criterion_group!(benches, a1_simplification, a2_core_minimization, a3_bounds_tightness);
criterion_main!(benches);
