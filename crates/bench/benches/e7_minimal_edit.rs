//! E7 (Fig. 8): minimal-edit counter-offers via target-oriented solving.
//!
//! The revision aid must return a *minimally-edited* counter-offer
//! rather than an arbitrary resynthesis. This bench measures the
//! target-oriented query against plain synthesis, and asserts the
//! headline shape: the minimal edit of the paper deployment is ONE
//! tuple, whereas unconstrained synthesis lands much further away.

use criterion::{criterion_group, criterion_main, Criterion};
use muppet_bench::paper::{session, vocab, IstioTable};
use muppet_logic::{Domain, Instance};
use muppet_solver::Outcome;

fn bench(c: &mut Criterion) {
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);
    let env = s
        .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
        .unwrap();
    let target = mv.structure_instance();
    // Free synthesis needs satisfiable tenant goals: the Fig. 4 session.
    let s4 = session(&mv, IstioTable::Fig4);

    // Shape check once: minimal edit = 1; free synthesis lands at least
    // as far from the administrator's current configuration.
    let (out, dist) = s.minimal_edit(mv.istio_party, &env, &target).unwrap();
    assert!(out.is_sat());
    assert_eq!(dist, 1);
    match s4.synthesize_against(mv.istio_party, &env).unwrap() {
        Outcome::Sat { solution, .. } => {
            let istio = solution.restrict_to_domain(s4.vocab(), Domain::Party(mv.istio_party));
            assert!(
                istio.distance(&target) >= dist,
                "free synthesis should not beat the minimal edit"
            );
        }
        other => panic!("fig4 synthesis should be sat, got {other:?}"),
    }

    let mut g = c.benchmark_group("e7_minimal_edit");
    g.sample_size(15);
    g.bench_function("target_oriented_minimal_edit", |b| {
        b.iter(|| {
            let (out, dist) = s.minimal_edit(mv.istio_party, &env, &target).unwrap();
            assert!(out.is_sat());
            assert_eq!(dist, 1);
        })
    });
    g.bench_function("plain_synthesis_against_envelope", |b| {
        b.iter(|| {
            let out = s4.synthesize_against(mv.istio_party, &env).unwrap();
            assert!(out.is_sat());
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
