//! E2 (Fig. 4): synthesis from the relaxed goals.
//!
//! "The existential quantifiers allow the synthesizer to choose up to
//! four different ports that are harmonious with both the Istio goals
//! and the K8s envelope. With the goals satisfiable, Muppet generates a
//! configuration." Benchmarks joint synthesis (reconcile) and the
//! tenant-side synthesis against a received envelope (Fig. 8 path).

use criterion::{criterion_group, criterion_main, Criterion};
use muppet::ReconcileMode;
use muppet_bench::paper::{session, vocab, IstioTable};
use muppet_logic::Instance;

fn bench(c: &mut Criterion) {
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig4);
    let rec = s.reconcile(ReconcileMode::HardBounds).unwrap();
    assert!(rec.success);
    let envelope = s
        .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
        .unwrap();

    let mut g = c.benchmark_group("e2_synthesis");
    g.sample_size(20);
    g.bench_function("joint_reconcile_fig4", |b| {
        b.iter(|| {
            let rec = s.reconcile(ReconcileMode::HardBounds).unwrap();
            assert!(rec.success);
        })
    });
    g.bench_function("tenant_synthesis_against_envelope", |b| {
        b.iter(|| {
            let out = s.synthesize_against(mv.istio_party, &envelope).unwrap();
            assert!(out.is_sat());
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
