//! E3 (Fig. 5): envelope extraction.
//!
//! Regenerates the paper's envelope — one predicate of exactly five
//! disjunct families over the Istio domain — and benchmarks Alg. 3
//! (decompose + substitute + simplify) plus the rendering paths.

use criterion::{criterion_group, criterion_main, Criterion};
use muppet_bench::paper::{session, vocab, IstioTable};
use muppet_logic::{Formula, Instance};

fn bench(c: &mut Criterion) {
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);

    // Shape check once: the Fig. 5 structure.
    let env = s
        .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
        .unwrap();
    assert_eq!(env.predicates.len(), 1);
    let mut inner: &Formula = &env.predicates[0].formula;
    while let Formula::Forall(_, _, body) = inner {
        inner = body;
    }
    match inner {
        Formula::Or(ds) => assert_eq!(ds.len(), 5),
        other => panic!("expected 5 disjuncts, got {other:?}"),
    }
    assert_eq!(env.leakage(s.universe()).revealed_atoms, vec!["23"]);

    let mut g = c.benchmark_group("e3_envelope");
    g.sample_size(30);
    g.bench_function("extract_k8s_to_istio", |b| {
        b.iter(|| {
            let env = s
                .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
                .unwrap();
            assert_eq!(env.predicates.len(), 1);
        })
    });
    g.bench_function("extract_istio_to_k8s", |b| {
        // The reverse direction (four reachability obligations).
        b.iter(|| {
            let env = s
                .compute_envelope(mv.istio_party, mv.k8s_party, &Instance::new())
                .unwrap();
            assert!(!env.predicates.is_empty());
        })
    });
    g.bench_function("render_alloy_and_english", |b| {
        b.iter(|| {
            let a = env.render_alloy(s.vocab(), s.universe());
            let e = env.render_english(s.vocab(), s.universe());
            assert!(!a.is_empty() && !e.is_empty());
        })
    });
    g.bench_function("check_against_config", |b| {
        let deployment = mv.structure_instance();
        b.iter(|| {
            let failing = env.check(&deployment, s.universe());
            assert_eq!(failing.len(), 1);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
