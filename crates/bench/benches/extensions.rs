//! X-series benches: the implemented Sec. 7 extensions.
//!
//! * X1 — envelope learning (iterated solving + prime-implicant
//!   generalization) vs the syntactic Alg. 3 path.
//! * X2 — envelope extraction with the mTLS extension enabled.
//! * X3 — why/why-not explanation of a violated envelope.

use criterion::{criterion_group, criterion_main, Criterion};
use muppet::explain::explain_predicate;
use muppet::learn::{learn_envelope, Scope};
use muppet::{NamedGoal, Party, Session};
use muppet_bench::paper::{session, vocab, IstioTable};
use muppet_goals::{translate_k8s_goals, K8sGoal};
use muppet_logic::Instance;
use muppet_mesh::{Mesh, MeshVocab, Service};

fn x1_learning(c: &mut Criterion) {
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);
    let fe = mv.svc_atom("test-frontend").unwrap();
    let be = mv.svc_atom("test-backend").unwrap();
    let db = mv.svc_atom("test-db").unwrap();
    let p23 = mv.port_atom(23).unwrap();
    let scope = Scope::new(vec![
        (mv.listens, vec![fe, p23]),
        (mv.istio_eg_deny, vec![fe, p23]),
        (mv.istio_eg_deny, vec![be, p23]),
        (mv.istio_eg_deny, vec![db, p23]),
        (mv.istio_in_guard, vec![fe]),
        (mv.istio_in_deny, vec![fe, fe]),
        (mv.istio_in_deny, vec![fe, be]),
        (mv.istio_in_deny, vec![fe, db]),
    ]);
    let mut g = c.benchmark_group("x1_envelope_learning");
    g.sample_size(10);
    g.bench_function("learn_8_tuple_scope", |b| {
        b.iter(|| {
            let learned = learn_envelope(
                &s,
                mv.k8s_party,
                &Instance::new(),
                mv.istio_party,
                &scope,
                128,
            )
            .unwrap();
            assert!(learned.complete);
            learned.cubes.len()
        })
    });
    g.bench_function("syntactic_alg3_for_reference", |b| {
        b.iter(|| {
            s.compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
                .unwrap()
        })
    });
    g.finish();
}

fn x2_mtls(c: &mut Criterion) {
    let mut mesh = Mesh::paper_example();
    mesh.add_service(Service::new("legacy-batch", [9000]).without_sidecar());
    let mv = MeshVocab::new_with_features(
        &mesh,
        [24, 26, 10000, 14000],
        muppet_logic::PartyId(0),
        muppet_logic::PartyId(1),
        true,
    );
    let mut vocab = mv.vocab.clone();
    let k8s_goals =
        translate_k8s_goals(&K8sGoal::parse_csv("23,DENY,*\n").unwrap(), &mv, &mut vocab)
            .unwrap();
    let axioms = mv.well_formedness_axioms(&mut vocab);
    let mut s = Session::new(&mv.universe, vocab, mv.sidecar_instance());
    s.add_axioms(axioms);
    s.add_party(
        Party::new(mv.k8s_party, "k8s-admin")
            .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
    );
    s.add_party(Party::new(mv.istio_party, "istio-admin"));

    let mut g = c.benchmark_group("x2_mtls");
    g.sample_size(30);
    g.bench_function("envelope_with_mtls_disjunct", |b| {
        b.iter(|| {
            let env = s
                .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
                .unwrap();
            assert_eq!(env.predicates.len(), 1);
        })
    });
    g.finish();
}

fn x3_explain(c: &mut Criterion) {
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);
    let env = s
        .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
        .unwrap();
    let deployment = mv.structure_instance();
    let mut g = c.benchmark_group("x3_explain");
    g.sample_size(30);
    g.bench_function("why_not_on_deployment", |b| {
        b.iter(|| {
            let exp =
                explain_predicate(&env.predicates[0], &deployment, s.vocab(), s.universe(), 10);
            assert!(!exp.holds);
            exp.witnesses.len()
        })
    });
    g.finish();
}

criterion_group!(benches, x1_learning, x2_mtls, x3_explain);
criterion_main!(benches);
