//! E4 (Sec. 5): "all queries made in modest scenarios … finish in under
//! 1 second" — the paper's single quantitative claim, extended into a
//! scaling sweep. The workload is the committed scenario corpus: every
//! mesh entry of the smoke and paper tiers is measured on each core
//! query (local consistency, reconciliation, envelope extraction), with
//! the entry's committed verdict as the assertion — no hand-rolled
//! fixtures, so the bench sweep and the test suite stay on the same
//! ground truth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use muppet::ReconcileMode;
use muppet_bench::scenario::corpus::{entries, Kind, Tier};
use muppet_bench::scenario::{generate, Expected};
use muppet_logic::Instance;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_scaling");
    g.sample_size(10);

    for entry in entries(Tier::Smoke).chain(entries(Tier::Paper)) {
        let Kind::Mesh(params) = entry.kind else {
            continue;
        };
        let scenario = generate(params);
        let session = scenario.session(false);
        let sat = entry.expected == Expected::Sat;

        if sat {
            g.bench_with_input(
                BenchmarkId::new("local_consistency", entry.name),
                &entry.name,
                |b, _| {
                    b.iter(|| {
                        let r = session.local_consistency(scenario.mv.istio_party).unwrap();
                        assert!(r.ok);
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new("envelope", entry.name),
                &entry.name,
                |b, _| {
                    b.iter(|| {
                        let env = session
                            .compute_envelope(
                                scenario.mv.k8s_party,
                                scenario.mv.istio_party,
                                &Instance::new(),
                            )
                            .unwrap();
                        assert!(!env.predicates.is_empty() || env.impossible.is_empty());
                    })
                },
            );
        }

        // Sat entries measure the model search, unsat ones the blamed
        // core extraction — both against the committed label.
        let (mode, label) = if sat {
            (ReconcileMode::HardBounds, "reconcile_sat")
        } else {
            (ReconcileMode::Blameable, "reconcile_unsat_core")
        };
        g.bench_with_input(BenchmarkId::new(label, entry.name), &entry.name, |b, _| {
            b.iter(|| {
                let r = session.reconcile(mode).unwrap();
                assert_eq!(r.success, sat, "{} verdict drifted", entry.name);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
