//! E4 (Sec. 5): "all queries made in modest scenarios … finish in under
//! 1 second" — the paper's single quantitative claim, extended into a
//! scaling sweep. Mesh size grows from paper scale (3 services) to 24;
//! every core query (local consistency, reconciliation, envelope
//! extraction, synthesis) is measured at each size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use muppet::ReconcileMode;
use muppet_bench::scenario::{generate, Scenario, ScenarioParams};
use muppet_logic::Instance;

fn scenario(services: usize, conflicting: bool) -> Scenario {
    generate(ScenarioParams {
        services,
        istio_goals: services,
        k8s_goals: 1,
        conflict_fraction: if conflicting { 1.0 } else { 0.0 },
        ..ScenarioParams::default()
    })
}

fn bench(c: &mut Criterion) {
    let sizes = [3usize, 6, 12, 24];
    let mut g = c.benchmark_group("e4_scaling");
    g.sample_size(10);

    for &n in &sizes {
        let sat = scenario(n, false);
        let sat_session = sat.session(false);
        g.bench_with_input(BenchmarkId::new("local_consistency", n), &n, |b, _| {
            b.iter(|| {
                let r = sat_session.local_consistency(sat.mv.istio_party).unwrap();
                assert!(r.ok);
            })
        });
        g.bench_with_input(BenchmarkId::new("reconcile_sat", n), &n, |b, _| {
            b.iter(|| {
                let r = sat_session.reconcile(ReconcileMode::HardBounds).unwrap();
                assert!(r.success);
            })
        });
        g.bench_with_input(BenchmarkId::new("envelope", n), &n, |b, _| {
            b.iter(|| {
                let env = sat_session
                    .compute_envelope(sat.mv.k8s_party, sat.mv.istio_party, &Instance::new())
                    .unwrap();
                assert!(!env.predicates.is_empty() || env.impossible.is_empty());
            })
        });

        let unsat = scenario(n, true);
        if !unsat.conflicting_ports().is_empty() {
            let unsat_session = unsat.session(false);
            g.bench_with_input(BenchmarkId::new("reconcile_unsat_core", n), &n, |b, _| {
                b.iter(|| {
                    let r = unsat_session.reconcile(ReconcileMode::Blameable).unwrap();
                    assert!(!r.success);
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
