//! E8 (Fig. 9): round-robin negotiation episodes.
//!
//! Measures full negotiations to convergence on the committed corpus'
//! conflicted mesh entries (every ban targets a goal port), with soft
//! Istio goals and a goal-dropping revision strategy. Consuming the
//! corpus instead of hand-rolled fixtures keeps the negotiation
//! workload pinned to the same committed ground truth the test suite
//! validates.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use muppet::negotiate::{run_negotiation, DropBlamedSoftGoals, Negotiator, Stubborn};
use muppet_bench::scenario::corpus::{entries, Kind, Tier};
use muppet_bench::scenario::{generate, Expected};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_negotiation");
    g.sample_size(10);
    for entry in entries(Tier::Smoke).chain(entries(Tier::Paper)) {
        let Kind::Mesh(params) = entry.kind else {
            continue;
        };
        // Negotiation is only interesting where the hard verdict is
        // unsat: the soft-goal session then converges by dropping
        // blamed rows.
        if entry.expected != Expected::Unsat {
            continue;
        }
        let scenario = generate(params);
        g.bench_with_input(
            BenchmarkId::new("to_convergence", entry.name),
            &entry.name,
            |b, _| {
                b.iter(|| {
                    // Negotiation mutates goals: rebuild per iteration.
                    let mut session = scenario.session(true);
                    let mut negs: BTreeMap<muppet_logic::PartyId, Box<dyn Negotiator>> =
                        BTreeMap::new();
                    negs.insert(scenario.mv.k8s_party, Box::new(Stubborn));
                    negs.insert(scenario.mv.istio_party, Box::new(DropBlamedSoftGoals));
                    let report = run_negotiation(&mut session, &mut negs, 40).unwrap();
                    assert!(report.success);
                    report.rounds
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
