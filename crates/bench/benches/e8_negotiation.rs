//! E8 (Fig. 9): round-robin negotiation episodes.
//!
//! Measures full negotiations to convergence as the number of built-in
//! conflicts grows, on generated scenarios with soft Istio goals and a
//! goal-dropping revision strategy.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use muppet::negotiate::{run_negotiation, DropBlamedSoftGoals, Negotiator, Stubborn};
use muppet_bench::scenario::{generate, ScenarioParams};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_negotiation");
    g.sample_size(10);
    for &bans in &[1usize, 2, 3] {
        let params = ScenarioParams {
            services: 6,
            istio_goals: 8,
            k8s_goals: bans,
            conflict_fraction: 1.0,
            seed: 7,
            ..ScenarioParams::default()
        };
        let scenario = generate(params);
        g.bench_with_input(
            BenchmarkId::new("to_convergence", bans),
            &bans,
            |b, _| {
                b.iter(|| {
                    // Negotiation mutates goals: rebuild per iteration.
                    let mut session = scenario.session(true);
                    let mut negs: BTreeMap<muppet_logic::PartyId, Box<dyn Negotiator>> =
                        BTreeMap::new();
                    negs.insert(scenario.mv.k8s_party, Box::new(Stubborn));
                    negs.insert(scenario.mv.istio_party, Box::new(DropBlamedSoftGoals));
                    let report = run_negotiation(&mut session, &mut negs, 40).unwrap();
                    assert!(report.success);
                    report.rounds
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
