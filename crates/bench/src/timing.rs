//! Timing helpers and table formatting for the experiment harness.

use std::time::{Duration, Instant};

/// Run `f` once and return its result with the wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Run `f` `n` times and return the last result with the median duration.
pub fn timed_median<T>(n: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(n >= 1);
    let mut durations = Vec::with_capacity(n);
    let mut last = None;
    for _ in 0..n {
        let (out, d) = timed(&mut f);
        durations.push(d);
        last = Some(out);
    }
    durations.sort();
    (last.expect("n >= 1"), durations[durations.len() / 2])
}

/// Format a duration as milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// A fixed-width text table writer for harness output.
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The appended rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (for downstream plotting).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        let (v, d) = timed_median(3, || 7);
        assert_eq!(v, 7);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new(&["exp", "ms"]);
        t.row(&["E1".to_string(), "0.5".to_string()]);
        t.row(&["E4.scale".to_string(), "12.25".to_string()]);
        let text = t.render();
        assert!(text.contains("exp"));
        assert!(text.lines().count() >= 4);
        let csv = t.render_csv();
        assert_eq!(csv.lines().next().unwrap(), "exp,ms");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(Duration::from_millis(2)), "2.000");
    }
}
