//! The paper's fixed walkthrough instances (Figs. 1–4), packaged for
//! benches, the harness and the examples.

use muppet::{NamedGoal, Party, Session};
use muppet_goals::{fig2, translate_istio_goals, translate_k8s_goals, IstioGoal};
use muppet_mesh::MeshVocab;

/// Which Istio goal table to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IstioTable {
    /// Fig. 3: strict concrete ports (conflicts with the Fig. 2 ban).
    Fig3,
    /// Fig. 4: relaxed, with existential port variables.
    Fig4,
}

/// The Fig. 1 mesh vocabulary (3 services, the 8 paper ports).
pub fn vocab() -> MeshVocab {
    MeshVocab::paper_example()
}

/// Build the paper's two-party session over a given vocabulary.
pub fn session(mv: &MeshVocab, table: IstioTable) -> Session<'_> {
    let rows = match table {
        IstioTable::Fig3 => IstioGoal::fig3(),
        IstioTable::Fig4 => IstioGoal::fig4(),
    };
    let mut vocab = mv.vocab.clone();
    let k8s_goals = translate_k8s_goals(&fig2(), mv, &mut vocab).expect("fig2 translates");
    let istio_goals = translate_istio_goals(&rows, mv, &mut vocab).expect("rows translate");
    let axioms = mv.well_formedness_axioms(&mut vocab);
    let mut s = Session::new(&mv.universe, vocab, muppet_logic::Instance::new());
    s.add_axioms(axioms);
    s.add_party(
        Party::new(mv.k8s_party, "k8s-admin")
            .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
    );
    s.add_party(
        Party::new(mv.istio_party, "istio-admin")
            .with_goals(istio_goals.into_iter().map(NamedGoal::from)),
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet::ReconcileMode;

    #[test]
    fn fig3_conflicts_fig4_reconciles() {
        let mv = vocab();
        let s3 = session(&mv, IstioTable::Fig3);
        assert!(!s3.reconcile(ReconcileMode::HardBounds).unwrap().success);
        let s4 = session(&mv, IstioTable::Fig4);
        assert!(s4.reconcile(ReconcileMode::HardBounds).unwrap().success);
    }
}
