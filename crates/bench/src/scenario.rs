//! Synthetic scenario generation.
//!
//! Scenarios scale along the axes the paper's example fixes: number of
//! services, goal-table size, and how many goals collide with the other
//! party's port bans. Generation is deterministic given the seed.

use muppet::{NamedGoal, Party, Session};
use muppet_goals::{translate_istio_goals, translate_k8s_goals, IstioGoal, K8sGoal, PortSpec};
use muppet_mesh::{Mesh, MeshVocab, Selector, Service};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Scenario dimensions.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioParams {
    /// Number of services in the mesh.
    pub services: usize,
    /// Listening ports per service.
    pub ports_per_service: usize,
    /// Spare ports added to the universe (room for ∃-port goals).
    pub extra_ports: usize,
    /// Istio reachability goal rows.
    pub istio_goals: usize,
    /// K8s DENY-port goal rows.
    pub k8s_goals: usize,
    /// Fraction of K8s bans aimed at ports that Istio goals rely on
    /// (1.0 = every ban conflicts, 0.0 = bans only hit unused ports).
    pub conflict_fraction: f64,
    /// Fraction of Istio goal rows whose destination port is a named
    /// existential variable instead of a concrete port (Fig. 4 style
    /// flexibility).
    pub flexible_fraction: f64,
    /// Number of namespaces; services are assigned round-robin. With
    /// more than one, each K8s ban is namespace-scoped with probability
    /// ½ (the multi-tenant shape of the paper's Sec. 1 motivation).
    pub namespaces: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            services: 6,
            ports_per_service: 2,
            extra_ports: 4,
            istio_goals: 6,
            k8s_goals: 1,
            conflict_fraction: 0.0,
            flexible_fraction: 0.0,
            namespaces: 1,
            seed: 0x4d55_5050,
        }
    }
}

/// A generated scenario: mesh, vocabulary and both goal tables.
pub struct Scenario {
    /// The mesh.
    pub mesh: Mesh,
    /// The logical vocabulary over it.
    pub mv: MeshVocab,
    /// K8s goal rows.
    pub k8s_goals: Vec<K8sGoal>,
    /// Istio goal rows.
    pub istio_goals: Vec<IstioGoal>,
    /// Parameters used.
    pub params: ScenarioParams,
}

/// Generate a scenario deterministically from its parameters.
pub fn generate(params: ScenarioParams) -> Scenario {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut mesh = Mesh::new();
    let mut all_ports: Vec<u16> = Vec::new();
    let namespaces = params.namespaces.max(1);
    for i in 0..params.services {
        let base = 1000 + (i as u16) * 100;
        let ports: Vec<u16> = (0..params.ports_per_service)
            .map(|j| base + j as u16)
            .collect();
        all_ports.extend(&ports);
        let svc = Service::new(format!("svc-{i}"), ports)
            .in_namespace(format!("ns-{}", i % namespaces));
        mesh.add_service(svc);
    }
    let extra: Vec<u16> = (0..params.extra_ports)
        .map(|j| 20000 + j as u16)
        .collect();

    // Istio reachability goals: random src≠dst pairs; the destination
    // port is one the destination actually listens on (or an ∃ variable
    // for the flexible fraction).
    let mut istio_goals = Vec::new();
    let mut used_ports: Vec<u16> = Vec::new();
    for gi in 0..params.istio_goals {
        let si = rng.random_range(0..params.services);
        let mut di = rng.random_range(0..params.services);
        if params.services > 1 {
            while di == si {
                di = rng.random_range(0..params.services);
            }
        }
        let dst_svc = mesh.service(&format!("svc-{di}")).expect("generated");
        let dst_ports: Vec<u16> = dst_svc.ports.iter().copied().collect();
        let port = dst_ports[rng.random_range(0..dst_ports.len())];
        let flexible = rng.random_bool(params.flexible_fraction.clamp(0.0, 1.0));
        let dst_port = if flexible {
            PortSpec::Var(format!("p{gi}"))
        } else {
            used_ports.push(port);
            PortSpec::Port(port)
        };
        istio_goals.push(IstioGoal {
            src: format!("svc-{si}"),
            dst: format!("svc-{di}"),
            src_port: PortSpec::Any,
            dst_port,
        });
    }

    // K8s bans: conflicting bans target ports that concrete Istio goals
    // depend on; benign bans target unused ports.
    let unused: Vec<u16> = all_ports
        .iter()
        .copied()
        .filter(|p| !used_ports.contains(p))
        .collect();
    let mut k8s_goals = Vec::new();
    for _ in 0..params.k8s_goals {
        let conflicting = rng.random_bool(params.conflict_fraction.clamp(0.0, 1.0));
        let port = if conflicting && !used_ports.is_empty() {
            used_ports[rng.random_range(0..used_ports.len())]
        } else if !unused.is_empty() {
            unused[rng.random_range(0..unused.len())]
        } else if !all_ports.is_empty() {
            all_ports[rng.random_range(0..all_ports.len())]
        } else {
            20000
        };
        if k8s_goals
            .iter()
            .any(|g: &K8sGoal| g.port == port)
        {
            continue; // avoid duplicate bans
        }
        let selector = if namespaces > 1 && rng.random_bool(0.5) {
            Selector::Namespace(format!("ns-{}", rng.random_range(0..namespaces)))
        } else {
            Selector::All
        };
        k8s_goals.push(K8sGoal {
            port,
            perm: muppet_mesh::Action::Deny,
            selector,
        });
    }

    let mv = MeshVocab::new(
        &mesh,
        extra,
        muppet_logic::PartyId(0),
        muppet_logic::PartyId(1),
    );
    Scenario {
        mesh,
        mv,
        k8s_goals,
        istio_goals,
        params,
    }
}

impl Scenario {
    /// Build a two-party Muppet session for this scenario. `soft_istio`
    /// marks the Istio goals droppable (for negotiation experiments).
    pub fn session(&self, soft_istio: bool) -> Session<'_> {
        let mut vocab = self.mv.vocab.clone();
        let k8s_goals =
            translate_k8s_goals(&self.k8s_goals, &self.mv, &mut vocab).expect("generated goals");
        let istio_goals = translate_istio_goals(&self.istio_goals, &self.mv, &mut vocab)
            .expect("generated goals");
        let axioms = self.mv.well_formedness_axioms(&mut vocab);
        let mut session = Session::new(
            &self.mv.universe,
            vocab,
            muppet_logic::Instance::new(),
        );
        session.add_axioms(axioms);
        session.add_party(
            Party::new(self.mv.k8s_party, "k8s-admin")
                .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
        );
        session.add_party(Party::new(self.mv.istio_party, "istio-admin").with_goals(
            istio_goals.into_iter().map(|g| {
                let mut g = NamedGoal::from(g);
                g.hard = !soft_istio;
                g
            }),
        ));
        session
    }

    /// Render the scenario as daemon wire content: `(manifests YAML,
    /// k8s goal CSV, istio goal CSV, extra ports)` — the fields of a
    /// `muppet-daemon` `SessionSpec`. Round-trips through the same
    /// parsers the CLI uses, so a daemon loaded from these strings sees
    /// the scenario's mesh and goal tables.
    pub fn wire_content(&self) -> (String, String, String, Vec<u16>) {
        let manifests = muppet_mesh::manifest::emit_bundle(&muppet_mesh::manifest::ManifestBundle {
            mesh: self.mesh.clone(),
            ..Default::default()
        });
        let mut k8s = String::from("port,perm,selector\n");
        for g in &self.k8s_goals {
            let perm = match g.perm {
                muppet_mesh::Action::Deny => "DENY",
                muppet_mesh::Action::Allow => "ALLOW",
            };
            let sel = match &g.selector {
                Selector::All => "*".to_string(),
                Selector::Namespace(ns) => format!("ns={ns}"),
                Selector::Name(n) => n.clone(),
                Selector::Labels(pairs) => pairs
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .next()
                    .unwrap_or_else(|| "*".to_string()),
            };
            k8s.push_str(&format!("{},{},{}\n", g.port, perm, sel));
        }
        let mut istio = String::from("srcService,dstService,srcPort,dstPort\n");
        let cell = |p: &PortSpec| match p {
            PortSpec::Port(n) => n.to_string(),
            PortSpec::Var(name) => format!("?{name}"),
            PortSpec::Any => "*".to_string(),
        };
        for g in &self.istio_goals {
            istio.push_str(&format!(
                "{},{},{},{}\n",
                g.src,
                g.dst,
                cell(&g.src_port),
                cell(&g.dst_port)
            ));
        }
        let extras: Vec<u16> = (0..self.params.extra_ports)
            .map(|j| 20000 + j as u16)
            .collect();
        (manifests, k8s, istio, extras)
    }

    /// The ports banned by the K8s goals that some concrete Istio goal
    /// needs — i.e. the built-in conflicts. Namespace-scoped bans only
    /// conflict with goals whose destination lives in the banned
    /// namespace.
    pub fn conflicting_ports(&self) -> Vec<u16> {
        self.k8s_goals
            .iter()
            .filter(|k| {
                self.istio_goals.iter().any(|g| {
                    g.dst_port == PortSpec::Port(k.port)
                        && self
                            .mesh
                            .service(&g.dst)
                            .map(|d| k.selector.matches(d))
                            .unwrap_or(false)
                })
            })
            .map(|k| k.port)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet::ReconcileMode;

    #[test]
    fn generation_is_deterministic() {
        let p = ScenarioParams::default();
        let a = generate(p);
        let b = generate(p);
        assert_eq!(a.mesh, b.mesh);
        assert_eq!(a.k8s_goals, b.k8s_goals);
        assert_eq!(a.istio_goals, b.istio_goals);
    }

    #[test]
    fn no_conflict_scenarios_reconcile() {
        let s = generate(ScenarioParams {
            conflict_fraction: 0.0,
            ..ScenarioParams::default()
        });
        assert!(s.conflicting_ports().is_empty());
        let session = s.session(false);
        let rec = session.reconcile(ReconcileMode::HardBounds).unwrap();
        assert!(rec.success);
    }

    #[test]
    fn forced_conflicts_fail_reconciliation() {
        let s = generate(ScenarioParams {
            conflict_fraction: 1.0,
            k8s_goals: 2,
            ..ScenarioParams::default()
        });
        assert!(!s.conflicting_ports().is_empty());
        let session = s.session(false);
        let rec = session.reconcile(ReconcileMode::Blameable).unwrap();
        assert!(!rec.success);
        assert!(!rec.core.is_empty());
    }

    #[test]
    fn flexible_goals_survive_bans() {
        // Fully flexible Istio goals can always dodge a ban via the
        // spare ports.
        let s = generate(ScenarioParams {
            conflict_fraction: 1.0,
            flexible_fraction: 1.0,
            k8s_goals: 2,
            ..ScenarioParams::default()
        });
        let session = s.session(false);
        let rec = session.reconcile(ReconcileMode::HardBounds).unwrap();
        assert!(rec.success);
    }

    #[test]
    fn namespaced_scenarios_generate_and_behave() {
        let s = generate(ScenarioParams {
            services: 8,
            namespaces: 3,
            k8s_goals: 3,
            conflict_fraction: 1.0,
            seed: 21,
            ..ScenarioParams::default()
        });
        // Services are spread over the namespaces.
        let namespaces: std::collections::BTreeSet<&str> = s
            .mesh
            .services()
            .iter()
            .map(|svc| svc.namespace.as_str())
            .collect();
        assert_eq!(namespaces.len(), 3);
        // The session solves either way; if conflicts exist the core
        // names goals, not the whole table.
        let session = s.session(false);
        let rec = session.reconcile(muppet::ReconcileMode::Blameable).unwrap();
        if s.conflicting_ports().is_empty() {
            assert!(rec.success);
        } else {
            assert!(!rec.success);
            assert!(rec.core.len() < 2 * s.istio_goals.len());
        }
    }

    #[test]
    fn scales_to_more_services() {
        let s = generate(ScenarioParams {
            services: 12,
            istio_goals: 12,
            ..ScenarioParams::default()
        });
        assert_eq!(s.mesh.services().len(), 12);
        let session = s.session(false);
        assert!(session.reconcile(ReconcileMode::HardBounds).unwrap().success);
    }
}
