//! # muppet-bench — workload generation and the experiment harness core
//!
//! The paper's evaluation (Sec. 5) reports that "all queries made in
//! modest scenarios … finish in under 1 second", and its worked example
//! (Figs. 1–5) plus workflows (Figs. 6–9) define the behaviours to
//! regenerate. This crate supplies what the Criterion benches and the
//! `muppet-harness` binary share:
//!
//! * [`scenario`] — the seeded scenario generator and graded corpus,
//!   re-exported from `muppet-scenario` (the paper could not obtain
//!   production configurations — Sec. 3 — so, like it, we extrapolate;
//!   the generator is our substitute for private workloads, per
//!   `DESIGN.md` §5 and §15).
//! * [`paper`] — the fixed paper walkthrough instances (Figs. 1–4) as
//!   ready-made sessions, also from `muppet-scenario`.
//! * [`timing`] — small helpers to time closures and format result rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use muppet_scenario as scenario;
pub use muppet_scenario::paper;

pub mod timing;
