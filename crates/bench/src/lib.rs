//! # muppet-bench — workload generation and the experiment harness core
//!
//! The paper's evaluation (Sec. 5) reports that "all queries made in
//! modest scenarios … finish in under 1 second", and its worked example
//! (Figs. 1–5) plus workflows (Figs. 6–9) define the behaviours to
//! regenerate. This crate supplies what the Criterion benches and the
//! `muppet-harness` binary share:
//!
//! * [`scenario`] — a parameterized generator of synthetic meshes, goal
//!   tables and conflicts (the paper could not obtain production
//!   configurations — Sec. 3 — so, like it, we extrapolate; the generator
//!   is our substitute for private workloads, per `DESIGN.md` §5).
//! * [`paper`] — the fixed paper walkthrough instances (Figs. 1–4) as
//!   ready-made sessions.
//! * [`timing`] — small helpers to time closures and format result rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
pub mod scenario;
pub mod timing;
