//! # muppet-scenario — seeded scale generator + graded scenario corpus
//!
//! Every workload the harness, benches, daemon lanes and CLI run comes
//! from this crate (`DESIGN.md` §15):
//!
//! * [`generate`] — a seeded, fully deterministic, parameterized mesh
//!   generator (service count, label topology, goal families, conflict
//!   density, tenant/provider goal split) producing complete scenarios —
//!   manifests + admin goals + an expected verdict label — from tens to
//!   tens of thousands of services.
//! * [`paper`] — the paper's fixed walkthrough instances (Figs. 1–4) and
//!   the relational pigeonhole family, the single definition every lane
//!   that used to hand-build them now shares.
//! * [`hard`] — CNF-level hard instances for the SAT kernel: pigeonhole
//!   and a Partner-Units-Problem-style family (arXiv:1308.6206) whose
//!   verdicts are known by construction.
//! * [`corpus`] — the committed graded corpus (tiers `smoke` / `paper` /
//!   `large` / `hard`) with expected verdicts validated against the
//!   solver by `tests/scenario_corpus.rs` and the harness S1 lane.
//! * [`minedit`] — a committed minimal-edit scenario with a known
//!   optimal distance, the harness K1 lane's `solve_target` benchmark
//!   (core-guided vs. linear-search strategy).
//! * [`stream`] — typed [`ConfigDelta`] edits with `apply` semantics
//!   and seeded [`EditStream`] generation (growth / policy-churn /
//!   goal-churn / mixed profiles) for the streaming-reconfiguration
//!   subsystem (`crates/stream`, daemon watch mode, harness W1 lane).
//!
//! Generation is a pure function of [`ScenarioParams`]: same seed + same
//! params ⇒ byte-identical manifests, goal tables and provenance, across
//! processes and runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
mod generate;
pub mod hard;
pub mod minedit;
pub mod paper;
pub mod stream;

pub use generate::{
    conflicting_ports_of, generate, istio_goals_csv, k8s_goals_csv, Scenario, ScenarioParams,
};
pub use stream::{
    generate_stream, ConfigDelta, DeltaError, EditStream, StreamParams, StreamProfile,
};

/// The verdict a scenario is constructed to have.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expected {
    /// Reconciliation succeeds (a joint configuration exists).
    Sat,
    /// Reconciliation fails (the goals conflict).
    Unsat,
}

impl Expected {
    /// Stable lowercase label (used in `scenario.json` provenance).
    pub fn label(self) -> &'static str {
        match self {
            Expected::Sat => "sat",
            Expected::Unsat => "unsat",
        }
    }

    /// Does a reconciliation success flag match this expectation?
    pub fn matches_success(self, success: bool) -> bool {
        match self {
            Expected::Sat => success,
            Expected::Unsat => !success,
        }
    }
}

impl std::fmt::Display for Expected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}
