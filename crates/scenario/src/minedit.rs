//! A committed minimal-edit scenario for target-oriented solving.
//!
//! The harness K1 lane needs a deterministic instance where the
//! *optimal edit distance is known by construction* and large enough
//! that the search trajectory matters: `k` independent one-of-two
//! choices over a ring of `n` atoms, solved against an empty target, so
//! the closest model is exactly `k` flips away.
//!
//! Construction: one sort with `n` atoms, one binary relation `R`;
//! bounds permit the self-loop `R(a_i, a_i)` and the ring edge
//! `R(a_i, a_{i+1 mod n})` for every `i` (`2n` free tuple variables);
//! goal `j` (for `k` evenly spread distinct rows `i`) requires
//! `R(a_i, a_i) ∨ R(a_i, a_{i+1})`. Every goal forces at least one
//! tuple of its own row to be true and no two goals share a tuple, so
//! against the empty target the minimal distance is exactly `k` — with
//! `C(2,1)^k = 2^k` distance-optimal models for canonicalization to
//! order. A core-guided ascent sees `k` two-indicator cores; a linear
//! search performs `k` bound-raising UNSAT proofs over the full `2n`
//! input totalizer first.

use muppet_logic::{Domain, Formula, Instance, PartialInstance, PartyId, RelId, Term, Universe, Vocabulary};
use muppet_solver::{Budget, FormulaGroup, IncrementalQuery};

/// A self-contained minimal-edit instance with its known optimum.
pub struct MinEditScenario {
    /// Vocabulary with the single relation `R`.
    pub vocab: Vocabulary,
    /// Universe with `n` atoms of one sort.
    pub universe: Universe,
    /// The free relation.
    pub rel: RelId,
    /// Bounds permitting the `2n` candidate tuples.
    pub bounds: PartialInstance,
    /// The `k` one-of-two goal groups, named `goal-<j>`.
    pub groups: Vec<FormulaGroup>,
    /// The target to edit toward (empty: "change nothing").
    pub target: Instance,
    /// The minimal distance, by construction (= number of goals).
    pub optimum: usize,
}

impl MinEditScenario {
    /// A warm engine over this scenario with every goal group encoded;
    /// returns the engine and the active group ids.
    pub fn engine(&self) -> (IncrementalQuery, Vec<muppet_solver::GroupId>) {
        let mut q = IncrementalQuery::new(
            &self.vocab,
            &self.universe,
            &[self.rel],
            &self.bounds,
            Instance::new(),
        );
        let mut active = Vec::with_capacity(self.groups.len());
        for g in &self.groups {
            active.push(q.ensure_group(g, &Budget::unlimited()).expect("groups ground"));
        }
        (q, active)
    }
}

/// Build the minimal-edit scenario over `n` atoms with `k` goals of
/// `width` rows each (`k` clamped to `n`, `width` clamped to the
/// per-goal block `n / k` so blocks stay disjoint). Wider goals give
/// each goal `2·width` interchangeable tuples: the optimum stays `k`,
/// but a bound-raising UNSAT proof over the global cardinality network
/// must now search over which of the `2·width` options each goal
/// takes, while a core-guided ascent still learns one local core per
/// goal. Deterministic: no seed, same parameters ⇒ byte-identical
/// scenario.
pub fn minedit(n: usize, k: usize, width: usize) -> MinEditScenario {
    let n = n.max(2);
    let k = k.min(n).max(1);
    let mut universe = Universe::new();
    let s = universe.add_sort("Node");
    let atoms: Vec<_> = (0..n)
        .map(|i| universe.add_atom(s, format!("n{i}")))
        .collect();
    let mut vocab = Vocabulary::new();
    let rel = vocab.add_simple_rel("link", vec![s, s], Domain::Party(PartyId(0)));
    let mut bounds = PartialInstance::new();
    for i in 0..n {
        bounds.permit(rel, vec![atoms[i], atoms[i]]);
        bounds.permit(rel, vec![atoms[i], atoms[(i + 1) % n]]);
    }
    // Spread the k goal blocks evenly over the ring so they stay
    // pairwise disjoint.
    let step = n / k;
    let width = width.clamp(1, step);
    let groups = (0..k)
        .map(|j| {
            let options = (0..width).flat_map(|o| {
                let i = j * step + o;
                let self_loop =
                    Formula::pred(rel, [Term::Const(atoms[i]), Term::Const(atoms[i])]);
                let edge = Formula::pred(
                    rel,
                    [Term::Const(atoms[i]), Term::Const(atoms[(i + 1) % n])],
                );
                [self_loop, edge]
            });
            FormulaGroup::new(format!("goal-{j}"), vec![Formula::or(options)])
        })
        .collect();
    MinEditScenario {
        vocab,
        universe,
        rel,
        bounds,
        groups,
        target: Instance::new(),
        optimum: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_solver::TargetStrategy;

    #[test]
    fn optimum_is_attained_and_strategy_independent() {
        let sc = minedit(12, 4, 2);
        let (mut q, active) = sc.engine();
        let (out, d) = q.solve_target(&active, &sc.target, Budget::unlimited());
        assert!(out.is_sat());
        assert_eq!(d, sc.optimum);
        let (mut lin, lactive) = sc.engine();
        lin.set_target_strategy(TargetStrategy::Linear);
        let (lout, ld) = lin.solve_target(&lactive, &sc.target, Budget::unlimited());
        assert_eq!(ld, sc.optimum);
        assert_eq!(out.solution(), lout.solution());
    }
}

