//! The committed graded scenario corpus.
//!
//! Four tiers, each an array of named entries with expected verdicts:
//!
//! * **smoke** — seconds-scale mesh scenarios; run everywhere.
//! * **paper** — the paper's walkthrough instances (Figs. 1–4) plus
//!   paper-scale generated meshes and the relational pigeonhole the A4
//!   ablation uses.
//! * **large** — ≥1000-service generated meshes with tight offers; the
//!   harness S1 scale lane runs the headline entries end to end and the
//!   rest behind `MUPPET_SCALE=full`.
//! * **hard** — CNF kernel stress: pigeonhole and the Partner Units
//!   Problem family.
//!
//! Every `smoke`/`paper` label is validated against the solver by
//! `tests/scenario_corpus.rs`; `large` labels are gated in the S1 lane.
//! Labels are never recomputed at run time — they are the committed
//! ground truth a run is compared against.

use crate::hard::{php_cnf, pup_sat, pup_unsat, CnfInstance};
use crate::paper::{php_relational, session, vocab, IstioTable};
use crate::stream::{StreamParams, StreamProfile};
use crate::{generate, generate_stream, Expected, ScenarioParams};

/// Corpus tier: how big / slow an entry is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Tiny mesh scenarios; always run.
    Smoke,
    /// The paper's fixed instances and paper-scale meshes.
    Paper,
    /// ≥1000-service generated meshes (bounded sessions).
    Large,
    /// CNF kernel stress instances.
    Hard,
}

impl Tier {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Smoke => "smoke",
            Tier::Paper => "paper",
            Tier::Large => "large",
            Tier::Hard => "hard",
        }
    }

    /// Parse a tier name.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "smoke" => Some(Tier::Smoke),
            "paper" => Some(Tier::Paper),
            "large" => Some(Tier::Large),
            "hard" => Some(Tier::Hard),
            _ => None,
        }
    }
}

/// What an entry materializes into.
#[derive(Clone, Copy, Debug)]
pub enum Kind {
    /// A generated mesh scenario (ground → encode → search pipeline).
    Mesh(ScenarioParams),
    /// The paper's strict tables (Fig. 2 vs Fig. 3).
    PaperStrict,
    /// The paper's relaxed tables (Fig. 2 vs Fig. 4).
    PaperRelaxed,
    /// Relational pigeonhole over the bounded-FOL pipeline.
    PhpRelational {
        /// Pigeons.
        pigeons: usize,
        /// Holes.
        holes: usize,
    },
    /// Propositional pigeonhole, straight CNF.
    PhpCnf {
        /// Pigeons.
        pigeons: usize,
        /// Holes.
        holes: usize,
    },
    /// Satisfiable Partner-Units instance.
    PupSat {
        /// Zones (and sensors).
        zones: usize,
        /// Zone–sensor edges.
        edges: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Unsatisfiable (over-capacity) Partner-Units instance.
    PupUnsat {
        /// Control units; zones = 2·units + 1.
        units: usize,
    },
    /// A generated edit stream (streaming-reconfiguration workload);
    /// the committed label is the verdict of the *final* state after
    /// replaying every delta.
    Stream(StreamParams),
    /// A committed fixture of a registered [`muppet_domain`] plugin
    /// (looked up by name); the fixtures come from [`domain_wire`].
    Domain {
        /// Registered domain name (`muppet_domain::lookup`).
        domain: &'static str,
    },
}

/// One committed corpus entry.
#[derive(Clone, Copy, Debug)]
pub struct CorpusEntry {
    /// Unique name (`muppet-cli gen --scenario <name>`).
    pub name: &'static str,
    /// Tier.
    pub tier: Tier,
    /// What to build.
    pub kind: Kind,
    /// The committed expected verdict.
    pub expected: Expected,
    /// One-line description.
    pub note: &'static str,
}

/// Paper-scale generator defaults shared by the corpus' mesh entries.
const BASE: ScenarioParams = ScenarioParams {
    services: 6,
    ports_per_service: 2,
    extra_ports: 4,
    istio_goals: 6,
    k8s_goals: 1,
    conflict_fraction: 0.0,
    flexible_fraction: 0.0,
    namespaces: 1,
    tiers: 1,
    port_pool: 0,
    bounded: false,
    seed: 0x4d55_5050,
};

/// Large-tier generator defaults: shared port pool, tier labels,
/// multi-tenant namespaces, bounded offers.
const LARGE_BASE: ScenarioParams = ScenarioParams {
    services: 1000,
    ports_per_service: 3,
    extra_ports: 4,
    istio_goals: 150,
    k8s_goals: 3,
    conflict_fraction: 0.0,
    flexible_fraction: 0.1,
    namespaces: 10,
    tiers: 4,
    port_pool: 6,
    bounded: true,
    seed: 71,
};

/// Base mesh of the committed churn streams: paper-scale, multi-tenant
/// namespaces and tier labels, shared port pool so stream edits collide
/// on ports.
const STREAM_BASE: ScenarioParams = ScenarioParams {
    services: 24,
    ports_per_service: 2,
    extra_ports: 4,
    istio_goals: 16,
    k8s_goals: 2,
    conflict_fraction: 0.0,
    flexible_fraction: 0.0,
    namespaces: 2,
    tiers: 2,
    port_pool: 8,
    bounded: false,
    seed: 0x4d55_5050,
};

/// The committed corpus.
pub const CORPUS: &[CorpusEntry] = &[
    // ---- smoke ----
    CorpusEntry {
        name: "smoke-baseline",
        tier: Tier::Smoke,
        kind: Kind::Mesh(BASE),
        expected: Expected::Sat,
        note: "default 6-service mesh, benign ban",
    },
    CorpusEntry {
        name: "smoke-conflict",
        tier: Tier::Smoke,
        kind: Kind::Mesh(ScenarioParams {
            conflict_fraction: 1.0,
            k8s_goals: 2,
            ..BASE
        }),
        expected: Expected::Unsat,
        note: "every ban targets a goal port",
    },
    CorpusEntry {
        name: "smoke-flex",
        tier: Tier::Smoke,
        kind: Kind::Mesh(ScenarioParams {
            conflict_fraction: 1.0,
            flexible_fraction: 1.0,
            k8s_goals: 2,
            ..BASE
        }),
        expected: Expected::Sat,
        note: "∃-port goals dodge every ban via spare ports",
    },
    // ---- paper ----
    CorpusEntry {
        name: "paper-strict",
        tier: Tier::Paper,
        kind: Kind::PaperStrict,
        expected: Expected::Unsat,
        note: "Fig. 2 port-23 ban vs Fig. 3 telnet row",
    },
    CorpusEntry {
        name: "paper-relaxed",
        tier: Tier::Paper,
        kind: Kind::PaperRelaxed,
        expected: Expected::Sat,
        note: "Fig. 2 vs Fig. 4 ∃-port rows (synthesis)",
    },
    CorpusEntry {
        name: "paper-mesh-12",
        tier: Tier::Paper,
        kind: Kind::Mesh(ScenarioParams {
            services: 12,
            istio_goals: 12,
            ..BASE
        }),
        expected: Expected::Sat,
        note: "paper-scale generated mesh (E-lane shape)",
    },
    CorpusEntry {
        name: "paper-mesh-12-conflict",
        tier: Tier::Paper,
        kind: Kind::Mesh(ScenarioParams {
            services: 12,
            istio_goals: 12,
            k8s_goals: 2,
            conflict_fraction: 1.0,
            ..BASE
        }),
        expected: Expected::Unsat,
        note: "paper-scale mesh, every ban targets a goal port (blame/negotiation shape)",
    },
    CorpusEntry {
        name: "linkerd-shop",
        tier: Tier::Paper,
        kind: Kind::Domain { domain: "linkerd" },
        expected: Expected::Unsat,
        note: "Linkerd default-deny shop: strict-mTLS db vs the unmeshed legacy client",
    },
    CorpusEntry {
        name: "php-9-8",
        tier: Tier::Paper,
        kind: Kind::PhpRelational {
            pigeons: 9,
            holes: 8,
        },
        expected: Expected::Unsat,
        note: "relational pigeonhole (A4 symmetry ablation)",
    },
    CorpusEntry {
        name: "stream-policy-churn",
        tier: Tier::Paper,
        kind: Kind::Stream(StreamParams {
            base: STREAM_BASE,
            profile: StreamProfile::PolicyChurn,
            deltas: 250,
            target_services: 0,
            seed: 101,
        }),
        expected: Expected::Sat,
        note: "250 ban upserts/retractions over a fixed 24-svc mesh",
    },
    CorpusEntry {
        name: "stream-goal-churn",
        tier: Tier::Paper,
        kind: Kind::Stream(StreamParams {
            base: STREAM_BASE,
            profile: StreamProfile::GoalChurn,
            deltas: 200,
            target_services: 0,
            seed: 102,
        }),
        expected: Expected::Unsat,
        note: "200 goal-row revisions over a fixed 24-svc mesh; the churn leaves a goal on a banned port",
    },
    CorpusEntry {
        name: "stream-bounded-churn",
        tier: Tier::Paper,
        kind: Kind::Stream(StreamParams {
            base: ScenarioParams {
                bounded: true,
                ..STREAM_BASE
            },
            profile: StreamProfile::PolicyChurn,
            deltas: 250,
            target_services: 0,
            seed: 101,
        }),
        expected: Expected::Sat,
        note: "250 ban upserts over a bounded-offer 24-svc mesh; tight offers keep the model canonicalizable (W1 lane workload)",
    },
    // ---- large ----
    CorpusEntry {
        name: "large-1000-sat",
        tier: Tier::Large,
        kind: Kind::Mesh(LARGE_BASE),
        expected: Expected::Sat,
        note: "1000 services, 150 goals, benign bans, bounded",
    },
    CorpusEntry {
        name: "large-1000-unsat",
        tier: Tier::Large,
        kind: Kind::Mesh(ScenarioParams {
            conflict_fraction: 1.0,
            k8s_goals: 2,
            seed: 72,
            ..LARGE_BASE
        }),
        expected: Expected::Unsat,
        note: "1000 services, bans on goal ports, bounded",
    },
    CorpusEntry {
        name: "large-2500-sat",
        tier: Tier::Large,
        kind: Kind::Mesh(ScenarioParams {
            services: 2500,
            istio_goals: 250,
            seed: 73,
            ..LARGE_BASE
        }),
        expected: Expected::Sat,
        note: "2500 services (MUPPET_SCALE=full only)",
    },
    CorpusEntry {
        name: "stream-growth-1000",
        tier: Tier::Large,
        kind: Kind::Stream(StreamParams {
            base: ScenarioParams {
                services: 10,
                istio_goals: 8,
                k8s_goals: 1,
                flexible_fraction: 0.0,
                ..LARGE_BASE
            },
            profile: StreamProfile::Growth,
            deltas: 1140,
            target_services: 1000,
            seed: 103,
        }),
        expected: Expected::Sat,
        note: "mesh grows 10 → 1000 services, goals follow, bounded",
    },
    // ---- hard ----
    CorpusEntry {
        name: "hard-php-8-7",
        tier: Tier::Hard,
        kind: Kind::PhpCnf {
            pigeons: 8,
            holes: 7,
        },
        expected: Expected::Unsat,
        note: "propositional pigeonhole (P1 portfolio shape)",
    },
    CorpusEntry {
        name: "hard-pup-sat-40",
        tier: Tier::Hard,
        kind: Kind::PupSat {
            zones: 40,
            edges: 90,
            seed: 11,
        },
        expected: Expected::Sat,
        note: "Partner Units, planted placement, 20 units",
    },
    CorpusEntry {
        name: "hard-pup-unsat-5",
        tier: Tier::Hard,
        kind: Kind::PupUnsat { units: 5 },
        expected: Expected::Unsat,
        note: "11 zones on 5 capacity-2 units: over capacity",
    },
];

/// All entries of one tier, in committed order.
pub fn entries(tier: Tier) -> impl Iterator<Item = &'static CorpusEntry> {
    CORPUS.iter().filter(move |e| e.tier == tier)
}

/// Look an entry up by name.
pub fn entry(name: &str) -> Option<&'static CorpusEntry> {
    CORPUS.iter().find(|e| e.name == name)
}

/// Build the CNF instance behind a CNF-kind entry (`None` for mesh /
/// paper kinds).
pub fn cnf_instance(kind: Kind) -> Option<CnfInstance> {
    match kind {
        Kind::PhpCnf { pigeons, holes } => Some(php_cnf(pigeons, holes)),
        Kind::PupSat { zones, edges, seed } => Some(pup_sat(zones, edges, seed)),
        Kind::PupUnsat { units } => Some(pup_unsat(units)),
        _ => None,
    }
}

/// The committed wire fixture of a [`Kind::Domain`] entry: manifests
/// plus one goal-table text per party, in the domain's slot order.
/// `None` for domains without a committed corpus fixture.
pub fn domain_wire(domain: &str) -> Option<(String, Vec<String>)> {
    match domain {
        "linkerd" => Some((
            muppet_domain::linkerd::example_manifests(),
            vec![
                muppet_domain::linkerd::example_platform_goals(),
                muppet_domain::linkerd::example_linkerd_goals(),
            ],
        )),
        _ => None,
    }
}

/// Build the [`muppet_domain::DomainModel`] behind a [`Kind::Domain`]
/// entry via the plugin registry.
pub fn domain_model(domain: &str) -> muppet_domain::DomainModel {
    let d = muppet_domain::lookup(domain).expect("corpus domain is registered");
    let (manifests, goals) = domain_wire(domain).expect("corpus domain has a committed fixture");
    d.build(&muppet_domain::DomainInput {
        manifests,
        goals,
        mtls: false,
        extra_ports: Vec::new(),
    })
    .expect("corpus domain fixture builds")
}

/// Run an entry through the appropriate solver pipeline and return the
/// observed verdict. Panics on a budget-exhausted (unknown) outcome —
/// corpus entries are sized to finish.
pub fn solver_verdict(entry: &CorpusEntry) -> Expected {
    fn of_success(success: bool) -> Expected {
        if success {
            Expected::Sat
        } else {
            Expected::Unsat
        }
    }
    match entry.kind {
        Kind::Mesh(params) => {
            let s = generate(params);
            let rec = s
                .session(false)
                .reconcile(muppet::ReconcileMode::HardBounds)
                .expect("corpus mesh reconciles within budget");
            of_success(rec.success)
        }
        Kind::PaperStrict | Kind::PaperRelaxed => {
            let mv = vocab();
            let table = if matches!(entry.kind, Kind::PaperStrict) {
                IstioTable::Fig3
            } else {
                IstioTable::Fig4
            };
            let rec = session(&mv, table)
                .reconcile(muppet::ReconcileMode::HardBounds)
                .expect("paper tables reconcile within budget");
            of_success(rec.success)
        }
        Kind::PhpRelational { pigeons, holes } => {
            use muppet_solver::{FormulaGroup, Outcome, Query};
            let (u, v, sits, formulas) = php_relational(pigeons, holes);
            let mut q = Query::new(&v, &u);
            q.free_rel(sits)
                .set_minimize_cores(false)
                .add_group(FormulaGroup::new("php", formulas));
            match q.solve().expect("php solves within budget") {
                Outcome::Sat { .. } => Expected::Sat,
                Outcome::Unsat { .. } => Expected::Unsat,
                other => panic!("php outcome {other:?}"),
            }
        }
        Kind::Stream(params) => {
            let s = generate_stream(params).final_scenario();
            let rec = s
                .session(false)
                .reconcile(muppet::ReconcileMode::HardBounds)
                .expect("corpus stream final state reconciles within budget");
            of_success(rec.success)
        }
        Kind::Domain { domain } => {
            let model = domain_model(domain);
            let rec = model
                .session()
                .reconcile(muppet::ReconcileMode::HardBounds)
                .expect("corpus domain fixture reconciles within budget");
            of_success(rec.success)
        }
        _ => {
            let inst = cnf_instance(entry.kind).expect("cnf kind");
            match inst.solver().solve() {
                muppet_sat::SolveResult::Sat(_) => Expected::Sat,
                muppet_sat::SolveResult::Unsat(_) => Expected::Unsat,
                muppet_sat::SolveResult::Unknown => panic!("unbudgeted solve cannot be unknown"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = CORPUS.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CORPUS.len());
    }

    #[test]
    fn every_tier_is_populated() {
        for tier in [Tier::Smoke, Tier::Paper, Tier::Large, Tier::Hard] {
            assert!(entries(tier).count() >= 2, "tier {} too thin", tier.name());
        }
    }

    #[test]
    fn mesh_labels_match_construction() {
        // The committed label of every mesh entry must agree with the
        // generator's own conflict analysis (solver agreement is the
        // integration test's job; this one is pure construction).
        for e in CORPUS {
            match e.kind {
                Kind::Mesh(params) => {
                    let s = generate(params);
                    assert_eq!(
                        s.expected_label(),
                        e.expected,
                        "{}: committed label disagrees with construction",
                        e.name
                    );
                }
                Kind::Stream(params) => {
                    assert_eq!(
                        generate_stream(params).final_expected(),
                        e.expected,
                        "{}: committed label disagrees with stream replay",
                        e.name
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn large_tier_is_actually_large() {
        for e in entries(Tier::Large) {
            match e.kind {
                Kind::Mesh(p) => assert!(p.services >= 1000, "{} too small", e.name),
                Kind::Stream(p) => assert!(
                    p.target_services >= 1000,
                    "{} grows to too few services",
                    e.name
                ),
                other => panic!("large tier must be mesh scenarios, got {other:?}"),
            }
        }
    }

    #[test]
    fn stream_entries_replay_cleanly() {
        // Every committed stream regenerates deterministically and its
        // growth entries actually reach their target.
        for e in CORPUS {
            if let Kind::Stream(params) = e.kind {
                let a = generate_stream(params);
                let b = generate_stream(params);
                assert_eq!(a.deltas_text(), b.deltas_text(), "{}", e.name);
                assert_eq!(a.deltas.len(), params.deltas, "{}", e.name);
                if params.profile == StreamProfile::Growth {
                    assert_eq!(
                        a.final_scenario().mesh.services().len(),
                        params.target_services,
                        "{}",
                        e.name
                    );
                }
            }
        }
    }

    #[test]
    fn tier_names_roundtrip() {
        for tier in [Tier::Smoke, Tier::Paper, Tier::Large, Tier::Hard] {
            assert_eq!(Tier::parse(tier.name()), Some(tier));
        }
    }
}
