//! Typed configuration deltas and seeded edit streams.
//!
//! The streaming-reconfiguration subsystem (DESIGN.md §16) treats a
//! configuration not as one snapshot but as a *stream of edits*: a mesh
//! grows service by service, bans churn as cluster admins react to
//! incidents, goal tables are revised row by row. [`ConfigDelta`] is
//! the typed edit vocabulary; [`generate_stream`] produces seeded,
//! deterministic delta sequences in several profiles (growth,
//! policy churn, goal churn, mixed) that the `crates/stream` session,
//! the daemon watch mode, the W1 harness lane and the differential
//! proptests all replay.
//!
//! Every delta has [`ConfigDelta::apply`] semantics against a
//! [`Scenario`] and a stable one-line wire form (`Display` /
//! [`ConfigDelta::parse`]) using the same selector and port-cell
//! grammar as the goal CSV tables, so `muppet-cli watch` can stream
//! deltas from a plain text file.

use muppet_goals::{IstioGoal, K8sGoal, PortSpec};
use muppet_mesh::{Mesh, Selector, Service};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{generate, Expected, Scenario, ScenarioParams};

/// One typed configuration edit.
///
/// The first five variants touch the mesh structure (and therefore the
/// logical universe — applying them rebuilds the scenario vocabulary);
/// the last four touch only a goal table, which is what makes them
/// cheap for a warm multi-shot session: the universe, bounds and every
/// unchanged CNF group survive byte-for-byte.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigDelta {
    /// Deploy a new service.
    AddService {
        /// Unique service name.
        name: String,
        /// Namespace.
        namespace: String,
        /// Optional `tier` label value.
        tier: Option<String>,
        /// Listening ports (non-empty).
        ports: Vec<u16>,
    },
    /// Tear a service down. Istio goal rows naming it are pruned.
    RemoveService {
        /// Service name.
        name: String,
    },
    /// Scale a service's replica count (recorded as a `replicas`
    /// label). Reachability is service-level, so this is verdict-
    /// neutral by construction — the cheapest possible delta, and a
    /// watch session should answer it without re-encoding anything.
    ScaleReplicas {
        /// Service name.
        name: String,
        /// New replica count.
        replicas: u32,
    },
    /// Replace a service's listening ports.
    EditPorts {
        /// Service name.
        name: String,
        /// New port set (non-empty).
        ports: Vec<u16>,
    },
    /// Set a label on a service (bans may select on labels).
    EditLabel {
        /// Service name.
        name: String,
        /// Label key.
        key: String,
        /// Label value.
        value: String,
    },
    /// Policy edit: add or replace the DENY ban on a port.
    UpsertBan {
        /// Banned destination port.
        port: u16,
        /// Which destinations the ban covers.
        selector: Selector,
    },
    /// Policy edit: retract the ban on a port.
    DropBan {
        /// Previously banned port.
        port: u16,
    },
    /// Goal-row edit: replace the Istio goal row at `index`, or append
    /// when `index` equals the current table length.
    UpsertGoal {
        /// Row index (`<= len`).
        index: usize,
        /// The new row.
        goal: IstioGoal,
    },
    /// Goal-row edit: delete the Istio goal row at `index`.
    DropGoal {
        /// Row index (`< len`).
        index: usize,
    },
}

/// Why a delta could not be applied or parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The named service does not exist.
    UnknownService(String),
    /// A service of that name already exists.
    DuplicateService(String),
    /// A service needs at least one port.
    EmptyPorts(String),
    /// No ban exists on that port.
    UnknownBan(u16),
    /// Goal-row index out of range.
    BadIndex(usize, usize),
    /// The wire line did not parse.
    Parse(String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownService(n) => write!(f, "unknown service {n:?}"),
            DeltaError::DuplicateService(n) => write!(f, "service {n:?} already exists"),
            DeltaError::EmptyPorts(n) => write!(f, "service {n:?} needs at least one port"),
            DeltaError::UnknownBan(p) => write!(f, "no ban on port {p}"),
            DeltaError::BadIndex(i, len) => {
                write!(f, "goal row {i} out of range (table has {len} rows)")
            }
            DeltaError::Parse(msg) => write!(f, "bad delta line: {msg}"),
        }
    }
}

impl std::error::Error for DeltaError {}

fn render_selector(sel: &Selector) -> String {
    match sel {
        Selector::All => "*".to_string(),
        Selector::Namespace(ns) => format!("ns={ns}"),
        Selector::Name(n) => n.clone(),
        Selector::Labels(pairs) => pairs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .next()
            .unwrap_or_else(|| "*".to_string()),
    }
}

fn parse_selector(field: &str) -> Selector {
    if field == "*" || field.is_empty() {
        Selector::All
    } else if let Some((k, v)) = field.split_once('=') {
        if k == "ns" || k == "namespace" {
            Selector::Namespace(v.to_string())
        } else {
            Selector::label(k, v)
        }
    } else {
        Selector::Name(field.to_string())
    }
}

fn render_port_spec(p: &PortSpec) -> String {
    match p {
        PortSpec::Port(n) => n.to_string(),
        PortSpec::Var(name) => format!("?{name}"),
        PortSpec::Any => "*".to_string(),
    }
}

fn parse_port_spec(field: &str) -> Result<PortSpec, DeltaError> {
    if field == "*" {
        return Ok(PortSpec::Any);
    }
    if let Some(name) = field.strip_prefix('?') {
        if name.is_empty() {
            return Err(DeltaError::Parse("?-port variable needs a name".into()));
        }
        return Ok(PortSpec::Var(name.to_string()));
    }
    field
        .parse::<u16>()
        .map(PortSpec::Port)
        .map_err(|_| DeltaError::Parse(format!("bad port cell {field:?}")))
}

fn parse_ports(field: &str) -> Result<Vec<u16>, DeltaError> {
    field
        .split(',')
        .map(|p| {
            p.trim()
                .parse::<u16>()
                .map_err(|_| DeltaError::Parse(format!("bad port {p:?}")))
        })
        .collect()
}

impl std::fmt::Display for ConfigDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigDelta::AddService {
                name,
                namespace,
                tier,
                ports,
            } => {
                let ports: Vec<String> = ports.iter().map(|p| p.to_string()).collect();
                write!(
                    f,
                    "add-service {name} {namespace} {} {}",
                    tier.as_deref().unwrap_or("-"),
                    ports.join(",")
                )
            }
            ConfigDelta::RemoveService { name } => write!(f, "remove-service {name}"),
            ConfigDelta::ScaleReplicas { name, replicas } => {
                write!(f, "scale-replicas {name} {replicas}")
            }
            ConfigDelta::EditPorts { name, ports } => {
                let ports: Vec<String> = ports.iter().map(|p| p.to_string()).collect();
                write!(f, "edit-ports {name} {}", ports.join(","))
            }
            ConfigDelta::EditLabel { name, key, value } => {
                write!(f, "edit-label {name} {key}={value}")
            }
            ConfigDelta::UpsertBan { port, selector } => {
                write!(f, "upsert-ban {port} {}", render_selector(selector))
            }
            ConfigDelta::DropBan { port } => write!(f, "drop-ban {port}"),
            ConfigDelta::UpsertGoal { index, goal } => write!(
                f,
                "upsert-goal {index} {} {} {} {}",
                goal.src,
                goal.dst,
                render_port_spec(&goal.src_port),
                render_port_spec(&goal.dst_port)
            ),
            ConfigDelta::DropGoal { index } => write!(f, "drop-goal {index}"),
        }
    }
}

impl ConfigDelta {
    /// Parse one wire line (the inverse of `Display`).
    pub fn parse(line: &str) -> Result<ConfigDelta, DeltaError> {
        let mut it = line.split_whitespace();
        let op = it
            .next()
            .ok_or_else(|| DeltaError::Parse("empty line".into()))?;
        let fields: Vec<&str> = it.collect();
        let want = |n: usize| -> Result<(), DeltaError> {
            if fields.len() == n {
                Ok(())
            } else {
                Err(DeltaError::Parse(format!(
                    "{op} takes {n} field(s), got {}",
                    fields.len()
                )))
            }
        };
        match op {
            "add-service" => {
                want(4)?;
                Ok(ConfigDelta::AddService {
                    name: fields[0].to_string(),
                    namespace: fields[1].to_string(),
                    tier: (fields[2] != "-").then(|| fields[2].to_string()),
                    ports: parse_ports(fields[3])?,
                })
            }
            "remove-service" => {
                want(1)?;
                Ok(ConfigDelta::RemoveService {
                    name: fields[0].to_string(),
                })
            }
            "scale-replicas" => {
                want(2)?;
                Ok(ConfigDelta::ScaleReplicas {
                    name: fields[0].to_string(),
                    replicas: fields[1]
                        .parse()
                        .map_err(|_| DeltaError::Parse(format!("bad count {:?}", fields[1])))?,
                })
            }
            "edit-ports" => {
                want(2)?;
                Ok(ConfigDelta::EditPorts {
                    name: fields[0].to_string(),
                    ports: parse_ports(fields[1])?,
                })
            }
            "edit-label" => {
                want(2)?;
                let (k, v) = fields[1]
                    .split_once('=')
                    .ok_or_else(|| DeltaError::Parse("edit-label needs key=value".into()))?;
                Ok(ConfigDelta::EditLabel {
                    name: fields[0].to_string(),
                    key: k.to_string(),
                    value: v.to_string(),
                })
            }
            "upsert-ban" => {
                want(2)?;
                Ok(ConfigDelta::UpsertBan {
                    port: fields[0]
                        .parse()
                        .map_err(|_| DeltaError::Parse(format!("bad port {:?}", fields[0])))?,
                    selector: parse_selector(fields[1]),
                })
            }
            "drop-ban" => {
                want(1)?;
                Ok(ConfigDelta::DropBan {
                    port: fields[0]
                        .parse()
                        .map_err(|_| DeltaError::Parse(format!("bad port {:?}", fields[0])))?,
                })
            }
            "upsert-goal" => {
                want(5)?;
                Ok(ConfigDelta::UpsertGoal {
                    index: fields[0]
                        .parse()
                        .map_err(|_| DeltaError::Parse(format!("bad index {:?}", fields[0])))?,
                    goal: IstioGoal {
                        src: fields[1].to_string(),
                        dst: fields[2].to_string(),
                        src_port: parse_port_spec(fields[3])?,
                        dst_port: parse_port_spec(fields[4])?,
                    },
                })
            }
            "drop-goal" => {
                want(1)?;
                Ok(ConfigDelta::DropGoal {
                    index: fields[0]
                        .parse()
                        .map_err(|_| DeltaError::Parse(format!("bad index {:?}", fields[0])))?,
                })
            }
            other => Err(DeltaError::Parse(format!("unknown delta op {other:?}"))),
        }
    }

    /// Stable snake_case kind tag (per-delta stats and metrics label).
    pub fn kind(&self) -> &'static str {
        match self {
            ConfigDelta::AddService { .. } => "add_service",
            ConfigDelta::RemoveService { .. } => "remove_service",
            ConfigDelta::ScaleReplicas { .. } => "scale_replicas",
            ConfigDelta::EditPorts { .. } => "edit_ports",
            ConfigDelta::EditLabel { .. } => "edit_label",
            ConfigDelta::UpsertBan { .. } => "upsert_ban",
            ConfigDelta::DropBan { .. } => "drop_ban",
            ConfigDelta::UpsertGoal { .. } => "upsert_goal",
            ConfigDelta::DropGoal { .. } => "drop_goal",
        }
    }

    /// Does this delta change the mesh structure (services, ports,
    /// labels) — and with it the logical universe or goal grounding —
    /// as opposed to only editing a goal table?
    pub fn touches_mesh(&self) -> bool {
        matches!(
            self,
            ConfigDelta::AddService { .. }
                | ConfigDelta::RemoveService { .. }
                | ConfigDelta::ScaleReplicas { .. }
                | ConfigDelta::EditPorts { .. }
                | ConfigDelta::EditLabel { .. }
        )
    }

    /// Apply the delta to bare mesh + goal-table state. Returns whether
    /// the mesh changed (callers owning a vocabulary must rebuild it).
    /// On error nothing is mutated.
    pub fn apply_parts(
        &self,
        mesh: &mut Mesh,
        k8s_goals: &mut Vec<K8sGoal>,
        istio_goals: &mut Vec<IstioGoal>,
    ) -> Result<bool, DeltaError> {
        match self {
            ConfigDelta::AddService {
                name,
                namespace,
                tier,
                ports,
            } => {
                if mesh.service(name).is_some() {
                    return Err(DeltaError::DuplicateService(name.clone()));
                }
                if ports.is_empty() {
                    return Err(DeltaError::EmptyPorts(name.clone()));
                }
                let mut svc =
                    Service::new(name.clone(), ports.iter().copied()).in_namespace(namespace);
                if let Some(t) = tier {
                    svc = svc.with_label("tier", t);
                }
                mesh.add_service(svc);
                Ok(true)
            }
            ConfigDelta::RemoveService { name } => {
                if mesh.service(name).is_none() {
                    return Err(DeltaError::UnknownService(name.clone()));
                }
                let kept: Vec<Service> = mesh
                    .services()
                    .iter()
                    .filter(|s| &s.name != name)
                    .cloned()
                    .collect();
                *mesh = Mesh::from_services(kept);
                istio_goals.retain(|g| &g.src != name && &g.dst != name);
                Ok(true)
            }
            ConfigDelta::ScaleReplicas { name, replicas } => {
                edit_service(mesh, name, |svc| {
                    svc.labels
                        .insert("replicas".to_string(), replicas.to_string());
                    Ok(())
                })?;
                Ok(true)
            }
            ConfigDelta::EditPorts { name, ports } => {
                if ports.is_empty() {
                    return Err(DeltaError::EmptyPorts(name.clone()));
                }
                edit_service(mesh, name, |svc| {
                    svc.ports = ports.iter().copied().collect();
                    Ok(())
                })?;
                Ok(true)
            }
            ConfigDelta::EditLabel { name, key, value } => {
                edit_service(mesh, name, |svc| {
                    svc.labels.insert(key.clone(), value.clone());
                    Ok(())
                })?;
                Ok(true)
            }
            ConfigDelta::UpsertBan { port, selector } => {
                let row = K8sGoal {
                    port: *port,
                    perm: muppet_mesh::Action::Deny,
                    selector: selector.clone(),
                };
                match k8s_goals.iter_mut().find(|g| g.port == *port) {
                    Some(existing) => *existing = row,
                    None => k8s_goals.push(row),
                }
                Ok(false)
            }
            ConfigDelta::DropBan { port } => {
                let before = k8s_goals.len();
                k8s_goals.retain(|g| g.port != *port);
                if k8s_goals.len() == before {
                    return Err(DeltaError::UnknownBan(*port));
                }
                Ok(false)
            }
            ConfigDelta::UpsertGoal { index, goal } => {
                if *index > istio_goals.len() {
                    return Err(DeltaError::BadIndex(*index, istio_goals.len()));
                }
                for svc in [&goal.src, &goal.dst] {
                    if mesh.service(svc).is_none() {
                        return Err(DeltaError::UnknownService(svc.clone()));
                    }
                }
                if *index == istio_goals.len() {
                    istio_goals.push(goal.clone());
                } else {
                    istio_goals[*index] = goal.clone();
                }
                Ok(false)
            }
            ConfigDelta::DropGoal { index } => {
                if *index >= istio_goals.len() {
                    return Err(DeltaError::BadIndex(*index, istio_goals.len()));
                }
                istio_goals.remove(*index);
                Ok(false)
            }
        }
    }

    /// Apply the delta to a full scenario, rebuilding its vocabulary
    /// when the mesh changed. On error the scenario is unchanged.
    pub fn apply(&self, scenario: &mut Scenario) -> Result<(), DeltaError> {
        let dirty = self.apply_parts(
            &mut scenario.mesh,
            &mut scenario.k8s_goals,
            &mut scenario.istio_goals,
        )?;
        if dirty {
            scenario.rebuild_vocab();
        }
        Ok(())
    }
}

/// Apply `f` to the named service, rebuilding the mesh in place with
/// service order preserved.
fn edit_service(
    mesh: &mut Mesh,
    name: &str,
    f: impl FnOnce(&mut Service) -> Result<(), DeltaError>,
) -> Result<(), DeltaError> {
    let mut services = mesh.services().to_vec();
    let svc = services
        .iter_mut()
        .find(|s| s.name == name)
        .ok_or_else(|| DeltaError::UnknownService(name.to_string()))?;
    f(svc)?;
    *mesh = Mesh::from_services(services);
    Ok(())
}

/// Edit-stream shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamProfile {
    /// The mesh grows service by service toward `target_services`
    /// (with goal rows following the new services). Almost every delta
    /// changes the universe, so this profile exercises correctness of
    /// vocabulary rebuilds, not warm reuse.
    Growth,
    /// Bans are added and retracted over a fixed mesh. The universe
    /// never changes; only the edited ban's CNF group is dirtied.
    PolicyChurn,
    /// Istio goal rows are revised over a fixed mesh; like
    /// `PolicyChurn`, the warm-reuse sweet spot.
    GoalChurn,
    /// Everything at once (the differential-proptest profile).
    Mixed,
}

impl StreamProfile {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            StreamProfile::Growth => "growth",
            StreamProfile::PolicyChurn => "policy-churn",
            StreamProfile::GoalChurn => "goal-churn",
            StreamProfile::Mixed => "mixed",
        }
    }

    /// Parse a profile name.
    pub fn parse(s: &str) -> Option<StreamProfile> {
        match s {
            "growth" => Some(StreamProfile::Growth),
            "policy-churn" => Some(StreamProfile::PolicyChurn),
            "goal-churn" => Some(StreamProfile::GoalChurn),
            "mixed" => Some(StreamProfile::Mixed),
            _ => None,
        }
    }
}

/// Parameters of a generated edit stream.
#[derive(Clone, Copy, Debug)]
pub struct StreamParams {
    /// The base scenario the stream starts from.
    pub base: ScenarioParams,
    /// Edit mix.
    pub profile: StreamProfile,
    /// Number of deltas.
    pub deltas: usize,
    /// `Growth` only: service count to grow toward.
    pub target_services: usize,
    /// Stream RNG seed (independent of the base scenario's seed).
    pub seed: u64,
}

/// A generated edit stream: the base scenario plus an ordered delta
/// sequence, every delta valid against the state left by its
/// predecessors.
pub struct EditStream {
    /// Generation parameters.
    pub params: StreamParams,
    /// The starting scenario.
    pub base: Scenario,
    /// The edits, in order.
    pub deltas: Vec<ConfigDelta>,
}

impl EditStream {
    /// One delta per line, in `ConfigDelta::parse` form.
    pub fn deltas_text(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// The constructed verdict of the *final* state after replaying
    /// every delta (see [`Scenario::expected_label`]). Replays at the
    /// parts level, without intermediate vocabulary rebuilds.
    pub fn final_expected(&self) -> Expected {
        let (mesh, k8s, istio) = self.replay_parts();
        if crate::generate::conflicting_ports_of(&mesh, &k8s, &istio).is_empty() {
            Expected::Sat
        } else {
            Expected::Unsat
        }
    }

    /// The final scenario after replaying every delta (one vocabulary
    /// build at the end).
    pub fn final_scenario(&self) -> Scenario {
        let (mesh, k8s_goals, istio_goals) = self.replay_parts();
        let mut s = Scenario {
            mesh,
            mv: muppet_mesh::MeshVocab::new(
                &Mesh::new(),
                [],
                muppet_logic::PartyId(0),
                muppet_logic::PartyId(1),
            ),
            k8s_goals,
            istio_goals,
            params: self.params.base,
        };
        s.rebuild_vocab();
        s
    }

    fn replay_parts(&self) -> (Mesh, Vec<K8sGoal>, Vec<IstioGoal>) {
        let mut mesh = self.base.mesh.clone();
        let mut k8s = self.base.k8s_goals.clone();
        let mut istio = self.base.istio_goals.clone();
        for d in &self.deltas {
            d.apply_parts(&mut mesh, &mut k8s, &mut istio)
                .expect("generated stream replays cleanly");
        }
        (mesh, k8s, istio)
    }
}

/// Generate an edit stream deterministically from its parameters: same
/// params ⇒ byte-identical base scenario and delta lines.
pub fn generate_stream(params: StreamParams) -> EditStream {
    if params.profile == StreamProfile::Growth {
        assert!(
            params.base.port_pool > 0,
            "growth streams need a shared port pool (new services draw from it)"
        );
    }
    let base = generate(params.base);
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Shadow state the generator evolves so every delta is valid
    // against its predecessors.
    let mut mesh = base.mesh.clone();
    let mut k8s = base.k8s_goals.clone();
    let mut istio = base.istio_goals.clone();
    let mut born = 0usize; // services added by the stream

    let extras: Vec<u16> = (0..params.base.extra_ports)
        .map(|j| 20000 + j as u16)
        .collect();
    let pool: Vec<u16> = if params.base.port_pool > 0 {
        (0..params.base.port_pool).map(|j| 7000 + j as u16).collect()
    } else {
        mesh.all_ports().into_iter().collect()
    };

    let mut deltas = Vec::with_capacity(params.deltas);
    for i in 0..params.deltas {
        let d = next_delta(
            params, &mut rng, &mesh, &k8s, &istio, &pool, &extras, &mut born, i,
        );
        d.apply_parts(&mut mesh, &mut k8s, &mut istio)
            .expect("generator produced an invalid delta");
        deltas.push(d);
    }
    EditStream {
        params,
        base,
        deltas,
    }
}

/// Pick a uniformly random service name from the shadow mesh.
fn random_service(rng: &mut StdRng, mesh: &Mesh) -> String {
    let services = mesh.services();
    services[rng.random_range(0..services.len())].name.clone()
}

/// A reachability row between two random distinct services, with the
/// destination port drawn from the destination's live port set. With
/// `avoid_banned`, ports under a shadow ban are skipped where possible
/// (keeps growth streams satisfiable by construction).
fn random_goal_row(
    rng: &mut StdRng,
    mesh: &Mesh,
    k8s: &[K8sGoal],
    avoid_banned: bool,
) -> Option<IstioGoal> {
    let services = mesh.services();
    if services.len() < 2 {
        return None;
    }
    let si = rng.random_range(0..services.len());
    let mut di = rng.random_range(0..services.len());
    while di == si {
        di = rng.random_range(0..services.len());
    }
    let dst = &services[di];
    let mut ports: Vec<u16> = dst.ports.iter().copied().collect();
    if avoid_banned {
        let open: Vec<u16> = ports
            .iter()
            .copied()
            .filter(|p| {
                !k8s.iter()
                    .any(|b| b.port == *p && b.selector.matches(dst))
            })
            .collect();
        if open.is_empty() {
            return None;
        }
        ports = open;
    }
    let port = ports[rng.random_range(0..ports.len())];
    Some(IstioGoal {
        src: services[si].name.clone(),
        dst: dst.name.clone(),
        src_port: PortSpec::Any,
        dst_port: PortSpec::Port(port),
    })
}

#[allow(clippy::too_many_arguments)]
fn next_delta(
    params: StreamParams,
    rng: &mut StdRng,
    mesh: &Mesh,
    k8s: &[K8sGoal],
    istio: &[IstioGoal],
    pool: &[u16],
    extras: &[u16],
    born: &mut usize,
    i: usize,
) -> ConfigDelta {
    let scale = |rng: &mut StdRng, mesh: &Mesh| ConfigDelta::ScaleReplicas {
        name: random_service(rng, mesh),
        replicas: rng.random_range(1..32) as u32,
    };
    match params.profile {
        StreamProfile::Growth => {
            let grown = mesh.services().len();
            if grown < params.target_services && i % 8 != 7 {
                let want = params.base.ports_per_service.min(pool.len()).max(1);
                let mut ports: Vec<u16> = Vec::with_capacity(want);
                while ports.len() < want {
                    let p = pool[rng.random_range(0..pool.len())];
                    if !ports.contains(&p) {
                        ports.push(p);
                    }
                }
                let namespaces = params.base.namespaces.max(1);
                let d = ConfigDelta::AddService {
                    name: format!("svc-g{born}"),
                    namespace: format!("ns-{}", *born % namespaces),
                    tier: (params.base.tiers > 1)
                        .then(|| format!("t{}", *born % params.base.tiers)),
                    ports,
                };
                *born += 1;
                d
            } else if i % 16 == 15 {
                scale(rng, mesh)
            } else if let Some(goal) = random_goal_row(rng, mesh, k8s, true) {
                ConfigDelta::UpsertGoal {
                    index: istio.len(),
                    goal,
                }
            } else {
                scale(rng, mesh)
            }
        }
        StreamProfile::PolicyChurn => {
            let roll = rng.random_range(0..100);
            if roll < 45 {
                // Half the upserts aim at a port a concrete goal needs
                // (a verdict flip to unsat as long as the ban stays),
                // the rest at spare ports (benign).
                let goal_ports: Vec<u16> = istio
                    .iter()
                    .filter_map(|g| match g.dst_port {
                        PortSpec::Port(p) => Some(p),
                        _ => None,
                    })
                    .collect();
                let conflicting = rng.random_bool(0.5) && !goal_ports.is_empty();
                let port = if conflicting {
                    goal_ports[rng.random_range(0..goal_ports.len())]
                } else if !extras.is_empty() {
                    extras[rng.random_range(0..extras.len())]
                } else {
                    pool[rng.random_range(0..pool.len())]
                };
                ConfigDelta::UpsertBan {
                    port,
                    selector: Selector::All,
                }
            } else if roll < 80 && !k8s.is_empty() {
                ConfigDelta::DropBan {
                    port: k8s[rng.random_range(0..k8s.len())].port,
                }
            } else if roll < 90 {
                scale(rng, mesh)
            } else {
                ConfigDelta::EditLabel {
                    name: random_service(rng, mesh),
                    key: "canary".to_string(),
                    value: format!("v{}", rng.random_range(0..8)),
                }
            }
        }
        StreamProfile::GoalChurn => {
            let roll = rng.random_range(0..100);
            if roll < 45 {
                match random_goal_row(rng, mesh, k8s, false) {
                    Some(goal) => ConfigDelta::UpsertGoal {
                        // Replace an existing row half the time,
                        // append otherwise.
                        index: if !istio.is_empty() && rng.random_bool(0.5) {
                            rng.random_range(0..istio.len())
                        } else {
                            istio.len()
                        },
                        goal,
                    },
                    None => scale(rng, mesh),
                }
            } else if roll < 80 && !istio.is_empty() {
                ConfigDelta::DropGoal {
                    index: rng.random_range(0..istio.len()),
                }
            } else {
                scale(rng, mesh)
            }
        }
        StreamProfile::Mixed => {
            let roll = rng.random_range(0..100);
            if roll < 12 {
                let want = params.base.ports_per_service.min(pool.len()).max(1);
                let mut ports: Vec<u16> = Vec::with_capacity(want);
                while ports.len() < want {
                    let p = pool[rng.random_range(0..pool.len())];
                    if !ports.contains(&p) {
                        ports.push(p);
                    }
                }
                let d = ConfigDelta::AddService {
                    name: format!("svc-g{born}"),
                    namespace: "default".to_string(),
                    tier: None,
                    ports,
                };
                *born += 1;
                d
            } else if roll < 20 && mesh.services().len() > 2 {
                ConfigDelta::RemoveService {
                    name: random_service(rng, mesh),
                }
            } else if roll < 28 {
                let name = random_service(rng, mesh);
                let want = params.base.ports_per_service.min(pool.len()).max(1);
                let mut ports: Vec<u16> = Vec::with_capacity(want);
                while ports.len() < want {
                    let p = pool[rng.random_range(0..pool.len())];
                    if !ports.contains(&p) {
                        ports.push(p);
                    }
                }
                ConfigDelta::EditPorts { name, ports }
            } else if roll < 36 {
                scale(rng, mesh)
            } else if roll < 55 {
                let goal_ports: Vec<u16> = istio
                    .iter()
                    .filter_map(|g| match g.dst_port {
                        PortSpec::Port(p) => Some(p),
                        _ => None,
                    })
                    .collect();
                let conflicting = rng.random_bool(0.4) && !goal_ports.is_empty();
                let port = if conflicting {
                    goal_ports[rng.random_range(0..goal_ports.len())]
                } else if !extras.is_empty() {
                    extras[rng.random_range(0..extras.len())]
                } else {
                    pool[rng.random_range(0..pool.len())]
                };
                ConfigDelta::UpsertBan {
                    port,
                    selector: Selector::All,
                }
            } else if roll < 65 && !k8s.is_empty() {
                ConfigDelta::DropBan {
                    port: k8s[rng.random_range(0..k8s.len())].port,
                }
            } else if roll < 85 {
                match random_goal_row(rng, mesh, k8s, false) {
                    Some(goal) => ConfigDelta::UpsertGoal {
                        index: if !istio.is_empty() && rng.random_bool(0.5) {
                            rng.random_range(0..istio.len())
                        } else {
                            istio.len()
                        },
                        goal,
                    },
                    None => scale(rng, mesh),
                }
            } else if !istio.is_empty() {
                ConfigDelta::DropGoal {
                    index: rng.random_range(0..istio.len()),
                }
            } else {
                scale(rng, mesh)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_lines_round_trip() {
        let deltas = vec![
            ConfigDelta::AddService {
                name: "svc-x".into(),
                namespace: "ns-1".into(),
                tier: Some("t2".into()),
                ports: vec![7001, 7003],
            },
            ConfigDelta::AddService {
                name: "svc-y".into(),
                namespace: "default".into(),
                tier: None,
                ports: vec![8080],
            },
            ConfigDelta::RemoveService { name: "svc-x".into() },
            ConfigDelta::ScaleReplicas {
                name: "svc-y".into(),
                replicas: 12,
            },
            ConfigDelta::EditPorts {
                name: "svc-y".into(),
                ports: vec![1, 2, 3],
            },
            ConfigDelta::EditLabel {
                name: "svc-y".into(),
                key: "canary".into(),
                value: "v3".into(),
            },
            ConfigDelta::UpsertBan {
                port: 7001,
                selector: Selector::All,
            },
            ConfigDelta::UpsertBan {
                port: 7002,
                selector: Selector::Namespace("ns-1".into()),
            },
            ConfigDelta::UpsertBan {
                port: 7003,
                selector: Selector::label("tier", "t1"),
            },
            ConfigDelta::DropBan { port: 7001 },
            ConfigDelta::UpsertGoal {
                index: 0,
                goal: IstioGoal {
                    src: "svc-y".into(),
                    dst: "svc-x".into(),
                    src_port: PortSpec::Any,
                    dst_port: PortSpec::Port(7003),
                },
            },
            ConfigDelta::UpsertGoal {
                index: 3,
                goal: IstioGoal {
                    src: "a".into(),
                    dst: "b".into(),
                    src_port: PortSpec::Var("w".into()),
                    dst_port: PortSpec::Var("w".into()),
                },
            },
            ConfigDelta::DropGoal { index: 1 },
        ];
        for d in deltas {
            let line = d.to_string();
            assert_eq!(ConfigDelta::parse(&line), Ok(d.clone()), "line {line:?}");
        }
    }

    #[test]
    fn apply_validates_and_mutates() {
        let mut s = generate(ScenarioParams::default());
        let n_before = s.mesh.services().len();
        ConfigDelta::AddService {
            name: "svc-new".into(),
            namespace: "default".into(),
            tier: None,
            ports: vec![1234],
        }
        .apply(&mut s)
        .unwrap();
        assert_eq!(s.mesh.services().len(), n_before + 1);
        // The vocabulary followed the mesh: the new service and port
        // have atoms.
        assert!(s.mv.svc_atom("svc-new").is_some());
        assert!(s.mv.port_atom(1234).is_some());

        // Duplicates, unknowns and bad indices are rejected without
        // mutating.
        assert!(matches!(
            ConfigDelta::AddService {
                name: "svc-new".into(),
                namespace: "default".into(),
                tier: None,
                ports: vec![1],
            }
            .apply(&mut s),
            Err(DeltaError::DuplicateService(_))
        ));
        assert!(matches!(
            ConfigDelta::RemoveService { name: "nope".into() }.apply(&mut s),
            Err(DeltaError::UnknownService(_))
        ));
        assert!(matches!(
            ConfigDelta::DropGoal { index: 999 }.apply(&mut s),
            Err(DeltaError::BadIndex(999, _))
        ));
        assert!(matches!(
            ConfigDelta::DropBan { port: 9 }.apply(&mut s),
            Err(DeltaError::UnknownBan(9))
        ));

        // Removing a service prunes the goal rows that referenced it.
        let victim = s.istio_goals[0].dst.clone();
        ConfigDelta::RemoveService {
            name: victim.clone(),
        }
        .apply(&mut s)
        .unwrap();
        assert!(s
            .istio_goals
            .iter()
            .all(|g| g.src != victim && g.dst != victim));
        assert!(s.mv.svc_atom(&victim).is_none());
    }

    #[test]
    fn streams_are_deterministic_and_replayable() {
        for profile in [
            StreamProfile::Growth,
            StreamProfile::PolicyChurn,
            StreamProfile::GoalChurn,
            StreamProfile::Mixed,
        ] {
            let params = StreamParams {
                base: ScenarioParams {
                    services: 8,
                    istio_goals: 6,
                    k8s_goals: 2,
                    port_pool: 6,
                    ports_per_service: 2,
                    ..ScenarioParams::default()
                },
                profile,
                deltas: 60,
                target_services: 20,
                seed: 7,
            };
            let a = generate_stream(params);
            let b = generate_stream(params);
            assert_eq!(a.deltas_text(), b.deltas_text(), "{}", profile.name());
            assert_eq!(a.deltas.len(), 60);
            // Full replay through apply() (vocabulary rebuilds and
            // all) ends in a state the parts replay agrees with.
            let mut sc = generate(params.base);
            for d in &a.deltas {
                d.apply(&mut sc).expect("replay");
            }
            let final_sc = a.final_scenario();
            assert_eq!(sc.mesh, final_sc.mesh, "{}", profile.name());
            assert_eq!(sc.k8s_goals, final_sc.k8s_goals);
            assert_eq!(sc.istio_goals, final_sc.istio_goals);
            assert_eq!(
                sc.expected_label(),
                a.final_expected(),
                "{}",
                profile.name()
            );
        }
    }

    #[test]
    fn growth_reaches_its_target() {
        let params = StreamParams {
            base: ScenarioParams {
                services: 10,
                istio_goals: 4,
                k8s_goals: 1,
                port_pool: 6,
                ports_per_service: 2,
                conflict_fraction: 0.0,
                ..ScenarioParams::default()
            },
            profile: StreamProfile::Growth,
            deltas: 60,
            target_services: 50,
            seed: 3,
        };
        let stream = generate_stream(params);
        let s = stream.final_scenario();
        assert_eq!(s.mesh.services().len(), 50);
        // Growth goals dodge the shadow bans, so the stream stays
        // satisfiable when the base was.
        assert_eq!(stream.final_expected(), Expected::Sat);
    }
}
