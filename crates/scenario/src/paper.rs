//! The paper's fixed walkthrough instances (Figs. 1–4) and the
//! relational pigeonhole family, packaged for benches, the harness and
//! the examples. One definition — every lane that used to hand-build
//! these fixtures (E1/E2/E5, the portfolio and incremental lanes, the
//! A4 ablation) consumes them from here, byte-identically.

use muppet::{NamedGoal, Party, Session};
use muppet_goals::{fig2, translate_istio_goals, translate_k8s_goals, IstioGoal};
use muppet_logic::{Domain, Formula, PartyId, RelId, Term, Universe, Vocabulary};
use muppet_mesh::MeshVocab;

/// Which Istio goal table to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IstioTable {
    /// Fig. 3: strict concrete ports (conflicts with the Fig. 2 ban).
    Fig3,
    /// Fig. 4: relaxed, with existential port variables.
    Fig4,
}

/// The Fig. 1 mesh vocabulary (3 services, the 8 paper ports).
pub fn vocab() -> MeshVocab {
    MeshVocab::paper_example()
}

/// Build the paper's two-party session over a given vocabulary.
pub fn session(mv: &MeshVocab, table: IstioTable) -> Session<'_> {
    let rows = match table {
        IstioTable::Fig3 => IstioGoal::fig3(),
        IstioTable::Fig4 => IstioGoal::fig4(),
    };
    let mut vocab = mv.vocab.clone();
    let k8s_goals = translate_k8s_goals(&fig2(), mv, &mut vocab).expect("fig2 translates");
    let istio_goals = translate_istio_goals(&rows, mv, &mut vocab).expect("rows translate");
    let axioms = mv.well_formedness_axioms(&mut vocab);
    let mut s = Session::new(&mv.universe, vocab, muppet_logic::Instance::new());
    s.add_axioms(axioms);
    s.add_party(
        Party::new(mv.k8s_party, "k8s-admin")
            .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
    );
    s.add_party(
        Party::new(mv.istio_party, "istio-admin")
            .with_goals(istio_goals.into_iter().map(NamedGoal::from)),
    );
    s
}

/// The relational pigeonhole principle PHP(`pigeons`, `holes`): every
/// pigeon sits in a hole, no hole holds two pigeons. Unsatisfiable iff
/// `pigeons > holes`, with a fully symmetric search space — the
/// symmetry-breaking ablation's worst case. Returns the universe,
/// vocabulary, the free `sits` relation and the two axioms.
pub fn php_relational(
    pigeons: usize,
    holes: usize,
) -> (Universe, Vocabulary, RelId, Vec<Formula>) {
    let mut u = Universe::new();
    let ps = u.add_sort("P");
    let hs = u.add_sort("H");
    for i in 0..pigeons {
        u.add_atom(ps, format!("p{i}"));
    }
    for i in 0..holes {
        u.add_atom(hs, format!("h{i}"));
    }
    let mut v = Vocabulary::new();
    let sits = v.add_simple_rel("sits", vec![ps, hs], Domain::Party(PartyId(0)));
    let p = v.fresh_var();
    let p2 = v.fresh_var();
    let h = v.fresh_var();
    let formulas = vec![
        Formula::forall(
            p,
            ps,
            Formula::exists(h, hs, Formula::pred(sits, [Term::Var(p), Term::Var(h)])),
        ),
        Formula::forall(
            h,
            hs,
            Formula::forall(
                p,
                ps,
                Formula::forall(
                    p2,
                    ps,
                    Formula::implies(
                        Formula::and([
                            Formula::pred(sits, [Term::Var(p), Term::Var(h)]),
                            Formula::pred(sits, [Term::Var(p2), Term::Var(h)]),
                        ]),
                        Formula::Eq(Term::Var(p), Term::Var(p2)),
                    ),
                ),
            ),
        ),
    ];
    (u, v, sits, formulas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet::ReconcileMode;
    use muppet_solver::{FormulaGroup, Outcome, Query};

    #[test]
    fn fig3_conflicts_fig4_reconciles() {
        let mv = vocab();
        let s3 = session(&mv, IstioTable::Fig3);
        assert!(!s3.reconcile(ReconcileMode::HardBounds).unwrap().success);
        let s4 = session(&mv, IstioTable::Fig4);
        assert!(s4.reconcile(ReconcileMode::HardBounds).unwrap().success);
    }

    #[test]
    fn php_relational_verdicts() {
        for (pigeons, holes, sat) in [(4usize, 3usize, false), (3, 3, true)] {
            let (u, v, sits, formulas) = php_relational(pigeons, holes);
            let mut q = Query::new(&v, &u);
            q.free_rel(sits)
                .set_minimize_cores(false)
                .add_group(FormulaGroup::new("php", formulas));
            match q.solve().unwrap() {
                Outcome::Sat { .. } => assert!(sat, "PHP({pigeons},{holes}) must be unsat"),
                Outcome::Unsat { .. } => assert!(!sat, "PHP({pigeons},{holes}) must be sat"),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }
}
