//! Synthetic scenario generation.
//!
//! Scenarios scale along the axes the paper's example fixes: number of
//! services, goal-table size, and how many goals collide with the other
//! party's port bans. Generation is deterministic given the seed.
//!
//! Two regimes share one code path:
//!
//! * **Paper scale** (the defaults): every service gets its own port
//!   range, relations are unbounded, and sessions look exactly like the
//!   hand-built paper fixtures — byte-identical to what `muppet-bench`
//!   generated before this crate existed.
//! * **Large scale** (`port_pool > 0`, `bounded = true`): services draw
//!   from a small shared port pool (so the port sort stays small while
//!   the service sort grows to the thousands) and both parties attach
//!   *offers* — tight Kodkod-style upper bounds that pin the policy
//!   relations empty and limit `listens` to the declared exposure — so
//!   the solver's variable map stays sparse. Bounds only ever shrink the
//!   model space, so an `Unsat` label is preserved exactly, and the
//!   generator's `Sat` witness (services listen on their declared ports,
//!   no extra policies) lies inside the bounds by construction.

use muppet::{NamedGoal, Party, Session};
use muppet_goals::{translate_istio_goals, translate_k8s_goals, IstioGoal, K8sGoal, PortSpec};
use muppet_logic::PartialInstance;
use muppet_mesh::{Mesh, MeshVocab, Selector, Service};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Expected;

/// Scenario dimensions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioParams {
    /// Number of services in the mesh.
    pub services: usize,
    /// Listening ports per service.
    pub ports_per_service: usize,
    /// Spare ports added to the universe (room for ∃-port goals).
    pub extra_ports: usize,
    /// Istio reachability goal rows (the tenant / mesh-admin side of
    /// the tenant–provider goal split).
    pub istio_goals: usize,
    /// K8s DENY-port goal rows (the provider / cluster-admin side).
    pub k8s_goals: usize,
    /// Fraction of K8s bans aimed at ports that Istio goals rely on
    /// (1.0 = every ban conflicts, 0.0 = bans only hit safe ports).
    pub conflict_fraction: f64,
    /// Fraction of Istio goal rows whose destination port is a named
    /// existential variable instead of a concrete port (Fig. 4 style
    /// flexibility).
    pub flexible_fraction: f64,
    /// Number of namespaces; services are assigned round-robin. With
    /// more than one, each K8s ban is namespace-scoped with probability
    /// ½ (the multi-tenant shape of the paper's Sec. 1 motivation).
    pub namespaces: usize,
    /// Label topology: with more than one tier, service `i` carries a
    /// `tier=t{i % tiers}` label and K8s bans may be label-scoped. `1`
    /// (the default) reproduces the historical generator byte for byte.
    pub tiers: usize,
    /// Shared port pool size. `0` (the default) gives every service its
    /// own `1000 + 100·i` port range — fine up to a few hundred
    /// services. A positive pool makes services draw their ports from
    /// `7000..7000+port_pool`, keeping the port sort (and with it the
    /// grounding product) small at thousands of services.
    pub port_pool: usize,
    /// Attach tight party offers (upper bounds) to the session so the
    /// solver materializes only the bounded support instead of the full
    /// tuple product. Required for `services ≳ 500`.
    pub bounded: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            services: 6,
            ports_per_service: 2,
            extra_ports: 4,
            istio_goals: 6,
            k8s_goals: 1,
            conflict_fraction: 0.0,
            flexible_fraction: 0.0,
            namespaces: 1,
            tiers: 1,
            port_pool: 0,
            bounded: false,
            seed: 0x4d55_5050,
        }
    }
}

/// A generated scenario: mesh, vocabulary and both goal tables.
pub struct Scenario {
    /// The mesh.
    pub mesh: Mesh,
    /// The logical vocabulary over it.
    pub mv: MeshVocab,
    /// K8s goal rows.
    pub k8s_goals: Vec<K8sGoal>,
    /// Istio goal rows.
    pub istio_goals: Vec<IstioGoal>,
    /// Parameters used.
    pub params: ScenarioParams,
}

/// Generate a scenario deterministically from its parameters.
pub fn generate(params: ScenarioParams) -> Scenario {
    assert!(
        params.port_pool > 0 || params.services <= 600,
        "legacy per-service port ranges overflow u16 beyond ~600 services; \
         set port_pool for large meshes"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut services = Vec::with_capacity(params.services);
    let mut all_ports: Vec<u16> = Vec::new();
    let namespaces = params.namespaces.max(1);
    for i in 0..params.services {
        let ports: Vec<u16> = if params.port_pool > 0 {
            // Draw distinct ports from the shared pool.
            let want = params.ports_per_service.min(params.port_pool);
            let mut picked: Vec<usize> = Vec::with_capacity(want);
            while picked.len() < want {
                let j = rng.random_range(0..params.port_pool);
                if !picked.contains(&j) {
                    picked.push(j);
                }
            }
            picked.into_iter().map(|j| 7000 + j as u16).collect()
        } else {
            let base = 1000 + (i as u16) * 100;
            (0..params.ports_per_service)
                .map(|j| base + j as u16)
                .collect()
        };
        all_ports.extend(&ports);
        let mut svc = Service::new(format!("svc-{i}"), ports)
            .in_namespace(format!("ns-{}", i % namespaces));
        if params.tiers > 1 {
            svc = svc.with_label("tier", format!("t{}", i % params.tiers));
        }
        services.push(svc);
    }
    let mesh = Mesh::from_services(services);
    if params.port_pool > 0 {
        all_ports.sort_unstable();
        all_ports.dedup();
    }
    let extra: Vec<u16> = (0..params.extra_ports)
        .map(|j| 20000 + j as u16)
        .collect();

    // Istio reachability goals: random src≠dst pairs; the destination
    // port is one the destination actually listens on (or an ∃ variable
    // for the flexible fraction).
    let mut istio_goals = Vec::new();
    let mut used_ports: Vec<u16> = Vec::new();
    for gi in 0..params.istio_goals {
        let si = rng.random_range(0..params.services);
        let mut di = rng.random_range(0..params.services);
        if params.services > 1 {
            while di == si {
                di = rng.random_range(0..params.services);
            }
        }
        let dst_svc = mesh.service(&format!("svc-{di}")).expect("generated");
        let dst_ports: Vec<u16> = dst_svc.ports.iter().copied().collect();
        let port = dst_ports[rng.random_range(0..dst_ports.len())];
        let flexible = rng.random_bool(params.flexible_fraction.clamp(0.0, 1.0));
        let dst_port = if flexible {
            PortSpec::Var(format!("p{gi}"))
        } else {
            used_ports.push(port);
            PortSpec::Port(port)
        };
        istio_goals.push(IstioGoal {
            src: format!("svc-{si}"),
            dst: format!("svc-{di}"),
            src_port: PortSpec::Any,
            dst_port,
        });
    }

    // K8s bans: conflicting bans target ports that concrete Istio goals
    // depend on; benign bans target unused ports, falling back to the
    // spare ports when the whole listening set is goal-covered (the
    // usual case with a small shared pool).
    let unused: Vec<u16> = all_ports
        .iter()
        .copied()
        .filter(|p| !used_ports.contains(p))
        .collect();
    let mut k8s_goals = Vec::new();
    for _ in 0..params.k8s_goals {
        let conflicting = rng.random_bool(params.conflict_fraction.clamp(0.0, 1.0));
        let port = if conflicting && !used_ports.is_empty() {
            used_ports[rng.random_range(0..used_ports.len())]
        } else if !unused.is_empty() {
            unused[rng.random_range(0..unused.len())]
        } else if !conflicting && !extra.is_empty() {
            extra[rng.random_range(0..extra.len())]
        } else if !all_ports.is_empty() {
            all_ports[rng.random_range(0..all_ports.len())]
        } else {
            20000
        };
        if k8s_goals
            .iter()
            .any(|g: &K8sGoal| g.port == port)
        {
            continue; // avoid duplicate bans
        }
        let selector = if params.tiers > 1 && rng.random_bool(0.5) {
            Selector::label("tier", format!("t{}", rng.random_range(0..params.tiers)))
        } else if namespaces > 1 && rng.random_bool(0.5) {
            Selector::Namespace(format!("ns-{}", rng.random_range(0..namespaces)))
        } else {
            Selector::All
        };
        k8s_goals.push(K8sGoal {
            port,
            perm: muppet_mesh::Action::Deny,
            selector,
        });
    }

    let mv = MeshVocab::new(
        &mesh,
        extra,
        muppet_logic::PartyId(0),
        muppet_logic::PartyId(1),
    );
    Scenario {
        mesh,
        mv,
        k8s_goals,
        istio_goals,
        params,
    }
}

/// The ports banned by `k8s_goals` that some concrete Istio goal row
/// needs — the built-in conflicts of a `(mesh, bans, goals)` state.
/// Shared by [`Scenario::conflicting_ports`] and the edit-stream
/// replay in [`crate::stream`], which evolves bare parts without
/// paying for vocabulary rebuilds.
pub fn conflicting_ports_of(
    mesh: &Mesh,
    k8s_goals: &[K8sGoal],
    istio_goals: &[IstioGoal],
) -> Vec<u16> {
    k8s_goals
        .iter()
        .filter(|k| {
            istio_goals.iter().any(|g| {
                g.dst_port == PortSpec::Port(k.port)
                    && mesh
                        .service(&g.dst)
                        .map(|d| k.selector.matches(d))
                        .unwrap_or(false)
            })
        })
        .map(|k| k.port)
        .collect()
}

impl Scenario {
    /// Build a two-party Muppet session for this scenario. `soft_istio`
    /// marks the Istio goals droppable (for negotiation experiments).
    /// With `params.bounded`, both parties carry the tight offers from
    /// [`Scenario::offers`].
    pub fn session(&self, soft_istio: bool) -> Session<'_> {
        let mut vocab = self.mv.vocab.clone();
        let k8s_goals =
            translate_k8s_goals(&self.k8s_goals, &self.mv, &mut vocab).expect("generated goals");
        let istio_goals = translate_istio_goals(&self.istio_goals, &self.mv, &mut vocab)
            .expect("generated goals");
        let axioms = self.mv.well_formedness_axioms(&mut vocab);
        let mut session = Session::new(
            &self.mv.universe,
            vocab,
            muppet_logic::Instance::new(),
        );
        session.add_axioms(axioms);
        let (k8s_offer, istio_offer) = if self.params.bounded {
            let (k, i) = self.offers();
            (Some(k), Some(i))
        } else {
            (None, None)
        };
        let mut k8s_party = Party::new(self.mv.k8s_party, "k8s-admin")
            .with_goals(k8s_goals.into_iter().map(NamedGoal::from));
        if let Some(offer) = k8s_offer {
            k8s_party = k8s_party.with_offer(offer);
        }
        session.add_party(k8s_party);
        let mut istio_party = Party::new(self.mv.istio_party, "istio-admin").with_goals(
            istio_goals.into_iter().map(|g| {
                let mut g = NamedGoal::from(g);
                g.hard = !soft_istio;
                g
            }),
        );
        if let Some(offer) = istio_offer {
            istio_party = istio_party.with_offer(offer);
        }
        session.add_party(istio_party);
        session
    }

    /// Tight Kodkod-style offers for a scale run: `(k8s, istio)`.
    ///
    /// The cluster admin offers to add **no** network policies (all six
    /// `k8s_*` relations bounded empty); the mesh admin offers to add no
    /// authorization policies and to only expose ports a service
    /// declares or one of the spare ports (`listens` upper-bounded to
    /// that support, nothing required). Upper bounds only remove models,
    /// so conflicts stay conflicts; the no-policy / declared-exposure
    /// witness keeps conflict-free scenarios satisfiable.
    pub fn offers(&self) -> (PartialInstance, PartialInstance) {
        let mv = &self.mv;
        let mut k8s = PartialInstance::new();
        for rel in mv.k8s_rels() {
            k8s.bound(rel);
        }
        let mut istio = PartialInstance::new();
        for rel in mv.istio_rels() {
            istio.bound(rel);
        }
        let extras: Vec<u16> = (0..self.params.extra_ports)
            .map(|j| 20000 + j as u16)
            .collect();
        for svc in self.mesh.services() {
            let s = mv.svc_atom(&svc.name).expect("mesh service has an atom");
            for &p in svc.ports.iter().chain(extras.iter()) {
                let pa = mv.port_atom(p).expect("mesh port has an atom");
                istio.permit(mv.listens, vec![s, pa]);
            }
        }
        (k8s, istio)
    }

    /// Render the scenario as daemon wire content: `(manifests YAML,
    /// k8s goal CSV, istio goal CSV, extra ports)` — the fields of a
    /// `muppet-daemon` `SessionSpec`. Round-trips through the same
    /// parsers the CLI uses, so a daemon loaded from these strings sees
    /// the scenario's mesh and goal tables.
    pub fn wire_content(&self) -> (String, String, String, Vec<u16>) {
        let manifests = muppet_mesh::manifest::emit_bundle(&muppet_mesh::manifest::ManifestBundle {
            mesh: self.mesh.clone(),
            ..Default::default()
        });
        let k8s = k8s_goals_csv(&self.k8s_goals);
        let istio = istio_goals_csv(&self.istio_goals);
        let extras: Vec<u16> = (0..self.params.extra_ports)
            .map(|j| 20000 + j as u16)
            .collect();
        (manifests, k8s, istio, extras)
    }

    /// The ports banned by the K8s goals that some concrete Istio goal
    /// needs — i.e. the built-in conflicts. Namespace-scoped bans only
    /// conflict with goals whose destination lives in the banned
    /// namespace.
    pub fn conflicting_ports(&self) -> Vec<u16> {
        conflicting_ports_of(&self.mesh, &self.k8s_goals, &self.istio_goals)
    }

    /// The spare ports this scenario adds to the universe (the
    /// `extra_ports` parameter, materialized).
    pub fn extra_port_list(&self) -> Vec<u16> {
        (0..self.params.extra_ports)
            .map(|j| 20000 + j as u16)
            .collect()
    }

    /// Rebuild the vocabulary after a mesh mutation (see
    /// [`crate::stream::ConfigDelta::apply`]). The rebuild is purely
    /// content-driven — a rebuild from identical mesh content yields a
    /// vocabulary with an identical atom layout.
    pub fn rebuild_vocab(&mut self) {
        let extra = self.extra_port_list();
        self.mv = MeshVocab::new(
            &self.mesh,
            extra,
            muppet_logic::PartyId(0),
            muppet_logic::PartyId(1),
        );
    }

    /// The verdict this scenario is constructed to have, derived from
    /// its built-in conflicts: a ban covering a destination on a port a
    /// concrete reachability row needs is a contradiction no
    /// configuration resolves (the ban's translation quantifies over
    /// every source), and with no such collision the declared-exposure /
    /// no-policy configuration satisfies everything. Valid when the
    /// session is built with hard Istio goals (`session(false)`).
    pub fn expected_label(&self) -> Expected {
        if self.conflicting_ports().is_empty() {
            Expected::Sat
        } else {
            Expected::Unsat
        }
    }

    /// The `scenario.json` provenance stamp: schema id, full parameter
    /// set, seed and expected verdict, plus summary counts. Field order
    /// and float formatting are stable, so byte-equality of two stamps
    /// means two identical scenarios.
    pub fn provenance_json(&self, name: &str) -> String {
        let p = &self.params;
        let conflicts: Vec<String> = self
            .conflicting_ports()
            .iter()
            .map(|c| c.to_string())
            .collect();
        format!(
            concat!(
                "{{\"schema\":\"muppet-scenario-v1\",\"name\":\"{}\",\"seed\":{},",
                "\"params\":{{\"services\":{},\"ports_per_service\":{},\"extra_ports\":{},",
                "\"istio_goals\":{},\"k8s_goals\":{},\"conflict_fraction\":{:?},",
                "\"flexible_fraction\":{:?},\"namespaces\":{},\"tiers\":{},",
                "\"port_pool\":{},\"bounded\":{}}},",
                "\"expected\":\"{}\",\"conflicting_ports\":[{}],",
                "\"services\":{},\"k8s_goal_rows\":{},\"istio_goal_rows\":{}}}"
            ),
            name,
            p.seed,
            p.services,
            p.ports_per_service,
            p.extra_ports,
            p.istio_goals,
            p.k8s_goals,
            p.conflict_fraction,
            p.flexible_fraction,
            p.namespaces,
            p.tiers,
            p.port_pool,
            p.bounded,
            self.expected_label(),
            conflicts.join(","),
            self.mesh.services().len(),
            self.k8s_goals.len(),
            self.istio_goals.len(),
        )
    }
}

// The CSV serializers live next to their parsers in `muppet-goals`
// (one crate owns the row grammar); re-exported here because scenario
// consumers historically found them at this path.
pub use muppet_goals::{istio_goals_csv, k8s_goals_csv};

#[cfg(test)]
mod tests {
    use super::*;
    use muppet::ReconcileMode;

    #[test]
    fn generation_is_deterministic() {
        let p = ScenarioParams::default();
        let a = generate(p);
        let b = generate(p);
        assert_eq!(a.mesh, b.mesh);
        assert_eq!(a.k8s_goals, b.k8s_goals);
        assert_eq!(a.istio_goals, b.istio_goals);
        assert_eq!(a.provenance_json("t"), b.provenance_json("t"));
    }

    #[test]
    fn no_conflict_scenarios_reconcile() {
        let s = generate(ScenarioParams {
            conflict_fraction: 0.0,
            ..ScenarioParams::default()
        });
        assert!(s.conflicting_ports().is_empty());
        assert_eq!(s.expected_label(), Expected::Sat);
        let session = s.session(false);
        let rec = session.reconcile(ReconcileMode::HardBounds).unwrap();
        assert!(rec.success);
    }

    #[test]
    fn forced_conflicts_fail_reconciliation() {
        let s = generate(ScenarioParams {
            conflict_fraction: 1.0,
            k8s_goals: 2,
            ..ScenarioParams::default()
        });
        assert!(!s.conflicting_ports().is_empty());
        assert_eq!(s.expected_label(), Expected::Unsat);
        let session = s.session(false);
        let rec = session.reconcile(ReconcileMode::Blameable).unwrap();
        assert!(!rec.success);
        assert!(!rec.core.is_empty());
    }

    #[test]
    fn flexible_goals_survive_bans() {
        // Fully flexible Istio goals can always dodge a ban via the
        // spare ports.
        let s = generate(ScenarioParams {
            conflict_fraction: 1.0,
            flexible_fraction: 1.0,
            k8s_goals: 2,
            ..ScenarioParams::default()
        });
        let session = s.session(false);
        let rec = session.reconcile(ReconcileMode::HardBounds).unwrap();
        assert!(rec.success);
    }

    #[test]
    fn namespaced_scenarios_generate_and_behave() {
        let s = generate(ScenarioParams {
            services: 8,
            namespaces: 3,
            k8s_goals: 3,
            conflict_fraction: 1.0,
            seed: 21,
            ..ScenarioParams::default()
        });
        // Services are spread over the namespaces.
        let namespaces: std::collections::BTreeSet<&str> = s
            .mesh
            .services()
            .iter()
            .map(|svc| svc.namespace.as_str())
            .collect();
        assert_eq!(namespaces.len(), 3);
        // The session solves either way; if conflicts exist the core
        // names goals, not the whole table.
        let session = s.session(false);
        let rec = session.reconcile(muppet::ReconcileMode::Blameable).unwrap();
        if s.conflicting_ports().is_empty() {
            assert!(rec.success);
        } else {
            assert!(!rec.success);
            assert!(rec.core.len() < 2 * s.istio_goals.len());
        }
    }

    #[test]
    fn scales_to_more_services() {
        let s = generate(ScenarioParams {
            services: 12,
            istio_goals: 12,
            ..ScenarioParams::default()
        });
        assert_eq!(s.mesh.services().len(), 12);
        let session = s.session(false);
        assert!(session.reconcile(ReconcileMode::HardBounds).unwrap().success);
    }

    #[test]
    fn pooled_ports_and_tiers_shape_the_mesh() {
        let s = generate(ScenarioParams {
            services: 40,
            ports_per_service: 3,
            port_pool: 6,
            tiers: 4,
            namespaces: 5,
            istio_goals: 10,
            seed: 3,
            ..ScenarioParams::default()
        });
        // Every port comes from the pool; the port sort stays small.
        for svc in s.mesh.services() {
            assert_eq!(svc.ports.len(), 3);
            for &p in &svc.ports {
                assert!((7000..7006).contains(&p), "pool port, got {p}");
            }
            assert!(svc.labels.iter().any(|(k, _)| k == "tier"));
        }
        // Deterministic across runs, like the legacy path.
        let t = generate(s.params);
        assert_eq!(s.mesh, t.mesh);
        assert_eq!(s.k8s_goals, t.k8s_goals);
        assert_eq!(s.istio_goals, t.istio_goals);
    }

    #[test]
    fn bounded_sessions_agree_with_unbounded_verdicts() {
        // Same scenario, bounded and unbounded: identical verdicts on
        // both a SAT and an UNSAT instance (bounds are sound).
        for (conflict, expect_ok) in [(0.0, true), (1.0, false)] {
            let mut params = ScenarioParams {
                services: 10,
                conflict_fraction: conflict,
                k8s_goals: 2,
                istio_goals: 8,
                seed: 9,
                ..ScenarioParams::default()
            };
            let free = generate(params);
            let rec_free = free.session(false).reconcile(ReconcileMode::HardBounds).unwrap();
            params.bounded = true;
            let bounded = generate(params);
            let rec_bounded = bounded
                .session(false)
                .reconcile(ReconcileMode::HardBounds)
                .unwrap();
            assert_eq!(rec_free.success, expect_ok);
            assert_eq!(rec_bounded.success, expect_ok, "bounded verdict diverged");
        }
    }

    #[test]
    fn provenance_carries_label_and_params() {
        let s = generate(ScenarioParams {
            conflict_fraction: 1.0,
            k8s_goals: 2,
            ..ScenarioParams::default()
        });
        let j = s.provenance_json("probe");
        assert!(j.contains("\"name\":\"probe\""));
        assert!(j.contains("\"expected\":\"unsat\""));
        assert!(j.contains("\"services\":6"));
    }
}
